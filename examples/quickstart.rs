//! Quickstart: count and compute all feedback laws for a small machine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! A machine with `m = 2` inputs and `p = 2` outputs, controlled by a
//! dynamic compensator with `q = 1` internal state, admits exactly
//! `d(2,2,1) = 8` feedback laws placing `n = mp + q(m+p) = 8` generic
//! closed-loop poles. This example counts them combinatorially, computes
//! them numerically with the Pieri homotopies, and verifies every
//! intersection condition.

use pieri::num::seeded_rng;
use pieri::schubert::{self, PieriProblem, Poset, Shape};

fn main() {
    let (m, p, q) = (2usize, 2usize, 1usize);
    let shape = Shape::new(m, p, q);
    println!("machine: m = {m} inputs, p = {p} outputs, compensator degree q = {q}");
    println!(
        "intersection conditions: n = mp + q(m+p) = {}",
        shape.conditions()
    );

    // 1. Combinatorics: the poset of localization patterns (Fig. 4).
    let poset = Poset::build(&shape);
    println!(
        "\nposet: {} patterns over {} levels",
        poset.node_count(),
        poset.num_levels()
    );
    let profile = poset.level_profile();
    println!(
        "tree level widths (jobs per level): {:?}",
        &profile.widths[1..]
    );
    println!("total path-tracking jobs: {}", profile.total_jobs());
    println!(
        "number of feedback laws d({m},{p},{q}) = {}",
        profile.root_count()
    );

    // 2. Numerics: solve a random generic instance.
    let mut rng = seeded_rng(2004);
    let problem = PieriProblem::random(shape, &mut rng);
    let solution = schubert::solve(&problem);
    println!(
        "\nsolved: {} maps, {} failed paths",
        solution.maps.len(),
        solution.failures
    );
    println!(
        "worst intersection residual: {:.2e}",
        solution.max_residual(&problem)
    );
    println!(
        "closest pair of solutions:   {:.2e}",
        solution.min_pairwise_distance()
    );
    println!("total tracking time:         {:?}", solution.total_time());

    // 3. Show one solution map.
    let x = &solution.maps[0];
    println!("\nfirst solution map X(s) = X0 + X1*s, coefficients:");
    for (d, c) in x.coeffs().iter().enumerate() {
        println!("  degree {d}:");
        for i in 0..c.rows() {
            let row: Vec<String> = (0..c.cols()).map(|j| format!("{}", c[(i, j)])).collect();
            println!("    [ {} ]", row.join("  "));
        }
    }
}
