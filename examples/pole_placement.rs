//! Static output feedback pole placement for a random plant.
//!
//! ```sh
//! cargo run --release --example pole_placement
//! ```
//!
//! Generates a random 2-input, 2-output plant of McMillan degree 4 (as a
//! right matrix fraction `G = N·D⁻¹`), prescribes 4 stable closed-loop
//! poles, computes **both** static feedback laws with the Pieri
//! homotopies, and verifies the placement two independent ways: through
//! the closed-loop characteristic polynomial `φ(s) = det [X(s) | Γ(s)]`
//! and through the eigenvalues of the closed-loop state matrix of a
//! controller-form realisation.

use pieri::control::{conjugate_pole_set, Plant, PolePlacement, StateSpace};
use pieri::linalg::eigenvalues;
use pieri::num::seeded_rng;

fn main() {
    let mut rng = seeded_rng(42);
    let (m, p, q) = (2usize, 2usize, 0usize);
    let plant = Plant::random(m, p, q, &mut rng);
    println!(
        "plant: {} inputs, {} outputs, McMillan degree {}",
        plant.inputs(),
        plant.outputs(),
        plant.mcmillan_degree()
    );
    let open_poles = plant.open_loop_charpoly().roots();
    println!("open-loop poles:");
    for s in &open_poles {
        println!("  {s}");
    }

    let poles = conjugate_pole_set(m * p, &mut rng);
    println!("\nprescribed closed-loop poles:");
    for s in &poles {
        println!("  {s}");
    }

    let pp = PolePlacement::new(plant.clone(), q, poles.clone());
    let outcome = pp.solve(&mut rng);
    println!(
        "\nPieri solve: {} feedback laws (d(2,2,0) = 2), {} jobs",
        outcome.compensators.len(),
        outcome.solution.records.len()
    );

    let ss = StateSpace::realize(&plant);
    for (i, comp) in outcome.compensators.iter().enumerate() {
        println!("\nfeedback law #{i}:");
        match comp.static_gain() {
            Some(k) => {
                for r in 0..k.rows() {
                    let row: Vec<String> =
                        (0..k.cols()).map(|c| format!("{}", k[(r, c)])).collect();
                    println!("  K = [ {} ]", row.join("  "));
                }
                // Verification 1: the determinantal characteristic polynomial.
                let err = pp.verify_map(&outcome.solution.maps[i]);
                println!("  φ(s) root distance to prescribed poles: {err:.2e}");
                // Verification 2: closed-loop state-matrix eigenvalues.
                let acl = ss.closed_loop_static(&k);
                let eigs = eigenvalues(&acl).expect("QR converges");
                println!("  closed-loop eigenvalues:");
                for e in eigs {
                    println!("    {e}");
                }
            }
            None => println!("  improper (solution at the chart boundary)"),
        }
    }
}
