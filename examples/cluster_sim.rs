//! Cluster-scale what-if analysis with the discrete-event simulator.
//!
//! ```sh
//! cargo run --release --example cluster_sim
//! ```
//!
//! Recreates the paper's two workload regimes at full scale — cyclic
//! 10-roots (35,940 paths, heavy-tailed divergence) and the RPS mechanism
//! (9,216 paths, 8,192 near-uniform divergent paths) — and sweeps the
//! processor count from 1 to 128 under both scheduling policies,
//! rendering the speedup tables and curves.

use pieri::num::seeded_rng;
use pieri::sim::{ascii_chart, speedup_table, ChartSeries, SimParams, Workload};

fn main() {
    let mut rng = seeded_rng(2004);
    let cpus = [1usize, 8, 16, 32, 64, 128];

    // Cyclic 10-roots regime: large variance, ~1000 divergent paths.
    let cyclic = Workload::cyclic_like(35_940, 1_000, 0.8, &mut rng);
    println!(
        "cyclic 10-roots-like workload: {} paths, cv = {:.2}",
        cyclic.len(),
        cyclic.cv()
    );
    let table = speedup_table(&cyclic, &cpus, SimParams::mpi_like);
    println!("{}", table.render("seconds"));

    // RPS regime: 89% divergent, near-uniform cost.
    let rps = Workload::rps_like(9_216, 8_192, 0.5, &mut rng);
    println!(
        "RPS-like workload: {} paths, cv = {:.2}",
        rps.len(),
        rps.cv()
    );
    let table2 = speedup_table(&rps, &cpus, SimParams::mpi_like);
    println!("{}", table2.render("seconds"));

    // The Fig. 1-style chart for the cyclic workload.
    let to_points = |f: fn(&pieri::sim::SpeedupRow) -> f64| -> Vec<(f64, f64)> {
        table.rows.iter().map(|r| (r.cpus as f64, f(r))).collect()
    };
    let series = vec![
        ChartSeries {
            label: "static".into(),
            glyph: 's',
            points: to_points(|r| r.static_speedup),
        },
        ChartSeries {
            label: "dynamic".into(),
            glyph: 'd',
            points: to_points(|r| r.dynamic_speedup),
        },
        ChartSeries {
            label: "optimal".into(),
            glyph: '.',
            points: cpus.iter().map(|&c| (c as f64, c as f64)).collect(),
        },
    ];
    println!(
        "{}",
        ascii_chart(
            "Speedup comparison (cyclic regime)",
            "#CPUs",
            "speedup",
            &series,
            64,
            20
        )
    );
}
