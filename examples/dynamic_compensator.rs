//! Dynamic output feedback for the linearised satellite.
//!
//! ```sh
//! cargo run --release --example dynamic_compensator
//! ```
//!
//! The classical satellite in circular orbit (4 states, radial/tangential
//! thrust inputs, position outputs) cannot be given arbitrary closed-loop
//! poles by *static* output feedback — `trace(B·K·C) ≡ 0`, so the pole
//! sum is invariant; the Pieri paths honestly report both solutions at
//! infinity. A degree-1 **dynamic** compensator removes the obstruction:
//! this example places the 5 closed-loop poles of the satellite + q = 1
//! compensator loop and prints all 8 = d(2,2,1) compensators, each
//! verified through the Faddeev–LeVerrier closed-loop polynomial.

use pieri::control::{
    conjugate_pole_set, satellite_plant, solve_dynamic_state_space, solve_static_state_space,
    verify_closed_loop_ss, SATELLITE_OMEGA,
};
use pieri::num::seeded_rng;

fn main() {
    let mut rng = seeded_rng(1969);
    let sat = satellite_plant(SATELLITE_OMEGA);
    println!(
        "linearised satellite: {} states, {} inputs, {} outputs",
        sat.dim(),
        sat.inputs(),
        sat.outputs()
    );
    println!("open-loop poles (marginally stable orbit dynamics):");
    for e in sat.poles() {
        println!("  {e}");
    }

    // Static output feedback is structurally obstructed.
    let static_poles = conjugate_pole_set(4, &mut rng);
    let (gains, solution, _) = solve_static_state_space(&sat, &static_poles, &mut rng);
    println!(
        "\nstatic output feedback: {} Grassmannian solutions, {} proper gains",
        solution.maps.len(),
        gains.len()
    );
    println!("(trace(B·K·C) = 0 for every K: the pole sum cannot be moved,");
    println!(" so both solutions are improper — detected, not hidden)");

    // Dynamic compensation with one internal state places 5 poles.
    let poles = conjugate_pole_set(5, &mut rng);
    println!("\nprescribed closed-loop poles (satellite + compensator):");
    for s in &poles {
        println!("  {s}");
    }
    let (comps, solution, _) = solve_dynamic_state_space(&sat, 1, &poles, &mut rng);
    println!(
        "\ndynamic solve: {} compensators (d(2,2,1) = 8), {} tracking jobs, {} failures",
        comps.len(),
        solution.records.len(),
        solution.failures
    );

    for (i, (comp, map)) in comps.iter().zip(&solution.maps).enumerate() {
        let (_, residual) = verify_closed_loop_ss(&sat, map, &poles);
        let kind = if comp.is_real(1e-6) {
            "real"
        } else {
            "complex"
        };
        println!(
            "compensator #{i}: {kind}, det U(s) degree {}, closed-loop residual {residual:.2e}",
            comp.charpoly().degree()
        );
    }
    println!("\n(each residual certifies that every prescribed pole is a closed-loop pole)");
}
