//! The feedback-law service end to end, in one process.
//!
//! ```sh
//! cargo run --release --example feedback_service
//! ```
//!
//! Boots the batch pole-placement server on an ephemeral port, places 5
//! closed-loop poles for the classical linearised satellite with a
//! `q = 1` dynamic compensator through the HTTP client — twice, to show
//! the shape cache turning the second request into a cheap-trick
//! continuation — and prints one verified compensator.

use pieri::control::{conjugate_pole_set, satellite_plant, verify_closed_loop_ss};
use pieri::num::seeded_rng;
use pieri::schubert::PMap;
use pieri::service::{Client, Engine, EngineConfig, JobRequest, Server};
use std::sync::Arc;

fn main() {
    let engine = Arc::new(Engine::start(EngineConfig::default()));
    let server = Server::start("127.0.0.1:0", engine).expect("bind");
    let client = Client::new(server.addr()).expect("client");
    println!("pieri-service listening on http://{}", server.addr());

    let sat = satellite_plant(1.0);
    let mut rng = seeded_rng(2004);
    let poles = conjugate_pole_set(5, &mut rng);
    println!("\nprescribed closed-loop poles (n° + q = 5):");
    for s in &poles {
        println!("  {s}");
    }

    let req = JobRequest::PlacePoles {
        a: sat.a.clone(),
        b: sat.b.clone(),
        c: sat.c.clone(),
        q: 1,
        poles: poles.clone(),
        seed: 42,
        certify: false,
    };

    let cold = client.solve(&req).expect("cold request");
    println!(
        "\ncold request:  {} of d(2,2,1) = {} compensators, \
         bundle built in {:.1} ms, continuation {:.1} ms, residual {:.2e}",
        cold.solutions,
        cold.expected,
        cold.bundle_build.as_secs_f64() * 1e3,
        cold.solve_time.as_secs_f64() * 1e3,
        cold.max_residual,
    );

    let warm = client.solve(&req).expect("warm request");
    println!(
        "warm request:  cache hit = {}, solve {:.1} ms — the shape work is amortized",
        warm.cache_hit,
        warm.solve_time.as_secs_f64() * 1e3,
    );

    // Print the first proper compensator K(s) = V(s)·U(s)⁻¹ and verify
    // it from the wire data alone.
    let comp = warm
        .compensators
        .iter()
        .find(|c| c.proper)
        .unwrap_or(&warm.compensators[0]);
    println!("\none compensator (matrix-fraction coefficients):");
    for (k, (u, v)) in comp.u_coeffs.iter().zip(&comp.v_coeffs).enumerate() {
        println!("  s^{k}:");
        for i in 0..u.rows() {
            let row: Vec<String> = (0..u.cols()).map(|j| format!("{}", u[(i, j)])).collect();
            println!("    U: [ {} ]", row.join("  "));
        }
        for i in 0..v.rows() {
            let row: Vec<String> = (0..v.cols()).map(|j| format!("{}", v[(i, j)])).collect();
            println!("    V: [ {} ]", row.join("  "));
        }
    }
    let coeffs: Vec<_> = comp
        .u_coeffs
        .iter()
        .zip(&comp.v_coeffs)
        .map(|(u, v)| u.vstack(v))
        .collect();
    let (_, residual) = verify_closed_loop_ss(&sat, &PMap::from_coeff_matrices(coeffs), &poles);
    println!("\nclient-side closed-loop verification residual: {residual:.2e}");

    server.engine().shutdown();
    server.shutdown();
}
