//! The cyclic n-roots benchmark under three schedulers.
//!
//! ```sh
//! cargo run --release --example cyclic_roots [n] [workers]
//! ```
//!
//! Solves cyclic-n (default n = 5) by a total-degree homotopy, tracking
//! all Bézout paths sequentially, with the static scheduler, and with the
//! dynamic master/slave scheduler, then prints the workload statistics
//! that drive the load-balancing story of the paper (divergent path
//! count, cost variance, per-worker imbalance).

use pieri::num::{random_gamma, seeded_rng};
use pieri::parallel::{track_paths_dynamic, track_paths_static};
use pieri::systems::{cyclic, total_degree_start};
use pieri::tracker::{LinearHomotopy, TrackSettings, TrackStats};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let mut rng = seeded_rng(10);
    let target = cyclic(n);
    println!(
        "cyclic-{n}: {} equations, total degree {} (= path count)",
        target.len(),
        target.total_degree()
    );
    let start = total_degree_start(&target, &mut rng);
    let h = LinearHomotopy::new(start.system, target, random_gamma(&mut rng));
    let settings = TrackSettings::default();

    // Static scheduler.
    let (results, report) = track_paths_static(&h, &start.solutions, &settings, workers);
    let stats = TrackStats::from_results(&results);
    println!("\nstatic, {workers} workers:");
    println!(
        "  converged {} | diverged {} | failed {}",
        stats.converged, stats.diverged, stats.failed
    );
    println!("  per-path cost cv = {:.2}", stats.time_cv());
    println!("  imbalance (max/min busy) = {:.2}", report.imbalance());
    println!("  efficiency = {:.2}", report.efficiency());

    // Dynamic scheduler.
    let (results, report) = track_paths_dynamic(&h, &start.solutions, &settings, workers);
    let stats = TrackStats::from_results(&results);
    println!("\ndynamic (master/slave FCFS), {workers} workers:");
    println!(
        "  converged {} | diverged {} | failed {}",
        stats.converged, stats.diverged, stats.failed
    );
    println!("  messages through master = {}", report.messages);
    println!("  imbalance (max/min busy) = {:.2}", report.imbalance());
    println!("  efficiency = {:.2}", report.efficiency());

    println!(
        "\n(the {} divergent paths are the heavy jobs whose placement decides\n the static-vs-dynamic gap in Table I of the paper)",
        stats.diverged
    );
}
