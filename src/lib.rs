//! **pieri** — numerical Schubert calculus in Rust: computing all feedback
//! laws for linear systems with (parallel) Pieri homotopies.
//!
//! This facade crate re-exports the whole workspace, a reproduction of
//! *"Computing Feedback Laws for Linear Systems with a Parallel Pieri
//! Homotopy"* (Verschelde & Wang, ICPP 2004):
//!
//! * [`num`] — complex arithmetic and the gamma trick;
//! * [`linalg`] — dense complex LU/QR/eigenvalues/adjugates;
//! * [`poly`] — multivariate, univariate and matrix polynomials;
//! * [`tracker`] — the predictor–corrector path tracker with endgame;
//! * [`systems`] — cyclic-n/katsura/noon benchmarks and start systems;
//! * [`schubert`] — localization patterns, posets, Pieri trees, the Pieri
//!   homotopy and its solver (the paper's core contribution);
//! * [`certify`] — a-posteriori certification: α-theory Newton
//!   certificates, double-double endpoint refinement, re-track policies;
//! * [`control`] — plants, pole placement, compensators, verification;
//! * [`parallel`] — static/dynamic schedulers and the Fig. 6 tree master;
//! * [`sim`] — the discrete-event cluster simulator behind the speedup
//!   tables;
//! * [`service`] — the batch pole-placement server: shape-keyed start-
//!   system cache, bounded job engine, JSON-over-HTTP front end.
//!
//! # Quickstart
//!
//! Count and compute all feedback laws for a machine with 2 inputs,
//! 2 outputs and a dynamic compensator with 1 internal state:
//!
//! ```
//! use pieri::schubert::{self, PieriProblem, Shape};
//! use pieri::num::seeded_rng;
//!
//! let shape = Shape::new(2, 2, 1);
//! assert_eq!(schubert::root_count(2, 2, 1), 8);
//!
//! let mut rng = seeded_rng(7);
//! let problem = PieriProblem::random(shape, &mut rng);
//! let solution = schubert::solve(&problem);
//! assert_eq!(solution.maps.len(), 8);
//! assert!(solution.max_residual(&problem) < 1e-7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pieri_certify as certify;
pub use pieri_control as control;
pub use pieri_core as schubert;
pub use pieri_linalg as linalg;
pub use pieri_num as num;
pub use pieri_parallel as parallel;
pub use pieri_poly as poly;
pub use pieri_service as service;
pub use pieri_sim as sim;
pub use pieri_systems as systems;
pub use pieri_tracker as tracker;
