//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate: the `channel::unbounded` MPMC channel with crossbeam's
//! disconnect semantics (recv fails once the queue is empty *and* all
//! senders are gone; send fails once all receivers are gone), built on
//! `Mutex` + `Condvar`. Throughput is far below the real lock-free
//! implementation, but the schedulers in this workspace exchange one
//! message per tracked path, so the lock is never contended enough to
//! matter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crossbeam: Debug does not require `T: Debug` (the
    // message is elided), so `.expect()` works on any payload type.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only when every receiver has been
        /// dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                // Wake blocked receivers so they observe the disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails when the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.chan.ready.wait(state).expect("channel poisoned");
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel poisoned").receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.state.lock().expect("channel poisoned").receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_a_sender() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn cross_thread_mpmc() {
            let (job_tx, job_rx) = unbounded::<usize>();
            let (res_tx, res_rx) = unbounded::<usize>();
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let job_rx = job_rx.clone();
                    let res_tx = res_tx.clone();
                    scope.spawn(move || {
                        while let Ok(j) = job_rx.recv() {
                            res_tx.send(j * j).unwrap();
                        }
                    });
                }
                drop(res_tx);
                for j in 0..100 {
                    job_tx.send(j).unwrap();
                }
                drop(job_tx);
                let mut got: Vec<usize> = (0..100).map(|_| res_rx.recv().unwrap()).collect();
                got.sort_unstable();
                let want: Vec<usize> = (0..100).map(|j| j * j).collect();
                assert_eq!(got, want);
                assert_eq!(res_rx.recv(), Err(RecvError));
            });
        }
    }
}
