//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, covering the two pieces this workspace uses:
//!
//! * [`channel`] — the `unbounded` MPMC channel with crossbeam's
//!   disconnect semantics (recv fails once the queue is empty *and* all
//!   senders are gone; send fails once all receivers are gone), built on
//!   `Mutex` + `Condvar`;
//! * [`deque`] — the `crossbeam-deque` work-stealing primitives
//!   ([`deque::Worker`], [`deque::Stealer`], [`deque::Injector`]) that
//!   the vendored `rayon` pool schedules on, built on per-queue mutexes
//!   rather than the real crate's lock-free Chase–Lev deque.
//!
//! Throughput is below the real lock-free implementations, but the locks
//! here are per-queue (one per pool worker), so contention stays local
//! even when every core is stealing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crossbeam: Debug does not require `T: Debug` (the
    // message is elided), so `.expect()` works on any payload type.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only when every receiver has been
        /// dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                // Wake blocked receivers so they observe the disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails when the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.chan.ready.wait(state).expect("channel poisoned");
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel poisoned").receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.state.lock().expect("channel poisoned").receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_a_sender() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn cross_thread_mpmc() {
            let (job_tx, job_rx) = unbounded::<usize>();
            let (res_tx, res_rx) = unbounded::<usize>();
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let job_rx = job_rx.clone();
                    let res_tx = res_tx.clone();
                    scope.spawn(move || {
                        while let Ok(j) = job_rx.recv() {
                            res_tx.send(j * j).unwrap();
                        }
                    });
                }
                drop(res_tx);
                for j in 0..100 {
                    job_tx.send(j).unwrap();
                }
                drop(job_tx);
                let mut got: Vec<usize> = (0..100).map(|_| res_rx.recv().unwrap()).collect();
                got.sort_unstable();
                let want: Vec<usize> = (0..100).map(|j| j * j).collect();
                assert_eq!(got, want);
                assert_eq!(res_rx.recv(), Err(RecvError));
            });
        }
    }
}

/// Work-stealing double-ended queues, mirroring the `crossbeam-deque`
/// API surface the vendored `rayon` pool uses.
///
/// Semantics match the real crate: the owning thread pushes and pops at
/// one end in LIFO order (good cache locality for fork-join recursion),
/// thieves steal single items from the opposite end in FIFO order (they
/// take the oldest — typically largest — piece of work), and the
/// [`deque::Injector`](Injector) is a shared FIFO for submissions from
/// outside the pool.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One item was stolen.
        Success(T),
        /// The attempt lost a race and may be retried (never produced by
        /// this mutex-based implementation; kept for API compatibility).
        Retry,
    }

    impl<T> Steal<T> {
        /// Converts into `Option`, mapping both `Empty` and `Retry` to
        /// `None`.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(item) => Some(item),
                Steal::Empty | Steal::Retry => None,
            }
        }
    }

    /// The owner's handle to a work-stealing deque: LIFO push/pop at the
    /// back; [`Stealer`]s take from the front.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a deque whose owner operates in LIFO order (the only
        /// flavour the vendored pool needs).
        pub fn new_lifo() -> Worker<T> {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a job onto the owner's end.
        pub fn push(&self, item: T) {
            self.inner.lock().expect("deque poisoned").push_back(item);
        }

        /// Pops the most recently pushed job (LIFO).
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("deque poisoned").pop_back()
        }

        /// True when no jobs are queued.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque poisoned").is_empty()
        }

        /// Creates a stealing handle onto this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: self.inner.clone(),
            }
        }
    }

    /// A thief's handle: steals the oldest job (FIFO end).
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the job at the FIFO end.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("deque poisoned").pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }
    }

    /// A shared FIFO queue for jobs submitted from outside the pool.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a job at the back.
        pub fn push(&self, item: T) {
            self.inner
                .lock()
                .expect("injector poisoned")
                .push_back(item);
        }

        /// Attempts to take the oldest queued job.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("injector poisoned").pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        /// True when no jobs are queued.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("injector poisoned").is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn owner_is_lifo_thief_is_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(3), "owner pops newest");
            assert!(matches!(s.steal(), Steal::Success(1)), "thief takes oldest");
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert!(s.steal().success().is_none());
        }

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push('a');
            inj.push('b');
            assert_eq!(inj.steal().success(), Some('a'));
            assert_eq!(inj.steal().success(), Some('b'));
            assert!(inj.is_empty());
        }

        #[test]
        fn concurrent_stealing_drains_everything() {
            let w = Worker::new_lifo();
            for i in 0..1000 {
                w.push(i);
            }
            let taken = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let s = w.stealer();
                    let taken = &taken;
                    scope.spawn(move || {
                        while let Some(v) = s.steal().success() {
                            taken.lock().unwrap().push(v);
                        }
                    });
                }
            });
            let mut got = taken.into_inner().unwrap();
            got.sort_unstable();
            assert_eq!(got, (0..1000).collect::<Vec<_>>());
        }
    }
}
