//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Implements the slice of the rayon API this workspace uses —
//! [`IntoParallelIterator::into_par_iter`],
//! [`IntoParallelRefIterator::par_iter`], `map` and `collect` — with real
//! parallelism: items are pulled off a shared index-tagged work queue by
//! one scoped thread per available core (dynamic load balancing, like
//! rayon's work stealing, minus the per-thread deques). Results are
//! returned in input order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// Re-exports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a reference).
    type Item: Send + 'data;
    /// The concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

/// A finite, order-preserving parallel iterator.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Materialises the items (called once, on the driving thread).
    fn items(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Collects the items into `C`, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.items().into_iter().collect()
    }
}

/// A parallel iterator over an owned `Vec`.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn items(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = VecIter<&'data T>;
    fn par_iter(&'data self) -> VecIter<&'data T> {
        VecIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = VecIter<&'data T>;
    fn par_iter(&'data self) -> VecIter<&'data T> {
        VecIter {
            items: self.iter().collect(),
        }
    }
}

/// The result of [`ParallelIterator::map`]; the only stage that actually
/// fans work out to threads.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;

    fn items(self) -> Vec<R> {
        par_map(self.base.items(), &self.f)
    }
}

/// Applies `f` to every item on a pool of scoped threads, returning the
/// results in input order.
fn par_map<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue poisoned").pop_front();
                let Some((idx, item)) = job else { break };
                let out = f(item);
                results.lock().expect("results poisoned")[idx] = Some(out);
            });
        }
    });

    results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|r| r.expect("every item mapped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[99], 2);
        assert_eq!(v.len(), 100, "input still owned by caller");
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(none.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
