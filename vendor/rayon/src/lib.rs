//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate, built around a real work-stealing fork-join pool.
//!
//! Implements the slice of the rayon API this workspace uses:
//!
//! * a lazily spawned, persistent global thread pool, sized by
//!   [`std::thread::available_parallelism`] with a `PIERI_NUM_THREADS`
//!   environment override ([`current_num_threads`] reports the size);
//! * per-worker LIFO deques with FIFO stealing (via the vendored
//!   `crossbeam::deque`) plus a shared injector for submissions from
//!   threads outside the pool;
//! * the fork-join primitives [`join`] and [`scope`];
//! * [`IntoParallelIterator::into_par_iter`] /
//!   [`IntoParallelRefIterator::par_iter`] with `map` and `collect`.
//!   `map` fans out in contiguous chunks whose results are written into
//!   disjoint regions of the output — no shared result lock — and
//!   `collect` preserves input order, so pipelines are deterministic
//!   run to run regardless of scheduling.
//!
//! Divergences from upstream: only the API above is provided, thread
//! pools are global-only (no `ThreadPoolBuilder`), the deques are
//! mutex-based rather than lock-free Chase–Lev, and the env override is
//! named `PIERI_NUM_THREADS` (upstream reads `RAYON_NUM_THREADS`).
//!
//! `unsafe` is confined to `src/job.rs` (type-erased job pointers, the
//! same two erasures real rayon performs); every block carries a SAFETY
//! argument tied to the blocking protocol of `join`/`scope`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod job;
mod registry;

pub use registry::{current_num_threads, current_thread_index, join, scope, Scope};

/// Re-exports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a reference).
    type Item: Send + 'data;
    /// The concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

/// A finite, order-preserving parallel iterator.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Materialises the items (called once, on the driving thread).
    fn items(self) -> Vec<Self::Item>;

    /// Maps each item through `f` on the pool.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Collects the items into `C`, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.items().into_iter().collect()
    }
}

/// A parallel iterator over an owned `Vec`.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn items(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = VecIter<&'data T>;
    fn par_iter(&'data self) -> VecIter<&'data T> {
        VecIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = VecIter<&'data T>;
    fn par_iter(&'data self) -> VecIter<&'data T> {
        VecIter {
            items: self.iter().collect(),
        }
    }
}

/// The result of [`ParallelIterator::map`]; the only stage that actually
/// fans work out to the pool.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;

    fn items(self) -> Vec<R> {
        par_map(self.base.items(), &self.f)
    }
}

/// Applies `f` to every item on the pool and returns the results in
/// input order.
///
/// The items are cut into contiguous chunks (a few per worker, so the
/// stealers can rebalance uneven chunks); each chunk is one pool job
/// that writes its results into the matching disjoint region of the
/// output buffer obtained with `split_at_mut` — threads never share a
/// result slot, so no lock is taken per item.
fn par_map<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads();
    if n <= 1 || threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(4 * threads).max(1);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut slots: &mut [Option<R>] = &mut out;
    let mut rest = items;
    scope(|s| {
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let tail = rest.split_off(take);
            let block = std::mem::replace(&mut rest, tail);
            let (head, tail_slots) = std::mem::take(&mut slots).split_at_mut(take);
            slots = tail_slots;
            s.spawn(move |_| {
                for (slot, item) in head.iter_mut().zip(block) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every item mapped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[99], 2);
        assert_eq!(v.len(), 100, "input still owned by caller");
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(none.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn skewed_workload_is_rebalanced_and_ordered() {
        // Early items are ~1000x more expensive than late ones; chunked
        // stealing must still produce results in input order.
        let v: Vec<u64> = (0..256).collect();
        let out: Vec<u64> = v
            .into_par_iter()
            .map(|x| {
                let iters = if x < 16 { 200_000 } else { 200 };
                let mut acc = x;
                for _ in 0..iters {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                // Return something index-identifying but iteration-mixed.
                acc ^ (acc >> 33) ^ x
            })
            .collect();
        let expect: Vec<u64> = (0..256)
            .map(|x: u64| {
                let iters = if x < 16 { 200_000 } else { 200 };
                let mut acc = x;
                for _ in 0..iters {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc ^ (acc >> 33) ^ x
            })
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let run = || -> Vec<f64> {
            (0..500)
                .collect::<Vec<i64>>()
                .into_par_iter()
                .map(|x| (x as f64).sqrt().sin())
                .collect()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "bitwise identical across runs");
    }

    #[test]
    fn nested_par_iter_inside_pool_jobs() {
        // A par_iter whose closure itself runs a par_iter: inner scopes
        // on pool threads must help drain rather than deadlock.
        let outer: Vec<usize> = (0..8).collect();
        let sums: Vec<usize> = outer
            .into_par_iter()
            .map(|k| {
                let inner: Vec<usize> = (0..50).map(|i| i + k).collect();
                inner
                    .into_par_iter()
                    .map(|x| x * 2)
                    .collect::<Vec<_>>()
                    .iter()
                    .sum()
            })
            .collect();
        for (k, s) in sums.iter().enumerate() {
            let expect: usize = (0..50).map(|i| (i + k) * 2).sum();
            assert_eq!(*s, expect);
        }
    }
}
