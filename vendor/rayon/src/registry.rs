//! The persistent work-stealing thread pool.
//!
//! One global [`Registry`] is spawned lazily on first use. Each worker
//! thread owns a LIFO deque (`crossbeam::deque::Worker`); work enters
//! either at the owner's end (fork-join pushes from `join`/`scope` on a
//! pool thread) or through a shared FIFO [`Injector`] (submissions from
//! threads outside the pool). Idle workers steal the oldest job from the
//! injector or a sibling's deque, and park on a condvar when the whole
//! pool is empty.
//!
//! Pool size: `PIERI_NUM_THREADS` (a positive integer) when set,
//! otherwise [`std::thread::available_parallelism`].

use crate::job::{heap_job_erased, JobRef, StackJob};
use crossbeam::deque::{Injector, Stealer, Worker};
use std::any::Any;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, Once, OnceLock};
use std::time::Duration;

/// How long an idle worker parks before re-scanning the queues. The
/// sleep protocol is notify-based and sound without this timeout; it is
/// defence in depth against lost-wakeup bugs ever deadlocking the pool.
const PARK: Duration = Duration::from_millis(10);

/// How long a thread blocked in `join`/`scope` parks between steal
/// attempts when the pool has no runnable work.
const SPIN_PARK: Duration = Duration::from_micros(200);

pub(crate) struct Registry {
    injector: Injector<JobRef>,
    stealers: Vec<Stealer<JobRef>>,
    num_threads: usize,
    /// Jobs pushed but not yet taken by any thread. Incremented *before*
    /// the push so the taker's decrement can never underflow; used only
    /// by the sleep protocol, so transient over-counts are benign.
    pending: AtomicUsize,
    /// Workers registered as parked (or about to park). Lets `submit`
    /// skip the lock + notify entirely on the hot path where every
    /// worker is busy — same-worker LIFO pushes from deep join/scope
    /// recursion must not funnel through one global mutex.
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cond: Condvar,
    /// Worker-end handles, parked here until the threads are spawned.
    parked: Mutex<Vec<Option<Worker<JobRef>>>>,
    started: Once,
}

struct WorkerCtx {
    index: usize,
    worker: Worker<JobRef>,
}

thread_local! {
    static CTX: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

fn in_worker() -> bool {
    CTX.with(|ctx| ctx.borrow().is_some())
}

/// Resolves the pool size from an optional `PIERI_NUM_THREADS` value,
/// falling back to the machine's available parallelism.
pub(crate) fn resolve_num_threads(var: Option<&str>) -> usize {
    if let Some(s) = var {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The global registry, spawning its worker threads on first call.
pub(crate) fn global() -> &'static Registry {
    let registry = GLOBAL.get_or_init(Registry::new);
    registry.started.call_once(|| {
        let mut parked = registry.parked.lock().expect("registry poisoned");
        for (index, slot) in parked.iter_mut().enumerate() {
            let worker = slot.take().expect("worker handle present before start");
            std::thread::Builder::new()
                .name(format!("pieri-pool-{index}"))
                .spawn(move || worker_loop(registry, index, worker))
                .expect("spawn pool worker");
        }
    });
    registry
}

/// Number of threads in the global pool.
pub fn current_num_threads() -> usize {
    global().num_threads
}

/// The index of the current thread within the global pool, or `None`
/// when called from a thread outside it (mirrors upstream rayon's API).
///
/// Useful as a guard: code that blocks waiting for pool-executed work
/// without helping to drain it (e.g. a master loop on a channel) must
/// only run where this returns `None`, or it can deadlock the pool.
pub fn current_thread_index() -> Option<usize> {
    CTX.with(|ctx| ctx.borrow().as_ref().map(|c| c.index))
}

impl Registry {
    fn new() -> Registry {
        let num_threads = resolve_num_threads(std::env::var("PIERI_NUM_THREADS").ok().as_deref());
        let mut stealers = Vec::with_capacity(num_threads);
        let mut parked = Vec::with_capacity(num_threads);
        for _ in 0..num_threads {
            let worker = Worker::new_lifo();
            stealers.push(worker.stealer());
            parked.push(Some(worker));
        }
        Registry {
            injector: Injector::new(),
            stealers,
            num_threads,
            pending: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cond: Condvar::new(),
            parked: Mutex::new(parked),
            started: Once::new(),
        }
    }

    /// Queues a job: onto the current worker's own deque when called
    /// from a pool thread (LIFO, fork-join locality), otherwise into the
    /// shared injector.
    pub(crate) fn submit(&self, job: JobRef) {
        // ORDERING: SeqCst — this increment must be globally ordered
        // against the sleeper-side `sleepers.fetch_add` / `pending.load`
        // pair in `sleep` (see the wakeup argument below); anything
        // weaker reintroduces the lost-wakeup window.
        self.pending.fetch_add(1, Ordering::SeqCst);
        let job = CTX.with(|ctx| {
            let ctx = ctx.borrow();
            match ctx.as_ref() {
                Some(ctx) => {
                    ctx.worker.push(job);
                    None
                }
                None => Some(job),
            }
        });
        if let Some(job) = job {
            self.injector.push(job);
        }
        // Wake a parked worker, but only if one might exist — the busy
        // pool's push path must stay lock-free.
        // ORDERING: SeqCst makes the check sound: a sleeper registers in
        // `sleepers` *before* loading `pending`, and we incremented
        // `pending` *before* loading `sleepers`, so either we see its
        // registration here or it sees our job there; a lost wakeup
        // would need both SeqCst loads to miss, which the total order
        // forbids.
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking the sleep lock orders the notification after the
            // sleeper's pending-check inside `sleep`.
            drop(self.sleep_lock.lock().expect("sleep lock poisoned"));
            self.sleep_cond.notify_one();
        }
    }

    /// Pops from the calling worker's own deque, then steals: injector
    /// first (external submissions are oldest), then siblings round-robin.
    /// Must be called from a pool thread.
    fn find_work(&self) -> Option<JobRef> {
        let (own, index) = CTX.with(|ctx| {
            let ctx = ctx.borrow();
            let ctx = ctx.as_ref().expect("find_work called off-pool");
            (ctx.worker.pop(), ctx.index)
        });
        // ORDERING: SeqCst on every `pending` decrement below keeps the
        // counter in the same total order as `submit`'s increment and
        // `sleep`'s zero-check; a sleeper may then under- but never
        // over-estimate outstanding work, so it can park spuriously
        // (timed wait recovers) but never miss a job.
        if let Some(job) = own {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        if let Some(job) = self.injector.steal().success() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        for k in 1..self.num_threads {
            let victim = (index + k) % self.num_threads;
            if let Some(job) = self.stealers[victim].steal().success() {
                // ORDERING: SeqCst — same total-order argument as the
                // decrements above.
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// Parks an idle worker until new work is (probably) available.
    fn sleep(&self) {
        let guard = self.sleep_lock.lock().expect("sleep lock poisoned");
        // ORDERING: SeqCst on the register / check / deregister triple —
        // registering before the pending-check is the mirror image of
        // `submit`'s increment-then-check, so a concurrent submitter
        // either sees us in `sleepers` and notifies, or we see its job
        // in `pending` and skip the wait; the shared total order is what
        // rules out both sides missing.
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if self.pending.load(Ordering::SeqCst) == 0 {
            let _ = self
                .sleep_cond
                .wait_timeout(guard, PARK)
                .expect("sleep lock poisoned");
        }
        // ORDERING: SeqCst — deregistration completes the triple above;
        // a submitter that misses us here has already notified.
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(registry: &'static Registry, index: usize, worker: Worker<JobRef>) {
    CTX.with(|ctx| *ctx.borrow_mut() = Some(WorkerCtx { index, worker }));
    loop {
        match registry.find_work() {
            // Jobs handle their own panics (StackJob catches, scope
            // wraps); the outer catch is a last resort so a stray unwind
            // can never kill a pool thread.
            Some(job) => {
                let _ = panic::catch_unwind(AssertUnwindSafe(|| job.execute()));
            }
            None => registry.sleep(),
        }
    }
}

/// Runs `oper_a` and `oper_b`, potentially in parallel, and returns both
/// results. Implements rayon's fork-join contract: `oper_b` is offered
/// to the pool while the calling thread runs `oper_a`; whoever is free
/// first executes it, and the caller steals other work while waiting. A
/// panic in either closure resumes on the caller once both have settled.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = global();
    if registry.num_threads <= 1 {
        // Degenerate pool: inline execution is the fastest correct plan.
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let job_b = StackJob::new(oper_b);
    registry.submit(job_b.as_job_ref());
    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));
    if in_worker() {
        // Work-steal while waiting. The first pop typically returns
        // job_b itself (it sits on top of our own LIFO deque unless a
        // thief took it), which we then execute inline.
        while !job_b.latch.probe() {
            match registry.find_work() {
                Some(job) => job.execute(),
                None => {
                    job_b.latch.wait_timeout(SPIN_PARK);
                }
            }
        }
    } else {
        job_b.latch.wait();
    }
    let result_b = job_b.into_result();
    match (result_a, result_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => panic::resume_unwind(payload),
        (_, Err(payload)) => panic::resume_unwind(payload),
    }
}

/// A fork-join scope: jobs spawned on it may borrow anything that
/// outlives the [`scope`] call, which blocks until all of them finish.
pub struct Scope<'scope> {
    registry: &'static Registry,
    /// Spawned-but-unfinished jobs. Kept *inside* the mutex (not an
    /// atomic beside it): the owner can only observe zero by taking the
    /// lock, and the last job's decrement-and-notify happens under the
    /// same lock, so the owner can never destroy the scope while that
    /// job is still touching it (the teardown use-after-free this
    /// design exists to prevent — see `Latch` for the full argument).
    jobs: Mutex<usize>,
    done_cond: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    // Invariant in 'scope (like real rayon) without affecting Sync.
    marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

/// Creates a scope on the global pool, runs `op` with it, waits for
/// every job spawned inside (including nested spawns), and propagates
/// the first panic, if any, after the scope has drained.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        registry: global(),
        jobs: Mutex::new(0),
        done_cond: Condvar::new(),
        panic: Mutex::new(None),
        marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
    scope.wait_all();
    if let Some(payload) = scope.panic.lock().expect("scope poisoned").take() {
        panic::resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => panic::resume_unwind(payload),
    }
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` onto the pool. The closure may borrow from the
    /// enclosing stack frame (anything outliving `'scope`) and receives
    /// the scope again so it can spawn recursively.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        *self.jobs.lock().expect("scope poisoned") += 1;
        let job = heap_job_erased(move || {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(self))) {
                self.panic
                    .lock()
                    .expect("scope poisoned")
                    .get_or_insert(payload);
            }
            // This must be the job's LAST access to the scope: once the
            // count hits zero the owner is free to destroy it.
            self.job_completed();
        });
        self.registry.submit(job);
    }

    fn job_completed(&self) {
        let mut jobs = self.jobs.lock().expect("scope poisoned");
        *jobs -= 1;
        if *jobs == 0 {
            // Notify while holding the lock (see the `jobs` field docs).
            self.done_cond.notify_all();
        }
    }

    fn wait_all(&self) {
        if in_worker() {
            // Help drain the pool instead of blocking a worker thread.
            loop {
                if *self.jobs.lock().expect("scope poisoned") == 0 {
                    return;
                }
                match self.registry.find_work() {
                    Some(job) => job.execute(),
                    None => {
                        let jobs = self.jobs.lock().expect("scope poisoned");
                        if *jobs == 0 {
                            return;
                        }
                        let _ = self
                            .done_cond
                            .wait_timeout(jobs, SPIN_PARK)
                            .expect("scope poisoned");
                    }
                }
            }
        } else {
            let mut jobs = self.jobs.lock().expect("scope poisoned");
            while *jobs > 0 {
                jobs = self
                    .done_cond
                    .wait_timeout(jobs, PARK)
                    .expect("scope poisoned")
                    .0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_prefers_env_override() {
        assert_eq!(resolve_num_threads(Some("3")), 3);
        assert_eq!(resolve_num_threads(Some(" 8 ")), 8);
        let auto = resolve_num_threads(None);
        assert!(auto >= 1);
        // Invalid values fall back to auto-detection.
        assert_eq!(resolve_num_threads(Some("0")), auto);
        assert_eq!(resolve_num_threads(Some("lots")), auto);
        assert_eq!(resolve_num_threads(Some("")), auto);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_recursion_computes_fib() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn join_propagates_panic_from_b() {
        let caught = panic::catch_unwind(|| {
            join(|| 1, || -> usize { panic!("b failed") });
        });
        assert!(caught.is_err());
        // The pool survives a panicked job.
        let (a, b) = join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn scope_runs_all_spawned_jobs_with_borrows() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn scope_supports_nested_spawns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    s.spawn(|_| {
                        counter.fetch_add(10, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8 * 11);
    }

    #[test]
    fn scope_propagates_job_panic_after_draining() {
        let finished = AtomicUsize::new(0);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|_| panic!("job failed"));
                for _ in 0..10 {
                    s.spawn(|_| {
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(caught.is_err());
        assert_eq!(
            finished.load(Ordering::SeqCst),
            10,
            "sibling jobs still ran to completion"
        );
    }

    #[test]
    fn scopes_from_many_external_threads_share_the_pool() {
        let total = AtomicUsize::new(0);
        std::thread::scope(|threads| {
            for _ in 0..4 {
                threads.spawn(|| {
                    scope(|s| {
                        for _ in 0..50 {
                            s.spawn(|_| {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
