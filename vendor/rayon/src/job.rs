//! Type-erased jobs and completion latches.
//!
//! This module is the only place in the crate (and the workspace) that
//! uses `unsafe`. Two erasures happen here, both with the same shape as
//! real rayon's `job.rs`:
//!
//! * [`StackJob`] — a `join` closure lives on the *caller's* stack; a raw
//!   pointer to it is pushed onto the deques. Sound because `join` does
//!   not return (and therefore the stack frame does not die) until the
//!   job's latch is set.
//! * [`HeapJob`] — a `scope` closure is boxed and its borrow lifetime
//!   erased to `'static`. Sound because `scope` blocks until every
//!   spawned job has completed, so the borrows outlive the job.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A one-shot completion flag that threads can block on.
///
/// Pool workers poll [`Latch::probe`] in a steal-work loop; threads
/// outside the pool block on the condvar via [`Latch::wait`].
///
/// The flag lives *inside* the mutex, and every access — including the
/// probe — goes through it. This is what makes destroying the latch
/// immediately after observing completion sound: an observer can only
/// see `true` by acquiring the mutex, the setter's store and notify both
/// happen under the same mutex, and the setter's final action is its
/// unlock. So by the time any observer returns `true`, the setter can
/// never touch the latch again — there is no window where the owner
/// frees the latch while `set` is still mid-flight (the use-after-free
/// real rayon's latch/sleep split exists to prevent).
pub(crate) struct Latch {
    state: Mutex<bool>,
    cond: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Latch {
        Latch {
            state: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Non-blocking check (one uncontended lock).
    pub(crate) fn probe(&self) -> bool {
        *self.state.lock().expect("latch poisoned")
    }

    /// Sets the latch and wakes every waiter. Notifying while holding
    /// the lock means no waiter can observe `true` and free the latch
    /// before this call has made its last access.
    pub(crate) fn set(&self) {
        let mut state = self.state.lock().expect("latch poisoned");
        *state = true;
        self.cond.notify_all();
    }

    /// Blocks until the latch is set.
    pub(crate) fn wait(&self) {
        let mut state = self.state.lock().expect("latch poisoned");
        while !*state {
            state = self.cond.wait(state).expect("latch poisoned");
        }
    }

    /// Blocks until the latch is set or `dur` elapses; returns the state.
    pub(crate) fn wait_timeout(&self, dur: Duration) -> bool {
        let state = self.state.lock().expect("latch poisoned");
        if *state {
            return true;
        }
        let (state, _) = self.cond.wait_timeout(state, dur).expect("latch poisoned");
        *state
    }
}

/// A type-erased pointer to a job plus the function that executes it.
///
/// The pointee is either a [`StackJob`] on some `join` caller's stack or
/// a leaked [`HeapJob`] box; in both cases the protocol above guarantees
/// it is alive until `execute` runs.
pub(crate) struct JobRef {
    data: *const (),
    // SAFETY: this pointer type's contract is that `data` is alive and
    // is passed at most once; the sole call site, `execute`, discharges
    // both obligations.
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a JobRef only travels between the pushing thread and the one
// executor that pops it; the pointee is Sync-accessible by construction
// (StackJob) or uniquely owned (HeapJob).
#[allow(unsafe_code)]
unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job. Must be called exactly once.
    pub(crate) fn execute(self) {
        // SAFETY: `data` is alive (see type docs) and each JobRef is
        // popped from a queue by exactly one thread.
        #[allow(unsafe_code)]
        unsafe {
            (self.execute_fn)(self.data)
        }
    }
}

enum JobResult<R> {
    Pending,
    Ok(R),
    Panicked(Box<dyn Any + Send>),
}

/// A `join` closure parked on its caller's stack, with the slot its
/// result (or panic payload) is delivered into.
pub(crate) struct StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) latch: Latch,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

// SAFETY: the UnsafeCells are written by the single executing thread and
// read by the owner only after `latch` is set; the latch's internal mutex
// (unlock in `Latch::set`, lock in `probe`/`wait`) orders those accesses.
#[allow(unsafe_code)]
unsafe impl<F, R> Sync for StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F) -> StackJob<F, R> {
        StackJob {
            latch: Latch::new(),
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
        }
    }

    /// Erases `self` into a queueable [`JobRef`].
    ///
    /// The caller must keep `self` alive (not move or drop it) until
    /// `self.latch` is set — `join` guarantees this by blocking.
    pub(crate) fn as_job_ref(&self) -> JobRef {
        // SAFETY: caller contract — `data` must point to a live
        // StackJob<F, R> and the function must run at most once. Both
        // hold because the only producer is the JobRef built below and
        // `join` keeps the StackJob alive until the latch is set.
        #[allow(unsafe_code)]
        unsafe fn execute_erased<F, R>(data: *const ())
        where
            F: FnOnce() -> R + Send,
            R: Send,
        {
            // SAFETY: `data` came from `as_job_ref` on a StackJob<F, R>
            // that outlives its latch (see the fn-level contract above).
            let this = unsafe { &*(data as *const StackJob<F, R>) };
            // SAFETY: this executor is the only thread touching the
            // cells before the latch is set; the owner reads them only
            // after `latch.set()` below.
            let func = unsafe { (*this.func.get()).take().expect("job run twice") };
            let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
                Ok(r) => JobResult::Ok(r),
                Err(payload) => JobResult::Panicked(payload),
            };
            // SAFETY: still pre-latch, so the executor has exclusive
            // access to the result cell; `latch.set()` publishes it.
            unsafe {
                *this.result.get() = result;
            }
            this.latch.set();
        }
        JobRef {
            data: self as *const Self as *const (),
            execute_fn: execute_erased::<F, R>,
        }
    }

    /// Recovers the result after the latch has been set, surfacing the
    /// executing thread's panic payload if the closure panicked.
    pub(crate) fn into_result(self) -> Result<R, Box<dyn Any + Send>> {
        match self.result.into_inner() {
            JobResult::Ok(r) => Ok(r),
            JobResult::Panicked(payload) => Err(payload),
            JobResult::Pending => unreachable!("latch set but no result recorded"),
        }
    }
}

/// Boxes `func`, erases its borrow lifetime, and returns a queueable
/// [`JobRef`] that will run (and free) it exactly once.
///
/// The caller must not let any borrow captured by `func` die before the
/// job has executed — `scope` guarantees this by blocking until its
/// completion counter drains.
pub(crate) fn heap_job_erased<'a, F>(func: F) -> JobRef
where
    F: FnOnce() + Send + 'a,
{
    // SAFETY: caller contract — `data` must be the Box::into_raw pointer
    // produced below, handed over exactly once. The JobRef built below
    // is the only producer and `JobRef::execute` the only caller.
    #[allow(unsafe_code)]
    unsafe fn execute_boxed<F: FnOnce() + Send>(data: *const ()) {
        // SAFETY: `data` is the unique Box::into_raw pointer produced
        // below; re-boxing transfers ownership back and runs the closure
        // once. Panic propagation is the closure's responsibility (the
        // scope machinery wraps user code in catch_unwind).
        let job = unsafe { Box::from_raw(data as *mut F) };
        job();
    }
    let boxed: Box<F> = Box::new(func);
    JobRef {
        data: Box::into_raw(boxed) as *const (),
        execute_fn: execute_boxed::<F>,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn latch_set_and_probe() {
        let latch = Latch::new();
        assert!(!latch.probe());
        latch.set();
        assert!(latch.probe());
        latch.wait(); // returns immediately once set
        assert!(latch.wait_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn latch_wakes_blocked_waiter() {
        let latch = Latch::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                latch.set();
            });
            latch.wait();
            assert!(latch.probe());
        });
    }

    #[test]
    fn stack_job_roundtrip() {
        let job = StackJob::new(|| 6 * 7);
        let job_ref = job.as_job_ref();
        job_ref.execute();
        assert!(job.latch.probe());
        assert_eq!(job.into_result().ok(), Some(42));
    }

    #[test]
    fn stack_job_captures_panic() {
        let job = StackJob::new(|| -> usize { panic!("boom") });
        job.as_job_ref().execute();
        assert!(job.latch.probe(), "latch set even on panic");
        assert!(job.into_result().is_err());
    }

    #[test]
    fn heap_job_runs_once_with_borrows() {
        let counter = AtomicUsize::new(0);
        let job = heap_job_erased(|| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        job.execute();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
