//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the subset this workspace's property tests use:
//!
//! * [`Strategy`] over primitive ranges, tuples, [`prop_map`](Strategy::prop_map),
//!   [`prop_filter`](Strategy::prop_filter) and [`collection::vec`];
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`];
//! * a deterministic runner: case `k` of test `t` always draws from the
//!   same seed, so failures reproduce without a persistence file.
//!
//! There is **no shrinking** — a failing case reports its case index and
//! seed instead of a minimised input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
    /// Mirrors `proptest::prelude::prop` (module alias).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case and draw another.
    Reject(String),
    /// `prop_assert!`/`prop_assert_eq!` failed: the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the rejection variant.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Keeps only values satisfying `pred`; draws are retried until one
    /// passes (up to an internal attempt cap).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            reason,
            pred,
        }
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive draws",
            self.reason
        );
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Rng, StdRng, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length is uniform in `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property test: draws cases until `config.cases` of them
/// are accepted, rerunning on [`TestCaseError::Reject`] and panicking on
/// the first [`TestCaseError::Fail`].
///
/// Case `k` of test `name` always uses the same RNG seed, derived from
/// `(name, k)`, so a failure message's case index fully reproduces it.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut hasher = DefaultHasher::new();
    name.hash(&mut hasher);
    let base_seed = hasher.finish();

    let mut accepted: u32 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = config.cases as u64 * 16 + 256;
    while accepted < config.cases {
        attempt += 1;
        if attempt > max_attempts {
            panic!(
                "proptest {name}: gave up after {max_attempts} attempts \
                 ({accepted}/{} cases accepted; too many prop_assume rejections)",
                config.cases
            );
        }
        let seed = base_seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name}: case failed (attempt {attempt}, seed {seed:#x}):\n{msg}")
            }
        }
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     fn addition_commutes(a in -1e3f64..1e3, b in -1e3f64..1e3) {
///         prop_assert!((a + b) == (b + a));
///     }
/// }
/// # addition_commutes();
/// ```
///
/// (Tests normally also carry `#[test]`, as in the real proptest; the
/// attribute is forwarded verbatim.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_tests! { [$cfg] $($rest)* }
    };
}

/// `assert!` for property bodies: fails the case instead of panicking,
/// so the runner can report the case index and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                l, r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discards the current case (it does not count towards `cases`) when
/// the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..=4) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn map_and_filter_compose(e in evens().prop_filter("positive", |&e| e > 0)) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(e > 0, "filter keeps {} positive", e);
        }

        #[test]
        fn assume_discards((a, b) in (0u32..10, 0u32..10)) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }

        #[test]
        fn vec_strategy_obeys_size(v in crate::collection::vec(0.0f64..1.0, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn failures_panic_with_seed() {
        let result = std::panic::catch_unwind(|| {
            crate::run_proptest(
                &ProptestConfig::with_cases(8),
                "always_fails",
                |_rng| -> Result<(), TestCaseError> { Err(TestCaseError::fail("nope")) },
            );
        });
        let err = result.expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails") && msg.contains("seed"));
    }
}
