//! Offline vendored stand-in for the slice of [`mio`](https://crates.io/crates/mio)
//! this workspace uses: a readiness poller over Linux `epoll` with an
//! `eventfd` waker, declared through raw `extern "C"` prototypes (the
//! build environment has no crates.io access, so there is no `libc`
//! crate either).
//!
//! The API mirrors mio's shape without its generality:
//!
//! * [`Poll`] wraps an epoll instance — `register`/`reregister`/
//!   `deregister` raw fds with a [`Token`] and an [`Interest`]
//!   (readable/writable, level-triggered by default, edge-triggered on
//!   request), and [`Poll::poll`] fills an [`Events`] buffer;
//! * [`Waker`] wraps an `eventfd` registered with a `Poll`; `wake()` is
//!   async-signal-ish cheap (one 8-byte write) and safe to call from
//!   any thread, which is how worker threads nudge a reactor parked in
//!   `epoll_wait`;
//! * fds stay owned by the caller (std sockets set nonblocking via
//!   `set_nonblocking`); this crate only owns the epoll and eventfd
//!   descriptors it creates.
//!
//! Divergences from upstream: no `Source` trait (raw fds only), no
//! `Registry` split, single-threaded `poll` (callers own the `Poll`
//! from one thread), and non-Linux targets get a stub whose operations
//! fail with [`std::io::ErrorKind::Unsupported`].
//!
//! `unsafe` is confined to the FFI call sites in `sys`; every block
//! carries a SAFETY argument. The crate root deliberately carries
//! `#![deny(unsafe_code)]` (not `forbid`) so each site is an explicit,
//! reviewable `#[allow(unsafe_code)]` opt-in — the same policy as the
//! vendored rayon runtime.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::io;
use std::time::Duration;

/// Raw file descriptor, as in `std::os::fd::RawFd` on Unix.
pub type RawFd = i32;

// ---- tokens & interest -------------------------------------------------

/// Caller-chosen identifier attached to a registration and echoed back
/// in every [`Event`] for that fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness classes a registration subscribes to. Combine with
/// [`Interest::add`]; level-triggered unless [`Interest::edge`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    bits: u8,
}

const INT_READ: u8 = 1;
const INT_WRITE: u8 = 2;
const INT_EDGE: u8 = 4;

impl Interest {
    /// Readable readiness (`EPOLLIN`, plus peer-close via `EPOLLRDHUP`).
    pub const READABLE: Interest = Interest { bits: INT_READ };
    /// Writable readiness (`EPOLLOUT`).
    pub const WRITABLE: Interest = Interest { bits: INT_WRITE };
    /// No readiness classes: the registration stays armed for the
    /// always-on error/hangup notifications (`EPOLLERR`/`EPOLLHUP`)
    /// but delivers neither readable nor writable events — how a
    /// reactor suspends a connection (e.g. a full pipeline) without
    /// deregistering it.
    pub const NONE: Interest = Interest { bits: 0 };

    /// Union of two interests. The name matches upstream `mio`'s
    /// `Interest::add`, which is what callers are written against.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest {
            bits: self.bits | other.bits,
        }
    }

    /// Switches the registration to edge-triggered (`EPOLLET`): an event
    /// fires once per readiness *transition*, so the caller must drain
    /// the fd to `WouldBlock` before the next event can arrive.
    #[must_use]
    pub fn edge(self) -> Interest {
        Interest {
            bits: self.bits | INT_EDGE,
        }
    }

    /// Subscribes to readable readiness?
    pub fn is_readable(self) -> bool {
        self.bits & INT_READ != 0
    }

    /// Subscribes to writable readiness?
    pub fn is_writable(self) -> bool {
        self.bits & INT_WRITE != 0
    }

    /// Edge-triggered?
    pub fn is_edge(self) -> bool {
        self.bits & INT_EDGE != 0
    }

    fn epoll_bits(self) -> u32 {
        let mut ev = 0;
        if self.is_readable() {
            ev |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.is_writable() {
            ev |= sys::EPOLLOUT;
        }
        if self.is_edge() {
            ev |= sys::EPOLLET;
        }
        ev
    }
}

// ---- events ------------------------------------------------------------

/// One readiness notification: the registration's [`Token`] plus the
/// readiness classes the kernel reported.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    bits: u32,
    token: u64,
}

impl Event {
    /// The token supplied at registration.
    pub fn token(&self) -> Token {
        Token(self.token as usize)
    }

    /// Readable — data available, or the peer closed (a read will
    /// observe EOF rather than block).
    pub fn is_readable(&self) -> bool {
        self.bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }

    /// Writable — the send buffer has room.
    pub fn is_writable(&self) -> bool {
        self.bits & sys::EPOLLOUT != 0
    }

    /// Error condition on the fd (e.g. `ECONNRESET`); the next I/O call
    /// surfaces the specific errno.
    pub fn is_error(&self) -> bool {
        self.bits & sys::EPOLLERR != 0
    }

    /// The peer closed its end (`EPOLLHUP`/`EPOLLRDHUP`).
    pub fn is_closed(&self) -> bool {
        self.bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }
}

/// Reusable buffer `Poll::poll` fills with the ready [`Event`]s.
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer that can carry up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![sys::EpollEvent::default(); capacity.max(1)],
            len: 0,
        }
    }

    /// Events delivered by the last poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|e| Event {
            bits: e.events(),
            token: e.data(),
        })
    }

    /// Number of events delivered by the last poll.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No events were delivered by the last poll.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum events a single poll can deliver into this buffer.
    pub fn capacity(&self) -> usize {
        self.raw.len()
    }
}

// ---- poll --------------------------------------------------------------

/// An epoll instance. Registrations map raw fds to [`Token`]s; `poll`
/// parks the calling thread until an fd is ready, the timeout lapses,
/// or a [`Waker`] fires.
#[derive(Debug)]
pub struct Poll {
    epfd: sys::OwnedFd,
}

impl Poll {
    /// Creates a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            epfd: sys::epoll_create()?,
        })
    }

    /// Adds `fd` with the given token and interest. The fd must remain
    /// open while registered; the caller keeps ownership.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl_op(
            self.epfd.raw(),
            sys::EPOLL_CTL_ADD,
            fd,
            interest.epoll_bits(),
            token.0 as u64,
        )
    }

    /// Replaces the token/interest of an existing registration.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl_op(
            self.epfd.raw(),
            sys::EPOLL_CTL_MOD,
            fd,
            interest.epoll_bits(),
            token.0 as u64,
        )
    }

    /// Removes an fd's registration. Closing an fd deregisters it
    /// implicitly, so reactors usually just drop the socket.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_ctl_op(self.epfd.raw(), sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness. `None` blocks indefinitely (until an event
    /// or a waker); `Some(d)` waits at most `d` (rounded up to whole
    /// milliseconds so short timeouts don't busy-spin). Interrupted
    /// waits (`EINTR`) report zero events rather than an error.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        // chaos: a spurious wakeup — poll returns empty-handed as if the
        // kernel woke it for nothing. Registrations are level-triggered
        // by default, so no readiness is lost; the caller's next tick
        // re-observes it. Callers that can't tolerate this are the bug
        // this site exists to flush out.
        #[cfg(feature = "chaos")]
        if pieri_chaos::fires("poll.spurious").is_some() {
            events.len = 0;
            return Ok(0);
        }
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms.min(i32::MAX as u128) as i32
                }
            }
        };
        events.len = sys::epoll_wait_into(self.epfd.raw(), &mut events.raw, timeout_ms)?;
        // trace: an instantaneous event per productive wakeup (idle
        // timeout ticks stay silent to keep the rings signal-dense).
        #[cfg(feature = "trace")]
        if events.len > 0 {
            pieri_trace::event("poll.wake", "io");
        }
        Ok(events.len)
    }
}

// ---- waker -------------------------------------------------------------

/// Cross-thread wakeup for a [`Poll`]: an `eventfd` registered
/// level-triggered readable under a caller-chosen token. `wake()` from
/// any thread makes the next (or current) `poll` return an event with
/// that token; the poller calls [`Waker::drain`] to re-arm it.
#[derive(Debug)]
pub struct Waker {
    efd: sys::OwnedFd,
}

impl Waker {
    /// Creates the eventfd and registers it with `poll` under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let efd = sys::eventfd_new()?;
        poll.register(efd.raw(), token, Interest::READABLE)?;
        Ok(Waker { efd })
    }

    /// Nudges the poller. Never blocks: if the eventfd counter is
    /// already saturated a pending wakeup exists, which is all a caller
    /// needs.
    pub fn wake(&self) -> io::Result<()> {
        // trace: records on the *waking* thread (an engine worker or
        // acceptor), marking the cross-thread nudge itself.
        #[cfg(feature = "trace")]
        pieri_trace::event("waker.notify", "io");
        match sys::fd_write_u64(self.efd.raw(), 1) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            other => other.map(|_| ()),
        }
    }

    /// Consumes pending wakeups so the next `poll` blocks again.
    /// Nonblocking; safe to call when no wakeup is pending.
    pub fn drain(&self) {
        sys::fd_drain_u64(self.efd.raw());
    }
}

// ---- net: SO_REUSEPORT listeners ---------------------------------------

/// Socket creation beyond what std exposes: `SO_REUSEPORT` listener
/// binding, the primitive behind zero-downtime restarts. Several
/// listeners (across processes or server generations within one) bind
/// the same address and the kernel load-balances incoming connections
/// across whichever are still open; when the old generation closes its
/// listener, every new connection lands on the new one — no accept
/// gap, no dropped SYN backlog handoff dance.
pub mod net {
    use std::io;
    use std::net::{SocketAddr, TcpListener};

    /// Creates an IPv4 TCP listener with `SO_REUSEADDR` and
    /// `SO_REUSEPORT` set before `bind`. The returned listener is an
    /// ordinary [`std::net::TcpListener`] (blocking until the caller
    /// says otherwise). IPv6 addresses fail with
    /// [`io::ErrorKind::Unsupported`], as does any call on non-Linux
    /// targets.
    pub fn bind_reuseport(addr: SocketAddr) -> io::Result<TcpListener> {
        match addr {
            SocketAddr::V4(v4) => super::sys::bind_reuseport(v4),
            SocketAddr::V6(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "bind_reuseport supports IPv4 only",
            )),
        }
    }
}

// ---- sys: Linux FFI ----------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    //! Raw epoll/eventfd bindings. All `unsafe` lives here.

    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// Kernel `struct epoll_event`. Packed on x86-64 (the kernel ABI
    /// packs it there so 32-bit userland matches); naturally aligned
    /// everywhere else.
    #[cfg(target_arch = "x86_64")]
    #[derive(Debug, Clone, Copy, Default)]
    #[repr(C, packed)]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// Kernel `struct epoll_event` (naturally aligned variant).
    #[cfg(not(target_arch = "x86_64"))]
    #[derive(Debug, Clone, Copy, Default)]
    #[repr(C)]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }

    impl EpollEvent {
        /// Readiness bit set (by-value copy, safe on the packed layout).
        pub fn events(&self) -> u32 {
            self.events
        }

        /// User data = the registration token.
        pub fn data(&self) -> u64 {
            self.data
        }
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, addrlen: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
    }

    /// An fd this crate created and must close. Not `Clone`; dropping
    /// closes.
    #[derive(Debug)]
    pub struct OwnedFd(i32);

    impl OwnedFd {
        pub fn raw(&self) -> i32 {
            self.0
        }

        /// Releases ownership: the fd is returned un-closed and this
        /// handle's Drop never runs.
        pub fn into_raw(self) -> i32 {
            let fd = self.0;
            std::mem::forget(self);
            fd
        }
    }

    impl Drop for OwnedFd {
        fn drop(&mut self) {
            // SAFETY: `self.0` came from a successful epoll_create1 or
            // eventfd call and is closed exactly once (OwnedFd is not
            // Clone and the field is never exposed mutably).
            #[allow(unsafe_code)]
            unsafe {
                close(self.0);
            }
        }
    }

    pub fn epoll_create() -> io::Result<OwnedFd> {
        // SAFETY: epoll_create1 takes a flags word and touches no
        // caller memory; a negative return is the error case.
        #[allow(unsafe_code)]
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(OwnedFd(fd))
    }

    pub fn epoll_ctl_op(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` is a live, properly laid out (repr(C)) stack
        // value for the duration of the call; the kernel only reads it
        // (EPOLL_CTL_DEL ignores it entirely).
        #[allow(unsafe_code)]
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn epoll_wait_into(
        epfd: i32,
        buf: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        debug_assert!(!buf.is_empty());
        // SAFETY: `buf` is a live mutable slice; maxevents is exactly
        // its length (capped to i32), so the kernel writes only within
        // bounds. EpollEvent is plain old data, so partially
        // initialised tails are never read (we take only `n` entries).
        #[allow(unsafe_code)]
        let n = unsafe {
            epoll_wait(
                epfd,
                buf.as_mut_ptr(),
                buf.len().min(i32::MAX as usize) as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }

    pub fn eventfd_new() -> io::Result<OwnedFd> {
        // SAFETY: eventfd takes two scalar arguments and touches no
        // caller memory; a negative return is the error case.
        #[allow(unsafe_code)]
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(OwnedFd(fd))
    }

    pub fn fd_write_u64(fd: i32, value: u64) -> io::Result<()> {
        let bytes = value.to_ne_bytes();
        // SAFETY: writes exactly 8 bytes from a live stack buffer of
        // that size; the fd is nonblocking so the call cannot park.
        #[allow(unsafe_code)]
        let n = unsafe { write(fd, bytes.as_ptr(), bytes.len()) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn fd_drain_u64(fd: i32) {
        let mut bytes = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live stack buffer of
        // that size; the fd is nonblocking so the call cannot park.
        #[allow(unsafe_code)]
        let n = unsafe { read(fd, bytes.as_mut_ptr(), bytes.len()) };
        // An eventfd read empties the whole counter in one shot; errors
        // (EAGAIN when already empty) mean there is nothing to drain.
        let _ = n;
    }

    /// Kernel `struct sockaddr_in` (IPv4). Port and address are stored
    /// in network byte order.
    #[repr(C)]
    pub struct SockAddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    pub fn bind_reuseport(addr: std::net::SocketAddrV4) -> io::Result<std::net::TcpListener> {
        const AF_INET: i32 = 2;
        const SOCK_STREAM: i32 = 1;
        const SOCK_CLOEXEC: i32 = 0o2000000;
        const SOL_SOCKET: i32 = 1;
        const SO_REUSEADDR: i32 = 2;
        const SO_REUSEPORT: i32 = 15;

        // SAFETY: socket takes three scalars and touches no caller
        // memory; a negative return is the error case.
        // SAFETY: `socket(2)` takes three plain integers and touches no
        // caller memory; the returned fd (checked below) is wrapped in
        // `OwnedFd` immediately so every exit path closes it.
        #[allow(unsafe_code)]
        let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // From here the fd is owned: any early error path closes it.
        let owned = OwnedFd(fd);
        let one: i32 = 1;
        let optval = (&one as *const i32).cast();
        for opt in [SO_REUSEADDR, SO_REUSEPORT] {
            // SAFETY: `optval` points at a live 4-byte i32 for the
            // duration of the call and optlen matches its size; the
            // kernel only reads it.
            #[allow(unsafe_code)]
            let rc = unsafe { setsockopt(owned.raw(), SOL_SOCKET, opt, optval, 4) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        let sa = SockAddrIn {
            sin_family: AF_INET as u16,
            sin_port: addr.port().to_be(),
            sin_addr: u32::from(*addr.ip()).to_be(),
            sin_zero: [0; 8],
        };
        // SAFETY: `sa` is a live repr(C) sockaddr_in for the duration of
        // the call and addrlen is exactly its size; the kernel only
        // reads it.
        #[allow(unsafe_code)]
        let rc = unsafe { bind(owned.raw(), &sa, std::mem::size_of::<SockAddrIn>() as u32) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: listen takes two scalars and touches no caller memory.
        #[allow(unsafe_code)]
        let rc = unsafe { listen(owned.raw(), 1024) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        use std::os::fd::FromRawFd;
        // SAFETY: the fd is a freshly created listening socket whose
        // sole owner is `owned`; `into_raw` transfers that ownership
        // exactly once to the std listener, which closes it on drop.
        #[allow(unsafe_code)]
        Ok(unsafe { std::net::TcpListener::from_raw_fd(owned.into_raw()) })
    }
}

// ---- sys: non-Linux stub -----------------------------------------------

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Stub for non-Linux targets: compiles, every operation fails with
    //! `ErrorKind::Unsupported`. The service falls back to refusing to
    //! start its reactor there.

    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    /// Mirror of the Linux event record.
    #[derive(Debug, Clone, Copy, Default)]
    #[repr(C)]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }

    impl EpollEvent {
        pub fn events(&self) -> u32 {
            self.events
        }

        pub fn data(&self) -> u64 {
            self.data
        }
    }

    #[derive(Debug)]
    pub struct OwnedFd(i32);

    impl OwnedFd {
        pub fn raw(&self) -> i32 {
            self.0
        }
    }

    fn unsupported() -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, "mio-lite requires Linux epoll")
    }

    pub fn epoll_create() -> io::Result<OwnedFd> {
        Err(unsupported())
    }

    pub fn epoll_ctl_op(
        _epfd: i32,
        _op: i32,
        _fd: i32,
        _events: u32,
        _data: u64,
    ) -> io::Result<()> {
        Err(unsupported())
    }

    pub fn epoll_wait_into(
        _epfd: i32,
        _buf: &mut [EpollEvent],
        _timeout_ms: i32,
    ) -> io::Result<usize> {
        Err(unsupported())
    }

    pub fn eventfd_new() -> io::Result<OwnedFd> {
        Err(unsupported())
    }

    pub fn fd_write_u64(_fd: i32, _value: u64) -> io::Result<()> {
        Err(unsupported())
    }

    pub fn fd_drain_u64(_fd: i32) {}

    pub fn bind_reuseport(_addr: std::net::SocketAddrV4) -> io::Result<std::net::TcpListener> {
        Err(unsupported())
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    /// Connected nonblocking (client, server) pair on loopback.
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    #[test]
    fn writable_readiness_on_fresh_socket() {
        let poll = Poll::new().unwrap();
        let (client, _server) = tcp_pair();
        poll.register(client.as_raw_fd(), Token(7), Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_writable());
    }

    #[test]
    fn readable_after_peer_write_and_deregister_silences() {
        let poll = Poll::new().unwrap();
        let (mut client, server) = tcp_pair();
        poll.register(server.as_raw_fd(), Token(3), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        assert_eq!(
            poll.poll(&mut events, Some(Duration::from_millis(50)))
                .unwrap(),
            0,
            "no data yet"
        );
        client.write_all(b"ping").unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token(), Token(3));
        assert!(ev.is_readable());

        poll.deregister(server.as_raw_fd()).unwrap();
        assert_eq!(
            poll.poll(&mut events, Some(Duration::from_millis(50)))
                .unwrap(),
            0,
            "deregistered fd no longer reports"
        );
    }

    #[test]
    fn level_refires_until_drained_edge_fires_once() {
        let poll = Poll::new().unwrap();
        let (mut client, mut server) = tcp_pair();
        poll.register(server.as_raw_fd(), Token(1), Interest::READABLE)
            .unwrap();
        client.write_all(b"data").unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        // Level-triggered: unread data keeps the fd ready.
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(events.len(), 1, "level readiness re-fires");

        // Edge-triggered: after one notification, silence until the
        // next transition.
        poll.reregister(server.as_raw_fd(), Token(1), Interest::READABLE.edge())
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(events.len(), 1, "re-arm reports the pending data once");
        poll.poll(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(events.len(), 0, "edge does not re-fire without new bytes");

        let mut buf = [0u8; 16];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"data");
        client.write_all(b"more").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1, "new bytes are a fresh edge");
    }

    #[test]
    fn waker_crosses_threads_and_drains() {
        let poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poll, Token(0)).unwrap());
        let remote = std::sync::Arc::clone(&waker);
        // lint:allow(no-raw-thread-spawn) — test-only: the cross-thread wake is the behaviour under test
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake().unwrap();
        });
        let mut events = Events::with_capacity(4);
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token(), Token(0));
        handle.join().unwrap();

        waker.drain();
        assert_eq!(
            poll.poll(&mut events, Some(Duration::from_millis(50)))
                .unwrap(),
            0,
            "drained waker re-arms"
        );
        // Saturating wakes never error or block.
        for _ in 0..100 {
            waker.wake().unwrap();
        }
        assert_eq!(
            poll.poll(&mut events, Some(Duration::from_secs(2)))
                .unwrap(),
            1
        );
    }

    #[test]
    fn reuseport_listeners_share_an_address() {
        let first = net::bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        // A second listener on the very same address must succeed — that
        // concurrent-bind window is the whole point of SO_REUSEPORT.
        let second = net::bind_reuseport(addr).unwrap();
        assert_eq!(second.local_addr().unwrap(), addr);

        // The kernel hashes each connection to one of the live
        // listeners; with both nonblocking, every connect must be
        // accepted by exactly one of them.
        first.set_nonblocking(true).unwrap();
        second.set_nonblocking(true).unwrap();
        let mut accepted = 0;
        let mut clients = Vec::new();
        for _ in 0..8 {
            clients.push(TcpStream::connect(addr).unwrap());
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while accepted < clients.len() && std::time::Instant::now() < deadline {
            for listener in [&first, &second] {
                match listener.accept() {
                    Ok(_) => accepted += 1,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("accept failed: {e}"),
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(accepted, clients.len());

        // After the first listener closes, connects still succeed via
        // the survivor — the drain/restart handoff in miniature.
        drop(first);
        let late = TcpStream::connect(addr).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match second.accept() {
                Ok(_) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "survivor never accepted"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("accept failed: {e}"),
            }
        }
        drop(late);

        let v6 = net::bind_reuseport("[::1]:0".parse().unwrap());
        assert_eq!(v6.unwrap_err().kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn interest_algebra() {
        let rw = Interest::READABLE.add(Interest::WRITABLE);
        assert!(rw.is_readable() && rw.is_writable() && !rw.is_edge());
        assert!(rw.edge().is_edge());
        assert_eq!(Token(5), Token(5));
    }
}
