//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the slice of the `rand 0.8` API that the
//! workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator;
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion, so one
//!   `u64` reproduces a whole stream;
//! * [`Rng::gen_range`] — uniform sampling from half-open and inclusive
//!   ranges of the primitive numeric types.
//!
//! The streams are *not* bit-compatible with the real `rand` crate (the
//! real `StdRng` is ChaCha12); everything in the workspace only relies on
//! determinism-per-seed, which this crate guarantees and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random data.
///
/// Only [`next_u64`](RngCore::next_u64) is required; everything else is
/// derived from it.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, in the style of `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 64 random bits into a double uniform in `[0, 1)`.
fn u01(bits: u64) -> f64 {
    // 53 random mantissa bits; the standard ldexp-style conversion.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = u01(rng.next_u64());
        let x = self.start + (self.end - self.start) * u;
        // Guard against round-up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * u01(rng.next_u64())
    }
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_sample_range! {
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    ///
    /// Not the ChaCha12 generator of the real `rand` crate — only
    /// determinism per seed is promised, not stream compatibility.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xa: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 60)).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1 << 60)).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let k: usize = rng.gen_range(0..5);
            seen[k] = true;
            let j: usize = rng.gen_range(0..=4);
            assert!(j <= 4);
            let e: u32 = rng.gen_range(0u32..3);
            assert!(e < 3);
            let s: i32 = rng.gen_range(0i32..6);
            assert!((0..6).contains(&s));
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
