//! Offline vendored minimal JSON library.
//!
//! The build environment has no access to crates.io, so `pieri-service`
//! cannot use `serde_json`; this crate provides the small document-model
//! surface the service's wire format needs, in the same spirit as the
//! other `vendor/` stand-ins:
//!
//! * [`Value`] — the JSON document model (null, bool, finite `f64`
//!   numbers, strings, arrays, objects);
//! * [`parse`] — a recursive-descent parser with a depth limit and
//!   precise error positions;
//! * [`Value::serialize`] — compact serialization; round-trips every
//!   value this crate can represent (`f64` via shortest-exact `{:?}`
//!   formatting).
//!
//! Divergences from full JSON, all irrelevant to the wire format and
//! documented here for honesty: numbers are IEEE `f64` (like
//! `serde_json`'s default) so integers beyond 2⁵³ lose precision;
//! objects preserve insertion order via a `Vec` of pairs (duplicate keys:
//! last one wins on lookup, both are kept on serialize); `NaN`/`Inf`
//! cannot be serialized (JSON has no representation — attempting it is
//! an error at construction time, not a panic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth [`parse`] accepts, guarding the recursive
/// parser against stack exhaustion from adversarial input.
pub const MAX_DEPTH: usize = 128;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Always finite — [`Value::number`] rejects NaN/Inf.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Errors from parsing or constructing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Input ended before a complete value was read.
    UnexpectedEnd,
    /// An unexpected byte at the given offset.
    Unexpected {
        /// Byte offset into the input.
        at: usize,
        /// What was found (a short description).
        found: String,
    },
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// Trailing non-whitespace after the top-level value.
    TrailingData {
        /// Byte offset of the first trailing byte.
        at: usize,
    },
    /// A non-finite number cannot be represented in JSON.
    NonFiniteNumber,
    /// A string contained an invalid escape or control character.
    BadString {
        /// Byte offset of the offending character.
        at: usize,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::UnexpectedEnd => write!(f, "unexpected end of JSON input"),
            JsonError::Unexpected { at, found } => {
                write!(f, "unexpected {found} at byte {at}")
            }
            JsonError::TooDeep => write!(f, "JSON nesting exceeds {MAX_DEPTH} levels"),
            JsonError::TrailingData { at } => {
                write!(f, "trailing data after JSON value at byte {at}")
            }
            JsonError::NonFiniteNumber => write!(f, "non-finite number has no JSON form"),
            JsonError::BadString { at } => write!(f, "malformed JSON string at byte {at}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// A finite number value; `Err(NonFiniteNumber)` for NaN/±Inf.
    pub fn number(x: f64) -> Result<Value, JsonError> {
        if x.is_finite() {
            Ok(Value::Number(x))
        } else {
            Err(JsonError::NonFiniteNumber)
        }
    }

    /// Object member by key (last occurrence wins), or `None`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `u64` if it is a number that is a non-negative
    /// integer representable without rounding.
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if x >= 0.0 && x <= 2f64.powi(53) && x.fract() == 0.0 {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The value as `usize` (via [`Value::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|x| usize::try_from(x).ok())
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object pairs if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compact serialization (no whitespace).
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(x) => write_number(*x, out),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Value {
        Value::Number(x as f64)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

impl From<BTreeMap<String, Value>> for Value {
    fn from(map: BTreeMap<String, Value>) -> Value {
        Value::Object(map.into_iter().collect())
    }
}

/// Builds an object value from key/value pairs in the given order.
pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Shortest-exact `f64` formatting: Rust's `{:?}` prints the shortest
/// decimal that parses back to the same bits, which is exactly the
/// round-trip guarantee a wire format wants. Integral values print as
/// `1.0`; trim the trailing `.0` to the canonical JSON integer form.
fn write_number(x: f64, out: &mut String) {
    debug_assert!(x.is_finite(), "Value::Number must hold a finite f64");
    let s = format!("{x:?}");
    out.push_str(s.strip_suffix(".0").unwrap_or(&s));
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value from `input` (leading/trailing whitespace
/// allowed; anything else after the value is [`JsonError::TrailingData`]).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(JsonError::TrailingData { at: p.pos });
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(x) if x == b => {
                self.pos += 1;
                Ok(())
            }
            Some(x) => Err(JsonError::Unexpected {
                at: self.pos,
                found: format!("byte {:?}", x as char),
            }),
            None => Err(JsonError::UnexpectedEnd),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::Unexpected {
                at: self.pos,
                found: "invalid literal".to_string(),
            })
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek() {
            None => Err(JsonError::UnexpectedEnd),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(x) => Err(JsonError::Unexpected {
                at: self.pos,
                found: format!("byte {:?}", x as char),
            }),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                Some(x) => {
                    return Err(JsonError::Unexpected {
                        at: self.pos,
                        found: format!("byte {:?} (expected ',' or ']')", x as char),
                    })
                }
                None => return Err(JsonError::UnexpectedEnd),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                Some(x) => {
                    return Err(JsonError::Unexpected {
                        at: self.pos,
                        found: format!("byte {:?} (expected ',' or '}}')", x as char),
                    })
                }
                None => return Err(JsonError::UnexpectedEnd),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        let start = self.pos;
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(JsonError::UnexpectedEnd);
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or(JsonError::UnexpectedEnd)?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for astral chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(JsonError::BadString { at: start });
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or(JsonError::BadString { at: start })?);
                        }
                        _ => return Err(JsonError::BadString { at: self.pos - 1 }),
                    }
                }
                0x00..=0x1F => return Err(JsonError::BadString { at: self.pos }),
                _ => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid; find the char at this byte offset).
                    let tail = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::BadString { at: self.pos })?;
                    let c = tail.chars().next().ok_or(JsonError::UnexpectedEnd)?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let rest = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or(JsonError::UnexpectedEnd)?;
        let s = std::str::from_utf8(rest).map_err(|_| JsonError::BadString { at: self.pos })?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| JsonError::BadString { at: self.pos })?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one `0`, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => {
                return Err(JsonError::Unexpected {
                    at: self.pos,
                    found: "invalid number".to_string(),
                })
            }
        }
        // Fraction.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::Unexpected {
                    at: self.pos,
                    found: "digit expected after '.'".to_string(),
                });
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::Unexpected {
                    at: self.pos,
                    found: "digit expected in exponent".to_string(),
                });
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let x: f64 = text.parse().map_err(|_| JsonError::Unexpected {
            at: start,
            found: "unparseable number".to_string(),
        })?;
        if !x.is_finite() {
            // Overflowing literals (1e999) have no faithful f64 form.
            return Err(JsonError::NonFiniteNumber);
        }
        Ok(Value::Number(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let s = v.serialize();
        let back = parse(&s).unwrap_or_else(|e| panic!("reparse {s:?}: {e}"));
        assert_eq!(&back, v, "round-trip through {s:?}");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(parse("0").unwrap(), Value::Number(0.0));
        assert_eq!(
            parse("\"a\\nb\\u00e9\"").unwrap(),
            Value::String("a\nbé".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn f64_round_trips_exactly() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            std::f64::consts::PI,
            1e-308,
            1.7976931348623157e308,
            0.1 + 0.2,
        ] {
            let s = Value::Number(x).serialize();
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x:?} via {s:?}");
        }
    }

    #[test]
    fn round_trips_structures() {
        roundtrip(&Value::Null);
        roundtrip(&Value::String(
            "quote \" backslash \\ tab \t déjà 🚀".into(),
        ));
        roundtrip(&object([
            ("re", Value::Number(1.25)),
            ("im", Value::Number(-3.5e-9)),
            ("tags", Value::Array(vec![Value::Bool(true), Value::Null])),
        ]));
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".to_string())
        );
        assert!(matches!(
            parse("\"\\ud83d\""),
            Err(JsonError::BadString { .. })
        ));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(parse(""), Err(JsonError::UnexpectedEnd)));
        assert!(matches!(parse("[1,"), Err(JsonError::UnexpectedEnd)));
        assert!(matches!(
            parse("{\"a\" 1}"),
            Err(JsonError::Unexpected { .. })
        ));
        assert!(matches!(parse("01"), Err(JsonError::TrailingData { .. })));
        assert!(matches!(parse("1 2"), Err(JsonError::TrailingData { .. })));
        assert!(matches!(parse("nul"), Err(JsonError::Unexpected { .. })));
        assert!(matches!(parse("1e999"), Err(JsonError::NonFiniteNumber)));
        assert!(matches!(
            parse("\"\u{01}\""),
            Err(JsonError::BadString { .. })
        ));
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(parse(&deep), Err(JsonError::TooDeep));
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_last_wins_on_get() {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn integer_helpers() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_usize(), Some(42));
    }

    #[test]
    fn non_finite_numbers_rejected_at_construction() {
        assert_eq!(Value::number(f64::NAN), Err(JsonError::NonFiniteNumber));
        assert_eq!(
            Value::number(f64::INFINITY),
            Err(JsonError::NonFiniteNumber)
        );
        assert_eq!(Value::number(2.5), Ok(Value::Number(2.5)));
    }
}
