//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness: the group/`BenchmarkId`/`Bencher::iter` API surface
//! this workspace's benches use, timed with `std::time::Instant` and
//! reported as mean/min/max per iteration on stdout. No statistics,
//! plots or baselines.
//!
//! Command-line compatibility: `--test` (run every benchmark body once,
//! used when bench targets run under `cargo test`) and a positional
//! filter substring are honoured; other flags are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver. Holds the measurement configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().render();
        let (sample_size, measurement_time, warm_up_time, test_mode) = (
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            self.test_mode,
        );
        self.run_one(
            &id,
            sample_size,
            measurement_time,
            warm_up_time,
            test_mode,
            f,
        );
        self
    }

    fn run_one<F>(
        &mut self,
        id: &str,
        sample_size: usize,
        measurement_time: Duration,
        warm_up_time: Duration,
        test_mode: bool,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            measurement_time,
            warm_up_time,
            test_mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if test_mode {
            println!("Testing {id} ... ok");
            return;
        }
        println!("{id}\n{}", bencher.report());
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benchmarks `f`, passing it `input` alongside the [`Bencher`].
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Benchmarks `f` under this group's name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().render());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let (measurement_time, warm_up_time, test_mode) = (
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
            self.criterion.test_mode,
        );
        self.criterion.run_one(
            &id,
            sample_size,
            measurement_time,
            warm_up_time,
            test_mode,
            f,
        );
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished by its parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(self) -> String {
        match (self.function, self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f,
            (None, Some(p)) => p,
            (None, None) => String::from("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly: warm-up until the configured warm-up
    /// time elapses, then `sample_size` timed samples (stopping early if
    /// the measurement budget runs out).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let measure_deadline = Instant::now() + self.measurement_time;
        self.samples.clear();
        for i in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            // Always record at least one sample; respect the budget after.
            if i >= 1 && Instant::now() >= measure_deadline {
                break;
            }
        }
    }

    fn report(&self) -> String {
        let mut out = String::new();
        if self.samples.is_empty() {
            let _ = write!(out, "                        time:   (no samples)");
            return out;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let _ = write!(
            out,
            "                        time:   [{} {} {}]  median: {}  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            fmt_duration(median),
            self.samples.len()
        );
        out
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, with an optional shared
/// configuration — both forms of the real macro are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.filter = None;
        c
    }

    #[test]
    fn group_and_function_run() {
        let mut c = quick();
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &n| {
                b.iter(|| {
                    calls += 1;
                    n * 2
                })
            });
            group.finish();
        }
        assert!(calls >= 2, "bench body ran");
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 8).render(), "f/8");
        assert_eq!(
            BenchmarkId::from_parameter("lognormal").render(),
            "lognormal"
        );
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500 ms");
    }
}
