//! Zero-cost-when-off span/trace-id shims for the service stack.
//!
//! With the `trace` cargo feature enabled these helpers call into the
//! process-global [`pieri_trace`] span layer: per-request trace ids
//! (the `x-trace-id` header), structured spans over the request
//! lifecycle (parse → admit → queue wait → track → render), the
//! bounded recent-trace store behind `/v1/trace/<id>` and the
//! slow-request log. Without the feature every helper is an
//! `#[inline(always)]` no-op the optimiser erases — a default build
//! carries no span branches on the hot paths, exactly like
//! [`crate::chaos`].
//!
//! The **metrics registry** is deliberately *not* behind this shim:
//! counters, gauges and histograms are always on (`/v1/stats` and
//! `/v1/metrics` must work on every build), so the engine and reactor
//! use [`pieri_trace`] metrics types directly.
//!
//! Span sites recorded here (categories in parentheses):
//!
//! | span           | where                                            |
//! |----------------|--------------------------------------------------|
//! | `parse`        | (`http`) request head + body parse in the reactor |
//! | `admit`        | (`http`) dispatch + engine admission in the reactor |
//! | `queue.wait`   | (`engine`) admission → worker dequeue, cross-thread |
//! | `track`        | (`engine`) the solve, on the worker thread       |
//! | `render`       | (`http`) response serialization                  |
//! | `request`      | (`http`) whole request, closed at response write |
//!
//! (`predict`/`correct`/`retrack` spans live in `pieri-tracker` behind
//! its own `trace` feature, and `poll.wake`/`waker.notify` events in
//! `vendor/mio-lite` — this crate's feature enables both transitively.)

#[cfg(not(feature = "trace"))]
pub(crate) use disabled::*;
#[cfg(feature = "trace")]
pub(crate) use enabled::*;

#[cfg(feature = "trace")]
mod enabled {
    use std::time::Duration;

    /// Resolves a request's trace id from its `x-trace-id` header:
    /// a valid header value (1–16 hex digits, nonzero) is honoured so
    /// callers can correlate across services, anything else gets a
    /// fresh id. Never rejects a request — a malformed header is
    /// treated as absent. Returns 0 when tracing is not installed.
    pub(crate) fn request_trace_id(header: Option<&str>) -> u64 {
        if !pieri_trace::enabled() {
            return 0;
        }
        header
            .and_then(pieri_trace::parse_trace_id)
            .unwrap_or_else(pieri_trace::next_trace_id)
    }

    /// An RAII span over a request-lifecycle phase on this thread,
    /// tagged with `trace_id`.
    pub(crate) fn request_span(name: &'static str, trace_id: u64) -> pieri_trace::SpanGuard {
        pieri_trace::span_for(name, "http", trace_id)
    }

    /// Records the admission-to-dequeue wait of a job as an
    /// already-closed span (the interval crosses threads, so no RAII
    /// guard can cover it).
    pub(crate) fn note_queue_wait(trace_id: u64, wait: Duration) {
        pieri_trace::span_closed(
            "queue.wait",
            "engine",
            trace_id,
            wait.as_micros().min(u64::MAX as u128) as u64,
        );
    }

    /// Records the head+body parse of one request as an already-closed
    /// span (the trace id only exists once parsing finishes, so no
    /// RAII guard can cover it).
    pub(crate) fn note_parse(trace_id: u64, elapsed: Duration) {
        pieri_trace::span_closed(
            "parse",
            "http",
            trace_id,
            elapsed.as_micros().min(u64::MAX as u128) as u64,
        );
    }

    /// The worker-side scope of one job: sets the thread's current
    /// trace id (tracker spans inherit it) and opens the `track` span;
    /// both are undone on drop.
    pub(crate) struct JobScope {
        prev: u64,
        _span: pieri_trace::SpanGuard,
    }

    pub(crate) fn job_span(trace_id: u64) -> JobScope {
        let prev = pieri_trace::set_current_trace(trace_id);
        JobScope {
            prev,
            _span: pieri_trace::span_for("track", "engine", trace_id),
        }
    }

    impl Drop for JobScope {
        fn drop(&mut self) {
            // Restores the previous id first; the `track` span guard
            // captured its trace id at creation, so it closes
            // correctly when the field drops after this body.
            pieri_trace::set_current_trace(self.prev);
        }
    }

    /// The spans recorded for `trace_id`, or `None` when the id is
    /// unknown, evicted, or tracing is off (`/v1/trace/<id>` answers
    /// 404 either way).
    pub(crate) fn trace_lookup(trace_id: u64) -> Option<Vec<pieri_trace::SpanRecord>> {
        pieri_trace::trace_spans(trace_id)
    }

    /// Closes out one request at response-write time: records the
    /// whole-request span and feeds the slow-request log (the latter a
    /// no-op unless a threshold is configured).
    pub(crate) fn request_done(path: &'static str, status: u16, trace_id: u64, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        pieri_trace::span_closed("request", "http", trace_id, us);
        pieri_trace::slow_request(path, status, trace_id, us);
    }
}

#[cfg(not(feature = "trace"))]
mod disabled {
    use std::time::Duration;

    /// Stand-in span guard; dropping it does nothing.
    pub(crate) struct SpanGuard {}

    /// Stand-in job scope; dropping it does nothing.
    pub(crate) struct JobScope {}

    #[inline(always)]
    pub(crate) fn request_trace_id(_header: Option<&str>) -> u64 {
        0
    }

    #[inline(always)]
    pub(crate) fn request_span(_name: &'static str, _trace_id: u64) -> SpanGuard {
        SpanGuard {}
    }

    #[inline(always)]
    pub(crate) fn note_queue_wait(_trace_id: u64, _wait: Duration) {}

    #[inline(always)]
    pub(crate) fn note_parse(_trace_id: u64, _elapsed: Duration) {}

    #[inline(always)]
    pub(crate) fn job_span(_trace_id: u64) -> JobScope {
        JobScope {}
    }

    #[inline(always)]
    pub(crate) fn trace_lookup(_trace_id: u64) -> Option<Vec<pieri_trace::SpanRecord>> {
        None
    }

    #[inline(always)]
    pub(crate) fn request_done(
        _path: &'static str,
        _status: u16,
        _trace_id: u64,
        _elapsed: Duration,
    ) {
    }
}
