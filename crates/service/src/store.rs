//! Versioned on-disk persistence of generic start bundles.
//!
//! A [`pieri_core::StartBundle`] is a deterministic function of
//! `(seed, shape)` — the poset and the generic instance regenerate from
//! the seed, so only the tracked root coefficients (the part that took a
//! whole Pieri-tree run to find) need to survive on disk. The store
//! writes one JSON file per shape,
//! `bundle-v1-<m>-<p>-<q>.json`, holding
//!
//! ```json
//! {"version": 1, "m": 2, "p": 2, "q": 1,
//!  "seed": "<hex u64>", "build_ms": 41.3,
//!  "coeffs": [[[re, im], ...], ...], "checksum": "<hex fnv1a>"}
//! ```
//!
//! `seed` and `checksum` are hex *strings*: both are full-width `u64`s
//! and the wire's JSON numbers only carry 53 bits exactly.
//!
//! Failure policy: **every** defect — unreadable directory, truncated
//! file, bad JSON, version or shape mismatch, checksum mismatch,
//! malformed coefficients — degrades to "no stored bundle", never to an
//! error and never to a panic. The cache then rebuilds from scratch,
//! exactly as if the store were cold; a corrupt store costs one tree
//! run, not an outage. Semantic validation (root count, chart
//! dimension, residuals against the regenerated generic instance) is
//! one level up in [`pieri_core::StartBundle::restore`].
//!
//! Writes are crash-atomic: the new bundle is written to a temp file
//! and fsynced *before* it replaces the primary, and the previous
//! primary is kept as a `.json.bak` fallback until the next save — a
//! crash at any instruction leaves either the old durable bundle, the
//! new durable bundle, or both. [`BundleStore::load`] falls back to the
//! `.bak` when the primary is missing or defective (repairing the
//! primary from it, best-effort) and counts each such rescue in
//! [`BundleStore::recovered`], surfaced as `cache.store_recovered` in
//! `/v1/stats`.

use crate::wire;
use minijson::{object, Value};
use pieri_core::Shape;
use pieri_num::Complex64;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// On-disk format version; bumped on any incompatible layout change.
/// Files carrying a different version are ignored (→ rebuild).
const VERSION: u64 = 1;

/// A directory of per-shape bundle files.
#[derive(Debug)]
pub struct BundleStore {
    dir: PathBuf,
    /// Loads rescued from the `.bak` fallback after a defective (torn,
    /// corrupt, missing) primary.
    recovered: AtomicUsize,
}

/// The persisted part of a bundle: the build seed, the tracked generic
/// root coefficients and the original build time (reported by
/// `/v1/stats` as the cost a warm start avoided).
#[derive(Debug, Clone)]
pub struct StoredBundle {
    /// Seed the bundle was originally built with; replaying it through
    /// `seeded_rng` regenerates the identical poset + generic instance.
    pub seed: u64,
    /// Root-pattern coefficient vectors of the generic solutions.
    pub coeffs: Vec<Vec<Complex64>>,
    /// Wall-clock time of the original build.
    pub build_time: Duration,
}

impl BundleStore {
    /// Opens (creating if needed) the store directory. Returns `None`
    /// when the directory cannot be created — the cache then simply
    /// runs storeless.
    pub fn open(dir: &Path) -> Option<BundleStore> {
        fs::create_dir_all(dir).ok()?;
        Some(BundleStore {
            dir: dir.to_path_buf(),
            recovered: AtomicUsize::new(0),
        })
    }

    fn path_for(&self, shape: &Shape) -> PathBuf {
        self.dir.join(format!(
            "bundle-v{VERSION}-{}-{}-{}.json",
            shape.m(),
            shape.p(),
            shape.q()
        ))
    }

    /// Loads rescued from the `.bak` fallback so far.
    pub fn recovered(&self) -> usize {
        self.recovered.load(Ordering::Relaxed)
    }

    /// Persists a freshly built bundle, best-effort: I/O errors are
    /// swallowed (the bundle still serves from memory; only the next
    /// restart loses the warm start).
    pub fn save(&self, shape: &Shape, seed: u64, coeffs: &[Vec<Complex64>], build_time: Duration) {
        let coeffs_json = Value::Array(
            coeffs
                .iter()
                .map(|x| wire::complex_vec_to_json(x))
                .collect(),
        );
        let checksum = fnv1a(coeffs_json.serialize().as_bytes());
        let doc = object([
            ("version", Value::from(VERSION as usize)),
            ("m", Value::from(shape.m())),
            ("p", Value::from(shape.p())),
            ("q", Value::from(shape.q())),
            ("seed", Value::String(format!("{seed:016x}"))),
            ("build_ms", Value::Number(build_time.as_secs_f64() * 1e3)),
            ("coeffs", coeffs_json),
            ("checksum", Value::String(format!("{checksum:016x}"))),
        ]);
        let mut bytes = doc.serialize().into_bytes();
        let path = self.path_for(shape);
        let tmp = path.with_extension("json.tmp");
        let bak = path.with_extension("json.bak");
        // chaos: the disk is full — the save silently does not happen,
        // exactly like a real ENOSPC under the best-effort policy.
        if crate::chaos::fault("store.write.enospc").is_some() {
            return;
        }
        // chaos: a crash mid-write — half the payload lands in the temp
        // file and the rename never runs. The primary (and `.bak`)
        // from before the "crash" must stay intact.
        if crate::chaos::fault("store.write.torn").is_some() {
            let _ = fs::write(&tmp, &bytes[..bytes.len() / 2]);
            return;
        }
        // chaos: silent payload corruption after the checksum was
        // computed — the load-side checksum must catch it.
        if crate::chaos::fault("store.corrupt").is_some() {
            let mid = bytes.len() / 2;
            bytes[mid] = bytes[mid].wrapping_add(1);
        }
        if write_durable(&tmp, &bytes).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        // Keep the previous bundle until the new one is durable: the
        // old primary rotates to the `.bak` fallback (a rename, so the
        // window with neither primary nor fallback is empty), then the
        // fsynced temp file becomes the new primary.
        if path.exists() {
            let _ = fs::rename(&path, &bak);
        }
        if fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
            // Best-effort: put the old primary back so readers that
            // don't know about the fallback still see a bundle.
            if !path.exists() {
                let _ = fs::rename(&bak, &path);
            }
            return;
        }
        // Make the renames themselves durable.
        let _ = fs::File::open(&self.dir).and_then(|d| d.sync_all());
    }

    /// Loads the stored bundle for one shape, or `None` on any defect.
    /// A missing or defective primary falls back to the `.bak` kept
    /// from before the last save; a successful rescue repairs the
    /// primary (best-effort) and counts in [`BundleStore::recovered`].
    pub fn load(&self, shape: &Shape) -> Option<StoredBundle> {
        let path = self.path_for(shape);
        if let Some(stored) = fs::read_to_string(&path)
            .ok()
            .and_then(|text| decode(shape, &text))
        {
            return Some(stored);
        }
        let bak = path.with_extension("json.bak");
        let text = fs::read_to_string(&bak).ok()?;
        let stored = decode(shape, &text)?;
        self.recovered.fetch_add(1, Ordering::Relaxed);
        let _ = fs::copy(&bak, &path);
        Some(stored)
    }

    /// Every decodable `(shape, bundle)` pair in the directory —
    /// startup preloading. Unparseable filenames and defective files
    /// are skipped silently.
    pub fn load_all(&self) -> Vec<(Shape, StoredBundle)> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(shape) = shape_from_filename(&name.to_string_lossy()) else {
                continue;
            };
            if let Some(stored) = self.load(&shape) {
                out.push((shape, stored));
            }
        }
        out.sort_by_key(|(s, _)| (s.m(), s.p(), s.q()));
        out
    }
}

/// Writes `bytes` and fsyncs before returning, so a later rename
/// publishes only durable content.
fn write_durable(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = fs::File::create(path)?;
    file.write_all(bytes)?;
    file.sync_all()
}

/// `bundle-v1-<m>-<p>-<q>.json → Shape` (current version only).
fn shape_from_filename(name: &str) -> Option<Shape> {
    let dims = name
        .strip_prefix(&format!("bundle-v{VERSION}-"))?
        .strip_suffix(".json")?;
    let mut it = dims.split('-').map(|d| d.parse::<usize>().ok());
    let (m, p, q) = (it.next()??, it.next()??, it.next()??);
    if it.next().is_some() || m == 0 || p == 0 {
        return None;
    }
    Some(Shape::new(m, p, q))
}

fn decode(shape: &Shape, text: &str) -> Option<StoredBundle> {
    let v = minijson::parse(text).ok()?;
    if v.get("version")?.as_u64()? != VERSION {
        return None;
    }
    let same_shape = v.get("m")?.as_usize()? == shape.m()
        && v.get("p")?.as_usize()? == shape.p()
        && v.get("q")?.as_usize()? == shape.q();
    if !same_shape {
        return None;
    }
    let seed = u64::from_str_radix(v.get("seed")?.as_str()?, 16).ok()?;
    let checksum = u64::from_str_radix(v.get("checksum")?.as_str()?, 16).ok()?;
    let coeffs_json = v.get("coeffs")?;
    // The checksum covers the canonical re-serialization of the coeffs
    // array: bit flips inside any number, brace or sign change it.
    if fnv1a(coeffs_json.serialize().as_bytes()) != checksum {
        return None;
    }
    let coeffs = coeffs_json
        .as_array()?
        .iter()
        .map(|x| wire::complex_vec_from_json(x, "stored coeffs").ok())
        .collect::<Option<Vec<_>>>()?;
    let build_ms = v.get("build_ms")?.as_f64()?;
    if !(0.0..=1e15).contains(&build_ms) {
        return None;
    }
    Some(StoredBundle {
        seed,
        coeffs,
        build_time: Duration::from_secs_f64(build_ms / 1e3),
    })
}

/// FNV-1a over bytes — same family the cache's shape tag uses; this is
/// a torn-write tripwire, not a cryptographic seal.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_num::Complex64;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pieri-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_coeffs() -> Vec<Vec<Complex64>> {
        vec![
            vec![Complex64::new(1.25, -0.5), Complex64::new(0.0, 3.0)],
            vec![Complex64::new(-2.0, 0.125), Complex64::new(7.5, -1.0)],
        ]
    }

    #[test]
    fn save_load_round_trips_bitwise() {
        let dir = tmp_dir("roundtrip");
        let store = BundleStore::open(&dir).unwrap();
        let shape = Shape::new(2, 2, 0);
        let coeffs = sample_coeffs();
        let seed = 0xdead_beef_cafe_f00d_u64; // deliberately above 2^53
        store.save(&shape, seed, &coeffs, Duration::from_millis(41));
        let stored = store.load(&shape).expect("load what was saved");
        assert_eq!(stored.seed, seed, "full-width seeds survive");
        assert_eq!(stored.coeffs, coeffs, "coefficients survive bitwise");
        assert_eq!(stored.build_time, Duration::from_millis(41));
        let all = store.load_all();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, shape);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_and_version_mismatch_degrade_to_none() {
        let dir = tmp_dir("corrupt");
        let store = BundleStore::open(&dir).unwrap();
        let shape = Shape::new(2, 2, 0);
        store.save(&shape, 7, &sample_coeffs(), Duration::ZERO);
        let path = store.path_for(&shape);
        let good = fs::read_to_string(&path).unwrap();

        // Truncation, garbage, and a flipped digit inside the payload
        // (which the checksum catches) all read back as None.
        fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(store.load(&shape).is_none(), "truncated");
        fs::write(&path, "not json at all").unwrap();
        assert!(store.load(&shape).is_none(), "garbage");
        fs::write(&path, good.replacen("1.25", "1.26", 1)).unwrap();
        assert!(store.load(&shape).is_none(), "checksum catches bit rot");

        // A future format version is ignored, not misread.
        fs::write(&path, good.replacen("\"version\":1", "\"version\":2", 1)).unwrap();
        assert!(store.load(&shape).is_none(), "version mismatch");

        // A file claiming a different shape than its name is ignored.
        fs::write(&path, good.replacen("\"m\":2", "\"m\":3", 1)).unwrap();
        assert!(store.load(&shape).is_none(), "shape mismatch");

        // And the happy path still works after restoring the bytes.
        fs::write(&path, &good).unwrap();
        assert!(store.load(&shape).is_some());
        assert_eq!(store.load_all().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn filename_parsing_is_strict() {
        assert_eq!(
            shape_from_filename("bundle-v1-2-2-1.json"),
            Some(Shape::new(2, 2, 1))
        );
        for bad in [
            "bundle-v2-2-2-1.json",
            "bundle-v1-2-2.json",
            "bundle-v1-2-2-1-9.json",
            "bundle-v1-0-2-1.json",
            "bundle-v1-2-2-1.json.tmp",
            "bundle-v1-2-2-1.json.bak",
            "notes.txt",
        ] {
            assert_eq!(shape_from_filename(bad), None, "{bad}");
        }
    }

    /// The crash-atomicity guarantee: a save keeps the previous bundle
    /// as a `.bak` until the new primary is durable, and a defective
    /// primary is rescued from it (repairing the primary, counting the
    /// rescue).
    #[test]
    fn bak_fallback_rescues_a_torn_primary() {
        let dir = tmp_dir("bak");
        let store = BundleStore::open(&dir).unwrap();
        let shape = Shape::new(2, 2, 0);
        let old = sample_coeffs();
        store.save(&shape, 7, &old, Duration::from_millis(5));
        let path = store.path_for(&shape);
        let bak = path.with_extension("json.bak");
        assert!(!bak.exists(), "no fallback until a second save");

        let mut new = sample_coeffs();
        new[0][0] = Complex64::new(9.75, -4.5);
        store.save(&shape, 7, &new, Duration::from_millis(6));
        assert!(bak.exists(), "second save rotates the old primary to .bak");
        assert_eq!(store.load(&shape).unwrap().coeffs, new);
        assert_eq!(store.recovered(), 0, "healthy primary needs no rescue");

        // Tear the primary: load falls back to the previous bundle,
        // counts the rescue, and repairs the primary in place.
        let good = fs::read_to_string(&path).unwrap();
        fs::write(&path, &good[..good.len() / 2]).unwrap();
        let rescued = store.load(&shape).expect("rescued from .bak");
        assert_eq!(rescued.coeffs, old, "fallback holds the previous bundle");
        assert_eq!(store.recovered(), 1);
        let again = store.load(&shape).expect("repaired primary");
        assert_eq!(again.coeffs, old);
        assert_eq!(store.recovered(), 1, "repair means no second rescue");

        // A primary deleted outright is also rescued.
        fs::remove_file(&path).unwrap();
        assert!(store.load(&shape).is_some());
        assert_eq!(store.recovered(), 2);

        // load_all sees exactly one bundle per shape (.bak/.tmp skipped).
        assert_eq!(store.load_all().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A stray torn temp file (the artifact of a crash mid-save) never
    /// disturbs the durable primary.
    #[test]
    fn torn_tmp_file_is_inert() {
        let dir = tmp_dir("torntmp");
        let store = BundleStore::open(&dir).unwrap();
        let shape = Shape::new(2, 2, 0);
        store.save(&shape, 11, &sample_coeffs(), Duration::ZERO);
        let tmp = store.path_for(&shape).with_extension("json.tmp");
        fs::write(&tmp, "{\"version\":1,\"m\":2,\"p\":2,\"q\":0,\"se").unwrap();
        assert_eq!(store.load(&shape).unwrap().coeffs, sample_coeffs());
        assert_eq!(store.load_all().len(), 1);
        assert_eq!(store.recovered(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
