//! Zero-cost-when-off fault-injection shims for the service stack.
//!
//! With the `chaos` cargo feature enabled these helpers consult the
//! process-global [`pieri_chaos`] registry: an installed
//! `FaultPlan` decides, deterministically, which call sites misbehave
//! and when. Without the feature every helper is an `#[inline(always)]`
//! pass-through or constant `None` that the optimiser erases — a
//! default build carries no injection branches, no extra dependency,
//! and byte-for-byte the same I/O behaviour as before this module
//! existed.
//!
//! Site names injected here (see `crates/chaos` for the plan grammar):
//!
//! | site                 | effect                                        |
//! |----------------------|-----------------------------------------------|
//! | `sock.read.eagain`   | connection read reports `WouldBlock`          |
//! | `sock.read.short`    | read capped to `:n=` bytes (default 1)        |
//! | `sock.write.eagain`  | connection write reports `WouldBlock`         |
//! | `sock.write.short`   | write capped to `:n=` bytes (default 1)       |
//! | `sock.accept.fail`   | accepted connection dropped on the floor      |
//! | `worker.panic`       | worker panics holding the queue lock          |
//! | `worker.panic.job`   | worker panics after claiming a job            |
//! | `worker.wedge`       | worker stalls `:ms=` (default 500) pre-solve  |
//! | `worker.delay`       | benign slow-path delay of `:ms=` (default 10) |
//! | `store.write.torn`   | bundle save crashes mid-write (torn temp)     |
//! | `store.write.enospc` | bundle save fails as if the disk were full    |
//! | `store.corrupt`      | saved bundle payload corrupted post-checksum  |
//!
//! (`poll.spurious` lives in `vendor/mio-lite` behind its own `chaos`
//! feature, which this crate's feature enables transitively.)

#[cfg(not(feature = "chaos"))]
pub(crate) use disabled::*;
#[cfg(feature = "chaos")]
pub(crate) use enabled::*;

#[cfg(feature = "chaos")]
mod enabled {
    use std::io::{self, Read, Write};
    use std::net::TcpStream;

    /// A scheduled fault at a named site, with the plan's optional
    /// integer parameter.
    #[derive(Debug, Clone, Copy)]
    pub(crate) struct Hit {
        param: Option<u64>,
    }

    impl Hit {
        pub(crate) fn param_or(self, default: u64) -> u64 {
            self.param.unwrap_or(default)
        }
    }

    /// Records a hit of `site` against the installed fault plan;
    /// `Some` means the fault fires now.
    pub(crate) fn fault(site: &str) -> Option<Hit> {
        pieri_chaos::fires(site).map(|h| Hit { param: h.param })
    }

    /// Panics when the plan schedules `site` — the injected crash the
    /// engine supervisor exists to absorb.
    pub(crate) fn panic_site(site: &'static str) {
        if fault(site).is_some() {
            // lint:allow(no-panic-in-service) — this *is* the fault injector: it fires only under an installed chaos plan, and the build is a no-op without the `chaos` feature.
            panic!("chaos: injected panic at {site}");
        }
    }

    /// Connection read with injectable EAGAIN storms and short reads.
    pub(crate) fn sock_read(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<usize> {
        if fault("sock.read.eagain").is_some() {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let cap = match fault("sock.read.short") {
            Some(h) => (h.param_or(1).max(1) as usize).min(buf.len()),
            None => buf.len(),
        };
        if cap == 0 {
            return stream.read(buf);
        }
        stream.read(&mut buf[..cap])
    }

    /// Connection write with injectable EAGAIN storms and short writes.
    pub(crate) fn sock_write(stream: &mut TcpStream, buf: &[u8]) -> io::Result<usize> {
        if fault("sock.write.eagain").is_some() {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let cap = match fault("sock.write.short") {
            Some(h) => (h.param_or(1).max(1) as usize).min(buf.len()),
            None => buf.len(),
        };
        if cap == 0 {
            return stream.write(buf);
        }
        stream.write(&buf[..cap])
    }

    /// Should this freshly accepted connection be dropped on the floor?
    /// (The client observes a reset before any request byte is answered
    /// — a replay-safe failure.)
    pub(crate) fn accept_dropped() -> bool {
        fault("sock.accept.fail").is_some()
    }
}

#[cfg(not(feature = "chaos"))]
mod disabled {
    use std::io::{self, Read, Write};
    use std::net::TcpStream;

    /// Stand-in for the enabled build's fault hit; never constructed.
    #[derive(Debug, Clone, Copy)]
    pub(crate) struct Hit {}

    impl Hit {
        #[inline(always)]
        pub(crate) fn param_or(self, default: u64) -> u64 {
            default
        }
    }

    #[inline(always)]
    pub(crate) fn fault(_site: &str) -> Option<Hit> {
        None
    }

    #[inline(always)]
    pub(crate) fn panic_site(_site: &'static str) {}

    #[inline(always)]
    pub(crate) fn sock_read(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<usize> {
        stream.read(buf)
    }

    #[inline(always)]
    pub(crate) fn sock_write(stream: &mut TcpStream, buf: &[u8]) -> io::Result<usize> {
        stream.write(buf)
    }

    #[inline(always)]
    pub(crate) fn accept_dropped() -> bool {
        false
    }
}
