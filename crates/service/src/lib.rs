//! Batch pole-placement service: feedback laws on demand.
//!
//! The paper's punchline is that Pieri homotopies make **all** feedback
//! laws of a plant computable; the service layer makes them computable
//! *cheaply, repeatedly and concurrently*. Everything expensive about a
//! request depends only on the shape `(m, p, q)` — the poset (Fig. 4)
//! and one generic run of the Pieri tree — so a long-lived server that
//! caches that work per shape answers every subsequent request with just
//! `d(m,p,q)` straight-line continuation paths (the coefficient-
//! parameter "cheap trick" of Section III).
//!
//! The layers, outermost first — each reusable without the ones above
//! it:
//!
//! * [`http`] — hand-rolled HTTP/1.1 + JSON transport on `std::net`
//!   ([`Server`], [`Client`]), bounded inputs, keep-alive and
//!   pipelining, per-request `x-deadline-ms` deadlines;
//! * `reactor` (internal) — the event-driven core behind [`Server`]: a
//!   few epoll threads multiplex every connection, shed load with
//!   structured 503s, and never block on a socket;
//! * [`wire`] — the JSON codec for problems, compensators, errors and
//!   diagnostics (on the vendored `minijson`);
//! * [`engine`] — bounded job queue, worker threads, graceful shutdown,
//!   per-job [`pieri_tracker::TrackStats`];
//! * [`cache`] — the shape-keyed [`pieri_core::StartBundle`] cache
//!   (build-once-per-shape, hits measured);
//! * [`store`] — versioned on-disk bundle persistence so a restarted
//!   server answers its first request warm;
//! * [`job`] — typed requests/results with structured errors; no panic
//!   crosses this boundary.
//!
//! # In-process quickstart
//!
//! ```
//! use pieri_service::{Engine, EngineConfig, JobRequest, BuildMode};
//!
//! let engine = Engine::start(EngineConfig {
//!     build_mode: BuildMode::Sequential,
//!     ..EngineConfig::default()
//! });
//! let job = JobRequest::SolvePieri { m: 2, p: 2, q: 0, seed: 1, certify: false };
//! let cold = engine.run(job.clone()).unwrap();
//! assert_eq!(cold.solutions, 2);
//! assert!(!cold.cache_hit);
//! let warm = engine.run(job).unwrap();
//! assert!(warm.cache_hit, "second request skips the Pieri tree");
//! assert_eq!(warm.coeffs, cold.coeffs, "and is bitwise identical");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod chaos;
pub mod engine;
pub mod http;
pub mod job;
mod reactor;
pub mod store;
mod sync;
mod trace;
pub mod wire;

/// The deterministic fault-injection registry (`chaos` feature only),
/// re-exported so integration tests and harnesses can install and
/// inspect fault plans against this very process.
#[cfg(feature = "chaos")]
pub use pieri_chaos;

/// The observability layer (always compiled: the metrics registry
/// behind `/v1/stats` and `/v1/metrics` is unconditional; spans and
/// trace ids additionally need the `trace` feature), re-exported so
/// integration tests and harnesses can install trace configs and read
/// this process's rings and registry.
pub use pieri_trace;

pub use cache::{BuildMode, CacheStats, ShapeCache};
pub use engine::{Engine, EngineConfig, EngineStats, JobTicket, SupervisorConfig};
pub use http::{retry_decision, AttemptOutcome, Client, RetryPolicy, Server, ServerOptions};
pub use job::{CompensatorAnswer, JobError, JobLimits, JobRequest, JobResult};
