//! Hand-rolled HTTP/1.1 + JSON transport on `std::net`.
//!
//! The environment is offline (no hyper/axum), and the wire surface a
//! batch solver needs is tiny, so the transport is written directly
//! against `TcpListener`/`TcpStream`. Since the reactor rework the
//! server side is *event-driven*: [`Server::start`] spawns a handful
//! of [`crate::reactor`] threads that multiplex every connection over
//! epoll — this module keeps the protocol itself (the incremental
//! request parser, the response renderer, the route → status mapping)
//! and the blocking [`Client`].
//!
//! Connections are persistent when the client asks for it: a request
//! carrying `Connection: keep-alive` is answered in kind and the
//! connection stays registered for the next request (up to
//! [`MAX_REQUESTS_PER_CONN`], then a final `Connection: close`); any
//! other request keeps the original one-shot `Connection: close`
//! behaviour. Kept-alive connections may *pipeline*: several requests
//! on the wire before the first response; responses always come back
//! in request order. The bundled [`Client`] pools one connection and
//! retries once on a stale socket, so warm request streams skip the
//! TCP handshake per call.
//!
//! Endpoints (see the README table):
//!
//! | Method | Path        | Body                  | Response |
//! |--------|-------------|-----------------------|----------|
//! | GET    | `/healthz`  | —                     | `{"ok":true}` |
//! | GET    | `/v1/stats` | —                     | engine + cache counters |
//! | POST   | `/v1/solve` | one tagged job        | job result |
//! | POST   | `/v1/batch` | `{"jobs":[job, …]}`   | `{"results":[…]}` |
//!
//! A request may carry `x-deadline-ms: N`: the job is only worth
//! having for the next `N` milliseconds. The deadline rides into the
//! engine — a job whose deadline lapses before a worker dequeues it is
//! shed without touching the solver, and one that lapses mid-track is
//! cancelled at the next path-tracker step — and lapsing surfaces as
//! the structured `deadline_exceeded` envelope with status 503.
//!
//! Error responses carry the structured envelope of
//! [`crate::wire::error_to_json`] with HTTP status mapped from the error
//! kind (400 invalid, 413 too large, 503 back-pressure/shutdown/
//! deadline, 500 internal).

use crate::engine::Engine;
use crate::job::{JobError, JobRequest, JobResult};
use crate::sync::{rank, RankedMutex};
use crate::wire;
use minijson::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest accepted header block.
pub(crate) const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Budget for a stalled transfer (bytes buffered but none moving),
/// and the [`Client`]'s default socket timeout.
pub(crate) const IO_TIMEOUT: Duration = Duration::from_secs(30);
/// Concurrent connection cap across all reactor threads. A connection
/// past the cap costs only a registered fd preloaded with a 503
/// envelope (see [`crate::reactor`]), so the cap can sit far above the
/// old thread-per-connection limit of 256 without risking thread or
/// memory exhaustion.
pub(crate) const MAX_CONNECTIONS: usize = 4096;
/// Requests served per kept-alive connection before the server closes
/// it anyway — bounds how long one peer can pin a connection slot.
pub const MAX_REQUESTS_PER_CONN: usize = 256;
/// How long a kept-alive connection may sit idle between requests.
/// Much shorter than [`IO_TIMEOUT`]: an idle connection pins a
/// `MAX_CONNECTIONS` slot, so parked clients must release it quickly
/// (their pooled [`Client`] reconnects transparently — a
/// server-closed socket is the replay-safe retry case).
pub(crate) const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(5);

/// The HTTP front end over an [`Engine`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Vec<Arc<crate::reactor::ReactorShared>>,
    reactor_handles: RankedMutex<Vec<JoinHandle<()>>>,
    engine: Arc<Engine>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// reactor threads (see [`crate::reactor`]).
    pub fn start(addr: &str, engine: Arc<Engine>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (reactors, shared) = crate::reactor::build(
            crate::reactor::REACTOR_THREADS,
            listener,
            engine.clone(),
            stop.clone(),
        )?;
        let mut handles = Vec::with_capacity(reactors.len());
        for reactor in reactors {
            // The event loops are the only threads the server owns: a
            // fixed few I/O threads instead of one per connection.
            let spawned = std::thread::Builder::new()
                .name(format!("pieri-reactor-{}", reactor.index()))
                .spawn(move || reactor.run());
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Unwind the reactors already running: raise the
                    // stop flag they poll, nudge their wakers, join.
                    stop.store(true, Ordering::SeqCst);
                    for s in &shared {
                        s.wake();
                    }
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Server {
            addr: local,
            stop,
            shared,
            reactor_handles: RankedMutex::new("http-accept", rank::HTTP_ACCEPT, handles),
            engine,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the server.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops the reactor threads and joins them. Open connections are
    /// closed and their in-flight jobs cancelled; the engine keeps
    /// running until its owner shuts it down.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for s in &self.shared {
            s.wake();
        }
        // lint:lock-rank(http-accept, 50)
        let handles = std::mem::take(&mut *self.reactor_handles.lock_recover());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---- protocol ----------------------------------------------------------

/// One fully parsed request head (the body stays in the caller's
/// buffer, located by `body_start`/`body_len`).
pub(crate) struct ParsedHead {
    pub(crate) method: String,
    pub(crate) path: String,
    /// True when the request carried `Connection: keep-alive`.
    pub(crate) keep_alive: bool,
    /// Value of `x-deadline-ms`, if the header was present.
    deadline_ms: Option<u64>,
    /// Byte offset of the body within the parse buffer.
    pub(crate) body_start: usize,
    /// Body length (the declared `Content-Length`).
    pub(crate) body_len: usize,
}

impl ParsedHead {
    /// The request's absolute deadline, anchored now: the client's
    /// `x-deadline-ms` budget starts counting when the server has the
    /// full request, not when the client sent it (clocks differ).
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms))
    }
}

/// Outcome of one [`parse_request`] attempt over a growing buffer.
pub(crate) enum Parse {
    /// Not enough bytes yet — read more and try again.
    Partial,
    /// Unrecoverable framing error: answer it and close.
    Bad(JobError),
    /// One complete request.
    Request(ParsedHead),
}

/// Incremental HTTP/1.1 request parser: inspects `buf` (the bytes
/// received so far on a connection) and reports whether a complete
/// request is present. The caller consumes `body_start + body_len`
/// bytes on [`Parse::Request`] and re-invokes on the remainder —
/// that re-invocation is what makes pipelining work.
pub(crate) fn parse_request(buf: &[u8]) -> Parse {
    let bad = |msg: &str| Parse::Bad(JobError::InvalidRequest(msg.to_string()));
    let Some(head_end) = find_header_end(buf) else {
        // No terminator yet: either an incomplete head or one that
        // already overflows the bound (a peer streaming garbage must
        // not grow the buffer forever).
        if buf.len() > MAX_HEADER_BYTES {
            return Parse::Bad(JobError::TooLarge {
                detail: format!("header block exceeds {MAX_HEADER_BYTES} bytes"),
            });
        }
        return Parse::Partial;
    };
    if head_end > MAX_HEADER_BYTES {
        return Parse::Bad(JobError::TooLarge {
            detail: format!("header block exceeds {MAX_HEADER_BYTES} bytes"),
        });
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return bad("header block must be UTF-8");
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let Some(method) = parts.next() else {
        return bad("empty request line");
    };
    let Some(path) = parts.next() else {
        return bad("missing path");
    };
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return bad("unsupported HTTP version");
    }
    let mut content_length = 0usize;
    let mut keep_alive = false;
    let mut deadline_ms = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let Ok(n) = value.trim().parse() else {
                    return bad("invalid Content-Length");
                };
                content_length = n;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // Only Content-Length framing is implemented. Accepting
                // a chunked request would leave its body bytes in the
                // buffer to be parsed as the *next* request on a
                // kept-alive connection (request smuggling); reject it
                // and close.
                return bad("Transfer-Encoding is not supported; use Content-Length");
            } else if name.eq_ignore_ascii_case("x-deadline-ms") {
                let Ok(ms) = value.trim().parse::<u64>() else {
                    return bad("invalid x-deadline-ms");
                };
                deadline_ms = Some(ms);
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Parse::Bad(JobError::TooLarge {
            detail: format!("request body exceeds {MAX_BODY_BYTES} bytes"),
        });
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Parse::Partial;
    }
    Parse::Request(ParsedHead {
        method: method.to_string(),
        path: path.to_string(),
        keep_alive,
        deadline_ms,
        body_start,
        body_len: content_length,
    })
}

/// Position of the `\r\n\r\n` head terminator, if present.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Renders one response — status line, headers, JSON body — into a
/// byte buffer ready for the wire.
pub(crate) fn render_response(status: u16, body: &Value, keep_alive: bool) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let payload = body.serialize();
    // One buffer, one write: never leaves a small unacknowledged
    // segment for Nagle to hold the rest of the response behind.
    let mut message = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
        payload.len()
    )
    .into_bytes();
    message.extend_from_slice(payload.as_bytes());
    message
}

/// HTTP status for a structured error.
pub(crate) fn status_for(e: &JobError) -> u16 {
    match e {
        JobError::InvalidRequest(_) => 400,
        JobError::TooLarge { .. } => 413,
        JobError::QueueFull | JobError::ShuttingDown | JobError::DeadlineExceeded { .. } => 503,
        JobError::StartSystem(_) | JobError::Uncertified { .. } | JobError::Internal(_) => 500,
    }
}

/// Decodes one `/v1/solve` body.
pub(crate) fn parse_job(body: &[u8]) -> Result<JobRequest, JobError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| JobError::InvalidRequest("body must be UTF-8".into()))?;
    let json = minijson::parse(text)
        .map_err(|e| JobError::InvalidRequest(format!("invalid JSON: {e}")))?;
    Ok(wire::request_from_json(&json)?)
}

/// Decodes one `/v1/batch` body into its jobs. One batch may not
/// monopolise the engine: it is bounded by `cap` (the queue capacity,
/// the same knob that bounds every other client).
pub(crate) fn parse_batch(body: &[u8], cap: usize) -> Result<Vec<JobRequest>, JobError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| JobError::InvalidRequest("body must be UTF-8".into()))?;
    let json = minijson::parse(text)
        .map_err(|e| JobError::InvalidRequest(format!("invalid JSON: {e}")))?;
    let jobs = json
        .get("jobs")
        .and_then(Value::as_array)
        .ok_or_else(|| JobError::InvalidRequest("batch needs a \"jobs\" array".into()))?;
    if jobs.len() > cap {
        return Err(JobError::TooLarge {
            detail: format!(
                "batch of {} jobs exceeds the queue capacity {cap}; split it",
                jobs.len()
            ),
        });
    }
    jobs.iter()
        .map(|j| wire::request_from_json(j).map_err(JobError::from))
        .collect()
}

// ---- client ------------------------------------------------------------

/// A failed request/response exchange, remembering whether replaying
/// the request on a fresh connection is safe: only when the pooled
/// connection died **before any response byte arrived** (the HTTP
/// convention for persistent connections) — a failure mid-response
/// means the server may have executed the job, and jobs are not
/// idempotent in cost. Timeouts are never replay-safe.
struct ExchangeError {
    error: std::io::Error,
    replay_safe: bool,
}

impl ExchangeError {
    /// An error from before any response byte was read: replay-safe
    /// exactly when the error says the socket was dead, not slow.
    fn before_response(error: std::io::Error) -> Self {
        let replay_safe = matches!(
            error.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::NotConnected
        );
        ExchangeError { error, replay_safe }
    }

    /// An error after response bytes arrived: never replay-safe.
    fn mid_response(error: std::io::Error) -> Self {
        ExchangeError {
            error,
            replay_safe: false,
        }
    }
}

/// A tiny blocking HTTP/1.1 client for the examples, tests and load
/// generator.
///
/// The client requests `Connection: keep-alive` and pools one
/// connection: consecutive requests from the same `Client` reuse the
/// socket as long as the server keeps it open, falling back to a fresh
/// connection (with one retry) when the pooled socket has gone stale.
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    /// The kept-alive connection from the previous request, if any.
    conn: RankedMutex<Option<TcpStream>>,
}

impl Client {
    /// Resolves `addr` ("127.0.0.1:8632" or a `SocketAddr`) with the
    /// default 30 s socket timeout. `/v1/solve` blocks until the job
    /// finishes, so for shapes near the admission limits (or deep
    /// queues) use [`Client::with_timeout`] and size the timeout to the
    /// workload — a too-small value reports a job the server completes
    /// as a transport error.
    pub fn new(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::with_timeout(addr, IO_TIMEOUT)
    }

    /// As [`Client::new`] with an explicit socket timeout.
    pub fn with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
        Ok(Client {
            addr,
            timeout,
            conn: RankedMutex::new("client-conn", rank::CLIENT_CONN, None),
        })
    }

    /// Raw GET; returns `(status, parsed body)`.
    pub fn get(&self, path: &str) -> std::io::Result<(u16, Value)> {
        self.request("GET", path, None)
    }

    /// Raw POST of a JSON body; returns `(status, parsed body)`.
    pub fn post(&self, path: &str, body: &Value) -> std::io::Result<(u16, Value)> {
        self.request("POST", path, Some(body))
    }

    /// Typed job submission: POST the request to `/v1/solve` and decode
    /// the result or the error envelope. Transport failures surface as
    /// [`JobError::Internal`].
    pub fn solve(&self, req: &JobRequest) -> Result<JobResult, JobError> {
        let body = wire::request_to_json(req);
        let (status, json) = self
            .post("/v1/solve", &body)
            .map_err(|e| JobError::Internal(format!("transport: {e}")))?;
        if status == 200 {
            Ok(wire::result_from_json(&json)?)
        } else {
            Err(wire::error_from_json(&json)
                .unwrap_or_else(|e| JobError::Internal(format!("bad error envelope: {e}"))))
        }
    }

    /// True when `/healthz` answers 200.
    pub fn health(&self) -> bool {
        matches!(self.get("/healthz"), Ok((200, _)))
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> std::io::Result<(u16, Value)> {
        // Reuse the pooled kept-alive connection when there is one. The
        // retry on a fresh connection is restricted to errors proving
        // the pooled socket had gone stale (server closed it between
        // requests): EOF/reset/broken-pipe. Anything else — above all a
        // read *timeout*, where the server may be mid-execution — is
        // surfaced, never silently re-sent: jobs are not idempotent in
        // cost, and a blind replay would run them twice.
        // lint:lock-rank(client-conn, 60)
        let pooled = self.conn.lock_recover().take();
        if let Some(stream) = pooled {
            match self.exchange(stream, method, path, body) {
                Ok(answer) => return Ok(answer),
                Err(e) if e.replay_safe => {}
                Err(e) => return Err(e.error),
            }
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        self.exchange(stream, method, path, body)
            .map_err(|e| e.error)
    }

    /// One request/response exchange on `stream`; pools the stream back
    /// when the server answered `Connection: keep-alive`. Errors record
    /// whether any response byte had arrived (see [`ExchangeError`]).
    fn exchange(
        &self,
        mut stream: TcpStream,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> Result<(u16, Value), ExchangeError> {
        let pre = ExchangeError::before_response;
        stream.set_read_timeout(Some(self.timeout)).map_err(pre)?;
        stream.set_write_timeout(Some(self.timeout)).map_err(pre)?;
        stream.set_nodelay(true).map_err(pre)?;
        let payload = body.map(Value::serialize).unwrap_or_default();
        // Head and body go out in one write (see `write_response`).
        let mut message = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr,
            payload.len()
        )
        .into_bytes();
        message.extend_from_slice(payload.as_bytes());
        stream.write_all(&message).map_err(pre)?;
        stream.flush().map_err(pre)?;

        // Read through a reference so the stream itself survives the
        // buffered reader; nothing beyond this response is in flight,
        // so dropping the buffer loses no bytes.
        let mut reader = BufReader::new(&stream);
        let mut status_line = String::new();
        match reader.read_line(&mut status_line) {
            Ok(0) => {
                return Err(pre(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before response",
                )))
            }
            Ok(_) => {}
            Err(e) => return Err(pre(e)),
        }
        // From here on response bytes have arrived: failures are no
        // longer replay-safe.
        let mid = ExchangeError::mid_response;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                mid(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "bad status line",
                ))
            })?;
        let mut content_length = 0usize;
        let mut keep_alive = false;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).map_err(mid)?;
            let trimmed = header.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        mid(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "bad Content-Length",
                        ))
                    })?;
                } else if name.eq_ignore_ascii_case("connection") {
                    keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).map_err(mid)?;
        drop(reader);
        if keep_alive {
            // lint:lock-rank(client-conn, 60)
            *self.conn.lock_recover() = Some(stream);
        }
        let text = String::from_utf8(body).map_err(|_| {
            mid(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "non-UTF-8 body",
            ))
        })?;
        let json = minijson::parse(&text).map_err(|e| {
            mid(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                e.to_string(),
            ))
        })?;
        Ok((status, json))
    }
}
