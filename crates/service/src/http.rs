//! Hand-rolled HTTP/1.1 + JSON transport on `std::net`.
//!
//! The environment is offline (no hyper/axum), and the wire surface a
//! batch solver needs is tiny, so the transport is written directly
//! against `TcpListener`/`TcpStream`. Since the reactor rework the
//! server side is *event-driven*: [`Server::start`] spawns a handful
//! of [`crate::reactor`] threads that multiplex every connection over
//! epoll — this module keeps the protocol itself (the incremental
//! request parser, the response renderer, the route → status mapping)
//! and the blocking [`Client`].
//!
//! Connections are persistent when the client asks for it: a request
//! carrying `Connection: keep-alive` is answered in kind and the
//! connection stays registered for the next request (up to
//! [`MAX_REQUESTS_PER_CONN`], then a final `Connection: close`); any
//! other request keeps the original one-shot `Connection: close`
//! behaviour. Kept-alive connections may *pipeline*: several requests
//! on the wire before the first response; responses always come back
//! in request order. The bundled [`Client`] pools one connection and
//! retries once on a stale socket, so warm request streams skip the
//! TCP handshake per call.
//!
//! Endpoints (see the README table):
//!
//! | Method | Path        | Body                  | Response |
//! |--------|-------------|-----------------------|----------|
//! | GET    | `/healthz`  | —                     | `{"ok":true}` |
//! | GET    | `/v1/stats` | —                     | engine + cache counters |
//! | POST   | `/v1/solve` | one tagged job        | job result |
//! | POST   | `/v1/batch` | `{"jobs":[job, …]}`   | `{"results":[…]}` |
//!
//! A request may carry `x-deadline-ms: N`: the job is only worth
//! having for the next `N` milliseconds. The deadline rides into the
//! engine — a job whose deadline lapses before a worker dequeues it is
//! shed without touching the solver, and one that lapses mid-track is
//! cancelled at the next path-tracker step — and lapsing surfaces as
//! the structured `deadline_exceeded` envelope with status 503.
//!
//! Error responses carry the structured envelope of
//! [`crate::wire::error_to_json`] with HTTP status mapped from the error
//! kind (400 invalid, 413 too large, 503 back-pressure/shutdown/
//! deadline, 500 internal).

use crate::engine::Engine;
use crate::job::{JobError, JobRequest, JobResult};
use crate::sync::{rank, RankedMutex};
use crate::wire;
use minijson::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest accepted header block.
pub(crate) const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Budget for a stalled transfer (bytes buffered but none moving),
/// and the [`Client`]'s default socket timeout.
pub(crate) const IO_TIMEOUT: Duration = Duration::from_secs(30);
/// Concurrent connection cap across all reactor threads. A connection
/// past the cap costs only a registered fd preloaded with a 503
/// envelope (see [`crate::reactor`]), so the cap can sit far above the
/// old thread-per-connection limit of 256 without risking thread or
/// memory exhaustion.
pub(crate) const MAX_CONNECTIONS: usize = 4096;
/// Requests served per kept-alive connection before the server closes
/// it anyway — bounds how long one peer can pin a connection slot.
pub const MAX_REQUESTS_PER_CONN: usize = 256;
/// How long a kept-alive connection may sit idle between requests.
/// Much shorter than [`IO_TIMEOUT`]: an idle connection pins a
/// `MAX_CONNECTIONS` slot, so parked clients must release it quickly
/// (their pooled [`Client`] reconnects transparently — a
/// server-closed socket is the replay-safe retry case).
pub(crate) const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(5);

/// Tunables for [`Server::start_with`]. [`Default`] reproduces
/// [`Server::start`]: an exclusive bind with the production sweep
/// budgets.
pub struct ServerOptions {
    /// Bind the listener with `SO_REUSEPORT` so a replacement server
    /// can share the port while this one drains — the kernel
    /// load-balances new connections across live listeners, which is
    /// what makes [`Server::drain`] a zero-downtime restart.
    pub reuseport: bool,
    /// Idle budget for quiescent kept-alive connections
    /// (default [`KEEP_ALIVE_IDLE`]).
    pub keep_alive_idle: Duration,
    /// Budget for stalled transfers — bytes buffered but none moving
    /// (default [`IO_TIMEOUT`]).
    pub io_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            reuseport: false,
            keep_alive_idle: KEEP_ALIVE_IDLE,
            io_timeout: IO_TIMEOUT,
        }
    }
}

/// The HTTP front end over an [`Engine`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    conn_total: Arc<AtomicUsize>,
    shared: Vec<Arc<crate::reactor::ReactorShared>>,
    reactor_handles: RankedMutex<Vec<JoinHandle<()>>>,
    engine: Arc<Engine>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// reactor threads (see [`crate::reactor`]).
    pub fn start(addr: &str, engine: Arc<Engine>) -> std::io::Result<Server> {
        Server::start_with(addr, engine, ServerOptions::default())
    }

    /// As [`Server::start`] with explicit [`ServerOptions`].
    pub fn start_with(
        addr: &str,
        engine: Arc<Engine>,
        opts: ServerOptions,
    ) -> std::io::Result<Server> {
        let listener = if opts.reuseport {
            let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotFound, "no address to bind")
            })?;
            mio_lite::net::bind_reuseport(sock)?
        } else {
            TcpListener::bind(addr)?
        };
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let (reactors, shared, conn_total) = crate::reactor::build(
            crate::reactor::REACTOR_THREADS,
            listener,
            engine.clone(),
            stop.clone(),
            draining.clone(),
            crate::reactor::Tuning {
                keep_alive_idle: opts.keep_alive_idle,
                io_timeout: opts.io_timeout,
            },
        )?;
        let mut handles = Vec::with_capacity(reactors.len());
        for reactor in reactors {
            // The event loops are the only threads the server owns: a
            // fixed few I/O threads instead of one per connection.
            let spawned = std::thread::Builder::new()
                .name(format!("pieri-reactor-{}", reactor.index()))
                .spawn(move || reactor.run());
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Unwind the reactors already running: raise the
                    // stop flag they poll, nudge their wakers, join.
                    stop.store(true, Ordering::SeqCst);
                    for s in &shared {
                        s.wake();
                    }
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Server {
            addr: local,
            stop,
            draining,
            conn_total,
            shared,
            reactor_handles: RankedMutex::new("http-accept", rank::HTTP_ACCEPT, handles),
            engine,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the server.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Graceful drain for a zero-downtime restart: stop accepting
    /// (reactor 0 drops the listener — with [`ServerOptions::reuseport`]
    /// the kernel immediately routes new connections to the replacement
    /// server sharing the port), let admitted requests finish and their
    /// responses flush, then stop the reactors. Returns `true` when
    /// every connection drained before `timeout`; on `false` the
    /// stragglers were closed anyway (their unanswered requests are the
    /// clients' replay-safe retry case). The bundle store needs no
    /// separate flush: saves are write-through and fsynced at save
    /// time, so a drained server's cache is already durable.
    pub fn drain(&self, timeout: Duration) -> bool {
        self.draining.store(true, Ordering::SeqCst);
        for s in &self.shared {
            s.wake();
        }
        let deadline = Instant::now() + timeout;
        let mut clean = false;
        while Instant::now() < deadline {
            if self.conn_total.load(Ordering::SeqCst) == 0 {
                clean = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        clean = clean || self.conn_total.load(Ordering::SeqCst) == 0;
        self.shutdown();
        clean
    }

    /// Stops the reactor threads and joins them. Open connections are
    /// closed and their in-flight jobs cancelled; the engine keeps
    /// running until its owner shuts it down.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for s in &self.shared {
            s.wake();
        }
        // lint:lock-rank(http-accept, 50)
        let handles = std::mem::take(&mut *self.reactor_handles.lock_recover());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---- protocol ----------------------------------------------------------

/// One fully parsed request head (the body stays in the caller's
/// buffer, located by `body_start`/`body_len`).
pub(crate) struct ParsedHead {
    pub(crate) method: String,
    pub(crate) path: String,
    /// True when the request carried `Connection: keep-alive`.
    pub(crate) keep_alive: bool,
    /// Value of `x-deadline-ms`, if the header was present.
    deadline_ms: Option<u64>,
    /// The request's trace id: the `x-trace-id` header when it parsed
    /// (1–16 hex digits, nonzero), else freshly generated — and always
    /// 0 when tracing is compiled out or not installed. A malformed
    /// header never fails the request; it is treated as absent.
    pub(crate) trace_id: u64,
    /// Byte offset of the body within the parse buffer.
    pub(crate) body_start: usize,
    /// Body length (the declared `Content-Length`).
    pub(crate) body_len: usize,
}

impl ParsedHead {
    /// The request's absolute deadline, anchored now: the client's
    /// `x-deadline-ms` budget starts counting when the server has the
    /// full request, not when the client sent it (clocks differ).
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms))
    }
}

/// Outcome of one [`parse_request`] attempt over a growing buffer.
pub(crate) enum Parse {
    /// Not enough bytes yet — read more and try again.
    Partial,
    /// Unrecoverable framing error: answer it and close.
    Bad(JobError),
    /// One complete request.
    Request(ParsedHead),
}

/// Incremental HTTP/1.1 request parser: inspects `buf` (the bytes
/// received so far on a connection) and reports whether a complete
/// request is present. The caller consumes `body_start + body_len`
/// bytes on [`Parse::Request`] and re-invokes on the remainder —
/// that re-invocation is what makes pipelining work.
pub(crate) fn parse_request(buf: &[u8]) -> Parse {
    let bad = |msg: &str| Parse::Bad(JobError::InvalidRequest(msg.to_string()));
    let Some(head_end) = find_header_end(buf) else {
        // No terminator yet: either an incomplete head or one that
        // already overflows the bound (a peer streaming garbage must
        // not grow the buffer forever).
        if buf.len() > MAX_HEADER_BYTES {
            return Parse::Bad(JobError::TooLarge {
                detail: format!("header block exceeds {MAX_HEADER_BYTES} bytes"),
            });
        }
        return Parse::Partial;
    };
    if head_end > MAX_HEADER_BYTES {
        return Parse::Bad(JobError::TooLarge {
            detail: format!("header block exceeds {MAX_HEADER_BYTES} bytes"),
        });
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return bad("header block must be UTF-8");
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let Some(method) = parts.next() else {
        return bad("empty request line");
    };
    let Some(path) = parts.next() else {
        return bad("missing path");
    };
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return bad("unsupported HTTP version");
    }
    let mut content_length = 0usize;
    let mut keep_alive = false;
    let mut deadline_ms = None;
    let mut trace_header = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let Ok(n) = value.trim().parse() else {
                    return bad("invalid Content-Length");
                };
                content_length = n;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // Only Content-Length framing is implemented. Accepting
                // a chunked request would leave its body bytes in the
                // buffer to be parsed as the *next* request on a
                // kept-alive connection (request smuggling); reject it
                // and close.
                return bad("Transfer-Encoding is not supported; use Content-Length");
            } else if name.eq_ignore_ascii_case("x-deadline-ms") {
                let Ok(ms) = value.trim().parse::<u64>() else {
                    return bad("invalid x-deadline-ms");
                };
                deadline_ms = Some(ms);
            } else if name.eq_ignore_ascii_case("x-trace-id") {
                trace_header = Some(value.trim());
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Parse::Bad(JobError::TooLarge {
            detail: format!("request body exceeds {MAX_BODY_BYTES} bytes"),
        });
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Parse::Partial;
    }
    Parse::Request(ParsedHead {
        method: method.to_string(),
        path: path.to_string(),
        keep_alive,
        deadline_ms,
        trace_id: crate::trace::request_trace_id(trace_header),
        body_start,
        body_len: content_length,
    })
}

/// Position of the `\r\n\r\n` head terminator, if present.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Renders one JSON response — status line, headers, body — into a
/// byte buffer ready for the wire. A nonzero `trace_id` is echoed back
/// as an `x-trace-id` header so clients can fetch `/v1/trace/<id>`.
pub(crate) fn render_response(
    status: u16,
    body: &Value,
    keep_alive: bool,
    trace_id: u64,
) -> Vec<u8> {
    render_raw(
        status,
        "application/json",
        body.serialize().as_bytes(),
        keep_alive,
        trace_id,
    )
}

/// Renders one plain-text response — the `/v1/metrics` Prometheus
/// exposition path, which must not be wrapped in JSON.
pub(crate) fn render_text_response(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    render_raw(
        status,
        "text/plain; version=0.0.4; charset=utf-8",
        body.as_bytes(),
        keep_alive,
        0,
    )
}

fn render_raw(
    status: u16,
    content_type: &str,
    payload: &[u8],
    keep_alive: bool,
    trace_id: u64,
) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let trace_header = if trace_id != 0 {
        format!("x-trace-id: {trace_id:016x}\r\n")
    } else {
        String::new()
    };
    // One buffer, one write: never leaves a small unacknowledged
    // segment for Nagle to hold the rest of the response behind.
    let mut message = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n{trace_header}\r\n",
        payload.len()
    )
    .into_bytes();
    message.extend_from_slice(payload);
    message
}

/// HTTP status for a structured error.
pub(crate) fn status_for(e: &JobError) -> u16 {
    match e {
        JobError::InvalidRequest(_) => 400,
        JobError::TooLarge { .. } => 413,
        JobError::QueueFull | JobError::ShuttingDown | JobError::DeadlineExceeded { .. } => 503,
        JobError::StartSystem(_) | JobError::Uncertified { .. } | JobError::Internal(_) => 500,
    }
}

/// Decodes one `/v1/solve` body.
pub(crate) fn parse_job(body: &[u8]) -> Result<JobRequest, JobError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| JobError::InvalidRequest("body must be UTF-8".into()))?;
    let json = minijson::parse(text)
        .map_err(|e| JobError::InvalidRequest(format!("invalid JSON: {e}")))?;
    Ok(wire::request_from_json(&json)?)
}

/// Decodes one `/v1/batch` body into its jobs. One batch may not
/// monopolise the engine: it is bounded by `cap` (the queue capacity,
/// the same knob that bounds every other client).
pub(crate) fn parse_batch(body: &[u8], cap: usize) -> Result<Vec<JobRequest>, JobError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| JobError::InvalidRequest("body must be UTF-8".into()))?;
    let json = minijson::parse(text)
        .map_err(|e| JobError::InvalidRequest(format!("invalid JSON: {e}")))?;
    let jobs = json
        .get("jobs")
        .and_then(Value::as_array)
        .ok_or_else(|| JobError::InvalidRequest("batch needs a \"jobs\" array".into()))?;
    if jobs.len() > cap {
        return Err(JobError::TooLarge {
            detail: format!(
                "batch of {} jobs exceeds the queue capacity {cap}; split it",
                jobs.len()
            ),
        });
    }
    jobs.iter()
        .map(|j| wire::request_from_json(j).map_err(JobError::from))
        .collect()
}

// ---- client ------------------------------------------------------------

/// A failed request/response exchange, remembering whether replaying
/// the request on a fresh connection is safe: only when the pooled
/// connection died **before any response byte arrived** (the HTTP
/// convention for persistent connections) — a failure mid-response
/// means the server may have executed the job, and jobs are not
/// idempotent in cost. Timeouts are never replay-safe.
struct ExchangeError {
    error: std::io::Error,
    replay_safe: bool,
}

impl ExchangeError {
    /// An error from before any response byte was read: replay-safe
    /// exactly when the error says the socket was dead, not slow.
    fn before_response(error: std::io::Error) -> Self {
        let replay_safe = matches!(
            error.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::NotConnected
        );
        ExchangeError { error, replay_safe }
    }

    /// An error establishing the connection: always replay-safe — no
    /// request byte was ever sent, so nothing can have executed.
    fn connect(error: std::io::Error) -> Self {
        ExchangeError {
            error,
            replay_safe: true,
        }
    }

    /// An error after response bytes arrived: never replay-safe.
    fn mid_response(error: std::io::Error) -> Self {
        ExchangeError {
            error,
            replay_safe: false,
        }
    }
}

// ---- retry policy ------------------------------------------------------

/// Bounded retry policy for the [`Client`] (see
/// [`Client::with_retry`]). The default is **one attempt** — no
/// retries — matching the client's historical behaviour; swarm and
/// restart tests opt into more via [`RetryPolicy::attempts`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts including the first (so `1` = never retry).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub base_backoff: Duration,
    /// Cap on the exponential backoff.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter added to each backoff, so a
    /// swarm of clients retrying the same outage decorrelates without
    /// the policy becoming nondeterministic under test.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `n` total attempts with the default backoff.
    pub fn attempts(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: n.max(1),
            ..RetryPolicy::default()
        }
    }
}

/// What one failed attempt looked like to [`retry_decision`].
#[derive(Debug, Clone, Copy)]
pub enum AttemptOutcome<'a> {
    /// A transport-level failure. `replay_safe` is true only when the
    /// request provably never started executing: connect failures and
    /// connections that died before any response byte arrived.
    Transport {
        /// Whether re-sending the request cannot double-execute it.
        replay_safe: bool,
    },
    /// An HTTP response, with the error envelope's `kind` tag (empty
    /// for responses without an envelope).
    Response {
        /// HTTP status code of the response.
        status: u16,
        /// The `error.kind` tag, or `""`.
        kind: &'a str,
    },
}

/// Decides whether attempt `attempt` (1-based) may be followed by
/// another, and after what backoff. `None` means surface the outcome
/// as final. The rules, in order:
///
/// * Past `max_attempts`, never.
/// * Transport failures: only when replay-safe. A timeout or a
///   mid-response failure may mean the server executed (or is still
///   executing) the job — jobs are not idempotent in cost, so a blind
///   replay would run them twice.
/// * `503 queue_full` / `503 shutting_down`: retryable — both are the
///   server *declining* work before execution (load shed, drain), the
///   exact case backoff-and-retry exists for.
/// * `503 deadline_exceeded`: **not** retryable — the request's own
///   time budget is spent; a replay would carry the same lapsed
///   deadline and be shed again.
/// * Any other response (including 4xx/5xx envelopes): not retryable —
///   the server answered authoritatively; resending the same bytes
///   yields the same answer.
///
/// The backoff doubles per attempt from `base_backoff` up to
/// `max_backoff`, plus deterministic jitter (up to a quarter of the
/// backoff) derived from `jitter_seed` and the attempt number.
pub fn retry_decision(
    policy: &RetryPolicy,
    attempt: u32,
    outcome: &AttemptOutcome<'_>,
) -> Option<Duration> {
    if attempt >= policy.max_attempts {
        return None;
    }
    let retryable = match outcome {
        AttemptOutcome::Transport { replay_safe } => *replay_safe,
        AttemptOutcome::Response { status: 503, kind } => {
            matches!(*kind, "queue_full" | "shutting_down")
        }
        AttemptOutcome::Response { .. } => false,
    };
    if !retryable {
        return None;
    }
    Some(backoff_with_jitter(policy, attempt))
}

/// Exponential backoff with deterministic jitter for the wait after
/// attempt `attempt` (1-based).
fn backoff_with_jitter(policy: &RetryPolicy, attempt: u32) -> Duration {
    let exp = attempt.saturating_sub(1).min(16);
    let base = policy
        .base_backoff
        .saturating_mul(1u32 << exp)
        .min(policy.max_backoff)
        .max(Duration::from_millis(1));
    // xorshift over the seed and attempt number: stable per (seed,
    // attempt), different across seeds so a swarm decorrelates.
    let mut x = policy.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let span = (base.as_millis() as u64 / 4).max(1);
    base + Duration::from_millis(x % span)
}

/// A tiny blocking HTTP/1.1 client for the examples, tests and load
/// generator.
///
/// The client requests `Connection: keep-alive` and pools one
/// connection: consecutive requests from the same `Client` reuse the
/// socket as long as the server keeps it open, falling back to a fresh
/// connection (with one retry) when the pooled socket has gone stale.
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    retry: RetryPolicy,
    /// The kept-alive connection from the previous request, if any.
    conn: RankedMutex<Option<TcpStream>>,
}

impl Client {
    /// Resolves `addr` ("127.0.0.1:8632" or a `SocketAddr`) with the
    /// default 30 s socket timeout. `/v1/solve` blocks until the job
    /// finishes, so for shapes near the admission limits (or deep
    /// queues) use [`Client::with_timeout`] and size the timeout to the
    /// workload — a too-small value reports a job the server completes
    /// as a transport error.
    pub fn new(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::with_timeout(addr, IO_TIMEOUT)
    }

    /// As [`Client::new`] with an explicit socket timeout.
    pub fn with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Client> {
        Client::with_retry(addr, timeout, RetryPolicy::default())
    }

    /// As [`Client::with_timeout`] with an explicit [`RetryPolicy`]:
    /// failed attempts that [`retry_decision`] rules replay-safe are
    /// re-sent after its backoff, up to the policy's attempt budget.
    pub fn with_retry(
        addr: impl ToSocketAddrs,
        timeout: Duration,
        retry: RetryPolicy,
    ) -> std::io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
        Ok(Client {
            addr,
            timeout,
            retry,
            conn: RankedMutex::new("client-conn", rank::CLIENT_CONN, None),
        })
    }

    /// Raw GET; returns `(status, parsed body)`.
    pub fn get(&self, path: &str) -> std::io::Result<(u16, Value)> {
        self.request("GET", path, None)
    }

    /// Raw POST of a JSON body; returns `(status, parsed body)`.
    pub fn post(&self, path: &str, body: &Value) -> std::io::Result<(u16, Value)> {
        self.request("POST", path, Some(body))
    }

    /// Typed job submission: POST the request to `/v1/solve` and decode
    /// the result or the error envelope. Transport failures surface as
    /// [`JobError::Internal`].
    pub fn solve(&self, req: &JobRequest) -> Result<JobResult, JobError> {
        let body = wire::request_to_json(req);
        let (status, json) = self
            .post("/v1/solve", &body)
            .map_err(|e| JobError::Internal(format!("transport: {e}")))?;
        if status == 200 {
            Ok(wire::result_from_json(&json)?)
        } else {
            Err(wire::error_from_json(&json)
                .unwrap_or_else(|e| JobError::Internal(format!("bad error envelope: {e}"))))
        }
    }

    /// True when `/healthz` answers 200.
    pub fn health(&self) -> bool {
        matches!(self.get("/healthz"), Ok((200, _)))
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> std::io::Result<(u16, Value)> {
        // The attempt loop: each failed attempt is put to
        // `retry_decision`, which only ever green-lights replay-safe
        // failures (stale sockets, refused connects, shed 503s) —
        // never a timeout or mid-response error, where the server may
        // be mid-execution and a blind replay would run the job twice.
        let mut attempt = 1u32;
        loop {
            match self.request_once(method, path, body) {
                Ok((status, json)) => {
                    let kind = json
                        .get("error")
                        .and_then(|e| e.get("kind"))
                        .and_then(Value::as_str)
                        .unwrap_or("");
                    let outcome = AttemptOutcome::Response { status, kind };
                    match retry_decision(&self.retry, attempt, &outcome) {
                        Some(delay) => std::thread::sleep(delay),
                        None => return Ok((status, json)),
                    }
                }
                Err(e) => {
                    let outcome = AttemptOutcome::Transport {
                        replay_safe: e.replay_safe,
                    };
                    match retry_decision(&self.retry, attempt, &outcome) {
                        Some(delay) => std::thread::sleep(delay),
                        None => return Err(e.error),
                    }
                }
            }
            attempt += 1;
        }
    }

    /// One attempt: the pooled kept-alive connection when there is one
    /// (falling back to a fresh connection when the pooled socket had
    /// provably gone stale — server closed it between requests), else
    /// a fresh connection. This stale-socket fallback predates the
    /// retry policy and stays within a single attempt: it re-sends
    /// only when zero response bytes arrived on a dead socket.
    fn request_once(
        &self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> Result<(u16, Value), ExchangeError> {
        // lint:lock-rank(client-conn, 60)
        let pooled = self.conn.lock_recover().take();
        if let Some(stream) = pooled {
            match self.exchange(stream, method, path, body) {
                Ok(answer) => return Ok(answer),
                Err(e) if e.replay_safe => {}
                Err(e) => return Err(e),
            }
        }
        let stream =
            TcpStream::connect_timeout(&self.addr, self.timeout).map_err(ExchangeError::connect)?;
        self.exchange(stream, method, path, body)
    }

    /// One request/response exchange on `stream`; pools the stream back
    /// when the server answered `Connection: keep-alive`. Errors record
    /// whether any response byte had arrived (see [`ExchangeError`]).
    fn exchange(
        &self,
        mut stream: TcpStream,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> Result<(u16, Value), ExchangeError> {
        let pre = ExchangeError::before_response;
        stream.set_read_timeout(Some(self.timeout)).map_err(pre)?;
        stream.set_write_timeout(Some(self.timeout)).map_err(pre)?;
        stream.set_nodelay(true).map_err(pre)?;
        let payload = body.map(Value::serialize).unwrap_or_default();
        // Head and body go out in one write (see `write_response`).
        let mut message = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr,
            payload.len()
        )
        .into_bytes();
        message.extend_from_slice(payload.as_bytes());
        stream.write_all(&message).map_err(pre)?;
        stream.flush().map_err(pre)?;

        // Read through a reference so the stream itself survives the
        // buffered reader; nothing beyond this response is in flight,
        // so dropping the buffer loses no bytes.
        let mut reader = BufReader::new(&stream);
        let mut status_line = String::new();
        match reader.read_line(&mut status_line) {
            Ok(0) => {
                return Err(pre(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before response",
                )))
            }
            Ok(_) => {}
            Err(e) => return Err(pre(e)),
        }
        // From here on response bytes have arrived: failures are no
        // longer replay-safe.
        let mid = ExchangeError::mid_response;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                mid(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "bad status line",
                ))
            })?;
        let mut content_length = 0usize;
        let mut keep_alive = false;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).map_err(mid)?;
            let trimmed = header.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        mid(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "bad Content-Length",
                        ))
                    })?;
                } else if name.eq_ignore_ascii_case("connection") {
                    keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).map_err(mid)?;
        drop(reader);
        if keep_alive {
            // lint:lock-rank(client-conn, 60)
            *self.conn.lock_recover() = Some(stream);
        }
        let text = String::from_utf8(body).map_err(|_| {
            mid(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "non-UTF-8 body",
            ))
        })?;
        let json = minijson::parse(&text).map_err(|e| {
            mid(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                e.to_string(),
            ))
        })?;
        Ok((status, json))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full retry decision table: one row per (attempt, outcome)
    /// case the policy distinguishes.
    #[test]
    fn retry_decision_table() {
        let policy = RetryPolicy::attempts(3);
        let transport_safe = AttemptOutcome::Transport { replay_safe: true };
        let transport_unsafe = AttemptOutcome::Transport { replay_safe: false };
        let shed = AttemptOutcome::Response {
            status: 503,
            kind: "queue_full",
        };
        let draining = AttemptOutcome::Response {
            status: 503,
            kind: "shutting_down",
        };
        let expired = AttemptOutcome::Response {
            status: 503,
            kind: "deadline_exceeded",
        };
        let bad_request = AttemptOutcome::Response {
            status: 400,
            kind: "invalid_request",
        };
        let internal = AttemptOutcome::Response {
            status: 500,
            kind: "internal",
        };
        let ok = AttemptOutcome::Response {
            status: 200,
            kind: "",
        };
        let cases: &[(u32, &AttemptOutcome<'_>, bool)] = &[
            // Replay-safe transport failures retry until the budget.
            (1, &transport_safe, true),
            (2, &transport_safe, true),
            (3, &transport_safe, false),
            // A timeout / mid-response failure is never replayed: the
            // server may be (or have been) executing the job.
            (1, &transport_unsafe, false),
            // Shed and drain 503s are pre-execution refusals: retry.
            (1, &shed, true),
            (1, &draining, true),
            (2, &draining, true),
            (3, &shed, false),
            // A lapsed deadline is final — a replay carries the same
            // spent budget and is shed again.
            (1, &expired, false),
            // Authoritative answers are final, success trivially so.
            (1, &bad_request, false),
            (1, &internal, false),
            (1, &ok, false),
        ];
        for (attempt, outcome, retries) in cases {
            let decision = retry_decision(&policy, *attempt, outcome);
            assert_eq!(
                decision.is_some(),
                *retries,
                "attempt {attempt} against {outcome:?}"
            );
        }
    }

    /// A one-attempt policy (the default) never retries anything.
    #[test]
    fn default_policy_never_retries() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.max_attempts, 1);
        let outcome = AttemptOutcome::Transport { replay_safe: true };
        assert!(retry_decision(&policy, 1, &outcome).is_none());
    }

    /// Backoff doubles per attempt, saturates at the cap, and its
    /// jitter is deterministic per (seed, attempt) while differing
    /// across seeds.
    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let policy = RetryPolicy {
            max_attempts: 16,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 7,
        };
        let outcome = AttemptOutcome::Transport { replay_safe: true };
        let waits: Vec<Duration> = (1..=5)
            .map(|attempt| retry_decision(&policy, attempt, &outcome).expect("within budget"))
            .collect();
        // Exponential base: 10, 20, 40, 80, then capped at 100; jitter
        // adds at most a quarter of the base on top.
        let bases = [10u64, 20, 40, 80, 100];
        for (wait, base) in waits.iter().zip(bases) {
            let ms = wait.as_millis() as u64;
            assert!(
                (base..base + base / 4 + 1).contains(&ms),
                "{ms} vs base {base}"
            );
        }
        // Deterministic: the same (seed, attempt) repeats exactly.
        let again = retry_decision(&policy, 3, &outcome).expect("within budget");
        assert_eq!(waits[2], again);
        // Decorrelated: another seed jitters differently somewhere.
        let other = RetryPolicy {
            jitter_seed: 8,
            ..policy
        };
        let differs = (1..=5).any(|attempt| {
            retry_decision(&other, attempt, &outcome) != retry_decision(&policy, attempt, &outcome)
        });
        assert!(differs, "jitter ignored the seed");
    }
}
