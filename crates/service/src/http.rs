//! Hand-rolled HTTP/1.1 + JSON transport on `std::net`.
//!
//! The environment is offline (no hyper/axum), and the wire surface a
//! batch solver needs is tiny, so the transport is written directly
//! against `TcpListener`/`TcpStream`: one accept thread, one handler
//! thread per connection, bounded header and body sizes, and read
//! timeouts so a stalled peer cannot pin a handler forever.
//!
//! Connections are persistent when the client asks for it: a request
//! carrying `Connection: keep-alive` is answered in kind and the
//! handler loops for the next request on the same socket (up to
//! [`MAX_REQUESTS_PER_CONN`], then a final `Connection: close`); any
//! other request keeps the original one-shot `Connection: close`
//! behaviour. The bundled [`Client`] pools one connection and retries
//! once on a stale socket, so warm request streams skip the TCP
//! handshake per call.
//!
//! Endpoints (see the README table):
//!
//! | Method | Path        | Body                  | Response |
//! |--------|-------------|-----------------------|----------|
//! | GET    | `/healthz`  | —                     | `{"ok":true}` |
//! | GET    | `/v1/stats` | —                     | engine + cache counters |
//! | POST   | `/v1/solve` | one tagged job        | job result |
//! | POST   | `/v1/batch` | `{"jobs":[job, …]}`   | `{"results":[…]}` |
//!
//! Error responses carry the structured envelope of
//! [`crate::wire::error_to_json`] with HTTP status mapped from the error
//! kind (400 invalid, 413 too large, 503 back-pressure/shutdown, 500
//! internal).

use crate::engine::Engine;
use crate::job::{JobError, JobRequest, JobResult};
use crate::sync::{rank, RankedMutex};
use crate::wire;
use minijson::{object, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest accepted header block.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(30);
/// Concurrent connection cap: beyond this the server answers 503
/// immediately instead of spawning another handler thread, so a
/// connection flood cannot exhaust threads/memory before the bounded
/// job queue ever sees a request.
const MAX_CONNECTIONS: usize = 256;
/// Requests served per kept-alive connection before the server closes
/// it anyway — bounds how long one peer can pin a handler thread.
pub const MAX_REQUESTS_PER_CONN: usize = 256;
/// How long a kept-alive connection may sit idle between requests.
/// Much shorter than [`IO_TIMEOUT`]: an idle connection pins a handler
/// thread and a `MAX_CONNECTIONS` slot, so parked clients must release
/// them quickly (their pooled [`Client`] reconnects transparently — a
/// server-closed socket is the replay-safe retry case).
const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(5);

/// The HTTP front end over an [`Engine`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: RankedMutex<Option<JoinHandle<()>>>,
    engine: Arc<Engine>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop.
    pub fn start(addr: &str, engine: Arc<Engine>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_handle = {
            let stop = stop.clone();
            let engine = engine.clone();
            std::thread::Builder::new()
                .name("pieri-service-accept".into())
                .spawn(move || accept_loop(&listener, &stop, &engine))?
        };
        Ok(Server {
            addr: local,
            stop,
            accept_handle: RankedMutex::new("http-accept", rank::HTTP_ACCEPT, Some(accept_handle)),
            engine,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the server.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops accepting connections and joins the accept thread.
    /// In-flight handlers finish their response on their own threads;
    /// the engine keeps running until its owner shuts it down.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        // lint:lock-rank(http-accept, 50)
        if let Some(h) = self.accept_handle.lock_recover().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, engine: &Arc<Engine>) {
    // Live handler-thread count; incremented before spawning, released
    // by the guard when the handler returns for any reason.
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if active.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
            let e = JobError::QueueFull;
            let _ = write_response(&stream, status_for(&e), &wire::error_to_json(&e), false);
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let guard = ConnGuard(active.clone());
        let engine = engine.clone();
        // One thread per (short-lived, Connection: close) connection,
        // bounded by MAX_CONNECTIONS above.
        let spawned = std::thread::Builder::new()
            .name("pieri-service-conn".into())
            .spawn(move || {
                let _guard = guard;
                let _ = handle_connection(stream, &engine);
            });
        // Spawn failure: the guard was moved into the failed closure
        // and dropped with it, releasing the slot.
        drop(spawned);
    }
}

struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(stream: TcpStream, engine: &Arc<Engine>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    // Responses are written in one buffer, but disable Nagle anyway:
    // on a kept-alive connection a coalescing delay would serialise
    // against the peer's delayed ACK at ~40 ms per round trip.
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    for served in 1..=MAX_REQUESTS_PER_CONN {
        // Between requests only the short idle timeout applies; once a
        // request line arrives, `read_request` restores the full I/O
        // timeout for the headers and body.
        if served > 1 {
            stream.set_read_timeout(Some(KEEP_ALIVE_IDLE))?;
        }
        let request = match read_request(&mut reader, &stream) {
            Ok(r) => r,
            // The peer closed between requests: a normal end of a
            // kept-alive connection (or an empty connection).
            Err(ReadError::Closed) => return Ok(()),
            // Idle too long between requests: close quietly and free
            // the handler slot; the peer owed us nothing.
            Err(ReadError::Io(e))
                if served > 1
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    ) =>
            {
                return Ok(())
            }
            // Malformed transport framing still gets the structured
            // error envelope with the documented kinds/statuses; the
            // framing is unrecoverable, so the connection closes.
            Err(ReadError::Job(e)) => {
                return write_response(&stream, status_for(&e), &wire::error_to_json(&e), false)
            }
            // A socket error (timeout, disconnect) has no one to answer.
            Err(ReadError::Io(e)) => return Err(e),
        };
        // Keep-alive only when the client asked for it — anything else
        // keeps the original one-shot `Connection: close` behaviour.
        let keep = request.keep_alive && served < MAX_REQUESTS_PER_CONN;
        let (status, body) = route(&request, engine);
        write_response(&stream, status, &body, keep)?;
        if !keep {
            return Ok(());
        }
    }
    Ok(())
}

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    /// True when the request carried `Connection: keep-alive`.
    keep_alive: bool,
}

enum ReadError {
    /// The peer closed the socket before sending a request line.
    Closed,
    /// The peer sent something answerable-but-wrong.
    Job(JobError),
    /// The socket itself failed.
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn read_request(
    reader: &mut BufReader<TcpStream>,
    stream: &TcpStream,
) -> Result<Request, ReadError> {
    let bad = |msg: &str| ReadError::Job(JobError::InvalidRequest(msg.to_string()));
    // Hard-bound the header block *before* buffering: `read_line` on the
    // raw reader would happily accumulate an unbounded newline-free
    // line, so every header read goes through a `Take` that enforces
    // the limit at the byte level.
    let mut head = reader.take(MAX_HEADER_BYTES as u64);
    let mut line = String::new();
    if head.read_line(&mut line)? == 0 {
        return Err(ReadError::Closed);
    }
    // A request is in flight: from here on the peer gets the full I/O
    // timeout (the caller may have armed the short keep-alive idle
    // timeout while waiting for this line).
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("empty request line"))?
        .to_string();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_string();
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    let mut keep_alive = false;
    loop {
        let mut header = String::new();
        if head.read_line(&mut header)? == 0 {
            // The Take ran dry before the blank separator line.
            return Err(ReadError::Job(JobError::TooLarge {
                detail: format!("header block exceeds {MAX_HEADER_BYTES} bytes (or is truncated)"),
            }));
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("invalid Content-Length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // Only Content-Length framing is implemented. Accepting
                // a chunked request would leave its body bytes in the
                // buffer to be parsed as the *next* request on a
                // kept-alive connection (request smuggling); reject it
                // and close.
                return Err(bad(
                    "Transfer-Encoding is not supported; use Content-Length",
                ));
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::Job(JobError::TooLarge {
            detail: format!("request body exceeds {MAX_BODY_BYTES} bytes"),
        }));
    }
    let mut body = vec![0u8; content_length];
    // Hand the buffered reader back intact: a kept-alive connection
    // reads its next request from the same buffer.
    head.into_inner().read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

fn write_response(
    mut stream: &TcpStream,
    status: u16,
    body: &Value,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let payload = body.serialize();
    // One buffer, one write: never leaves a small unacknowledged
    // segment for Nagle to hold the rest of the response behind.
    let mut message = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
        payload.len()
    )
    .into_bytes();
    message.extend_from_slice(payload.as_bytes());
    stream.write_all(&message)?;
    stream.flush()
}

fn status_for(e: &JobError) -> u16 {
    match e {
        JobError::InvalidRequest(_) => 400,
        JobError::TooLarge { .. } => 413,
        JobError::QueueFull | JobError::ShuttingDown => 503,
        JobError::StartSystem(_) | JobError::Uncertified { .. } | JobError::Internal(_) => 500,
    }
}

fn route(request: &Request, engine: &Arc<Engine>) -> (u16, Value) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, object([("ok", Value::Bool(true))])),
        ("GET", "/v1/stats") => {
            let stats = engine.stats();
            let resident = engine.cache().resident();
            (200, wire::stats_to_json(&stats, &resident))
        }
        // Non-blocking submit: a full queue answers 503 `queue_full`
        // immediately instead of parking the handler thread — the
        // bounded queue is the overload limit clients actually see.
        ("POST", "/v1/solve") => match parse_job(&request.body) {
            Ok(req) => match engine.submit(req).map(|t| t.wait()) {
                Ok(Ok(result)) => (200, wire::result_to_json(&result)),
                Ok(Err(e)) | Err(e) => (status_for(&e), wire::error_to_json(&e)),
            },
            Err(e) => (status_for(&e), wire::error_to_json(&e)),
        },
        ("POST", "/v1/batch") => batch(&request.body, engine),
        (_, "/healthz" | "/v1/stats" | "/v1/solve" | "/v1/batch") => {
            let e = JobError::InvalidRequest(format!(
                "method {} not allowed on {}",
                request.method, request.path
            ));
            (405, wire::error_to_json(&e))
        }
        _ => {
            let e = JobError::InvalidRequest(format!("no such endpoint {}", request.path));
            (404, wire::error_to_json(&e))
        }
    }
}

fn parse_job(body: &[u8]) -> Result<JobRequest, JobError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| JobError::InvalidRequest("body must be UTF-8".into()))?;
    let json = minijson::parse(text)
        .map_err(|e| JobError::InvalidRequest(format!("invalid JSON: {e}")))?;
    Ok(wire::request_from_json(&json)?)
}

/// Runs a batch: submits every job (blocking on queue space, which is
/// safe because batch size is capped at the queue capacity), then waits
/// for all tickets. Per-job failures land in the per-job slot, not on
/// the whole batch.
fn batch(body: &[u8], engine: &Arc<Engine>) -> (u16, Value) {
    let parsed: Result<Vec<JobRequest>, JobError> = (|| {
        let text = std::str::from_utf8(body)
            .map_err(|_| JobError::InvalidRequest("body must be UTF-8".into()))?;
        let json = minijson::parse(text)
            .map_err(|e| JobError::InvalidRequest(format!("invalid JSON: {e}")))?;
        let jobs = json
            .get("jobs")
            .and_then(Value::as_array)
            .ok_or_else(|| JobError::InvalidRequest("batch needs a \"jobs\" array".into()))?;
        // One batch may not monopolise the engine: bound it by the
        // queue capacity (the same knob that bounds every other client).
        let cap = engine.queue_capacity();
        if jobs.len() > cap {
            return Err(JobError::TooLarge {
                detail: format!(
                    "batch of {} jobs exceeds the queue capacity {cap}; split it",
                    jobs.len()
                ),
            });
        }
        jobs.iter()
            .map(|j| wire::request_from_json(j).map_err(JobError::from))
            .collect()
    })();
    let jobs = match parsed {
        Ok(jobs) => jobs,
        Err(e) => return (status_for(&e), wire::error_to_json(&e)),
    };

    let tickets: Vec<Result<crate::engine::JobTicket, JobError>> = jobs
        .into_iter()
        .map(|req| engine.submit_blocking(req))
        .collect();
    let results: Vec<Value> = tickets
        .into_iter()
        .map(|t| match t.and_then(|t| t.wait()) {
            Ok(r) => wire::result_to_json(&r),
            Err(e) => wire::error_to_json(&e),
        })
        .collect();
    (200, object([("results", Value::Array(results))]))
}

// ---- client ------------------------------------------------------------

/// A failed request/response exchange, remembering whether replaying
/// the request on a fresh connection is safe: only when the pooled
/// connection died **before any response byte arrived** (the HTTP
/// convention for persistent connections) — a failure mid-response
/// means the server may have executed the job, and jobs are not
/// idempotent in cost. Timeouts are never replay-safe.
struct ExchangeError {
    error: std::io::Error,
    replay_safe: bool,
}

impl ExchangeError {
    /// An error from before any response byte was read: replay-safe
    /// exactly when the error says the socket was dead, not slow.
    fn before_response(error: std::io::Error) -> Self {
        let replay_safe = matches!(
            error.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::NotConnected
        );
        ExchangeError { error, replay_safe }
    }

    /// An error after response bytes arrived: never replay-safe.
    fn mid_response(error: std::io::Error) -> Self {
        ExchangeError {
            error,
            replay_safe: false,
        }
    }
}

/// A tiny blocking HTTP/1.1 client for the examples, tests and load
/// generator.
///
/// The client requests `Connection: keep-alive` and pools one
/// connection: consecutive requests from the same `Client` reuse the
/// socket as long as the server keeps it open, falling back to a fresh
/// connection (with one retry) when the pooled socket has gone stale.
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    /// The kept-alive connection from the previous request, if any.
    conn: RankedMutex<Option<TcpStream>>,
}

impl Client {
    /// Resolves `addr` ("127.0.0.1:8632" or a `SocketAddr`) with the
    /// default 30 s socket timeout. `/v1/solve` blocks until the job
    /// finishes, so for shapes near the admission limits (or deep
    /// queues) use [`Client::with_timeout`] and size the timeout to the
    /// workload — a too-small value reports a job the server completes
    /// as a transport error.
    pub fn new(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::with_timeout(addr, IO_TIMEOUT)
    }

    /// As [`Client::new`] with an explicit socket timeout.
    pub fn with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
        Ok(Client {
            addr,
            timeout,
            conn: RankedMutex::new("client-conn", rank::CLIENT_CONN, None),
        })
    }

    /// Raw GET; returns `(status, parsed body)`.
    pub fn get(&self, path: &str) -> std::io::Result<(u16, Value)> {
        self.request("GET", path, None)
    }

    /// Raw POST of a JSON body; returns `(status, parsed body)`.
    pub fn post(&self, path: &str, body: &Value) -> std::io::Result<(u16, Value)> {
        self.request("POST", path, Some(body))
    }

    /// Typed job submission: POST the request to `/v1/solve` and decode
    /// the result or the error envelope. Transport failures surface as
    /// [`JobError::Internal`].
    pub fn solve(&self, req: &JobRequest) -> Result<JobResult, JobError> {
        let body = wire::request_to_json(req);
        let (status, json) = self
            .post("/v1/solve", &body)
            .map_err(|e| JobError::Internal(format!("transport: {e}")))?;
        if status == 200 {
            Ok(wire::result_from_json(&json)?)
        } else {
            Err(wire::error_from_json(&json)
                .unwrap_or_else(|e| JobError::Internal(format!("bad error envelope: {e}"))))
        }
    }

    /// True when `/healthz` answers 200.
    pub fn health(&self) -> bool {
        matches!(self.get("/healthz"), Ok((200, _)))
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> std::io::Result<(u16, Value)> {
        // Reuse the pooled kept-alive connection when there is one. The
        // retry on a fresh connection is restricted to errors proving
        // the pooled socket had gone stale (server closed it between
        // requests): EOF/reset/broken-pipe. Anything else — above all a
        // read *timeout*, where the server may be mid-execution — is
        // surfaced, never silently re-sent: jobs are not idempotent in
        // cost, and a blind replay would run them twice.
        // lint:lock-rank(client-conn, 60)
        let pooled = self.conn.lock_recover().take();
        if let Some(stream) = pooled {
            match self.exchange(stream, method, path, body) {
                Ok(answer) => return Ok(answer),
                Err(e) if e.replay_safe => {}
                Err(e) => return Err(e.error),
            }
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        self.exchange(stream, method, path, body)
            .map_err(|e| e.error)
    }

    /// One request/response exchange on `stream`; pools the stream back
    /// when the server answered `Connection: keep-alive`. Errors record
    /// whether any response byte had arrived (see [`ExchangeError`]).
    fn exchange(
        &self,
        mut stream: TcpStream,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> Result<(u16, Value), ExchangeError> {
        let pre = ExchangeError::before_response;
        stream.set_read_timeout(Some(self.timeout)).map_err(pre)?;
        stream.set_write_timeout(Some(self.timeout)).map_err(pre)?;
        stream.set_nodelay(true).map_err(pre)?;
        let payload = body.map(Value::serialize).unwrap_or_default();
        // Head and body go out in one write (see `write_response`).
        let mut message = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr,
            payload.len()
        )
        .into_bytes();
        message.extend_from_slice(payload.as_bytes());
        stream.write_all(&message).map_err(pre)?;
        stream.flush().map_err(pre)?;

        // Read through a reference so the stream itself survives the
        // buffered reader; nothing beyond this response is in flight,
        // so dropping the buffer loses no bytes.
        let mut reader = BufReader::new(&stream);
        let mut status_line = String::new();
        match reader.read_line(&mut status_line) {
            Ok(0) => {
                return Err(pre(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before response",
                )))
            }
            Ok(_) => {}
            Err(e) => return Err(pre(e)),
        }
        // From here on response bytes have arrived: failures are no
        // longer replay-safe.
        let mid = ExchangeError::mid_response;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                mid(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "bad status line",
                ))
            })?;
        let mut content_length = 0usize;
        let mut keep_alive = false;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).map_err(mid)?;
            let trimmed = header.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        mid(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "bad Content-Length",
                        ))
                    })?;
                } else if name.eq_ignore_ascii_case("connection") {
                    keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).map_err(mid)?;
        drop(reader);
        if keep_alive {
            // lint:lock-rank(client-conn, 60)
            *self.conn.lock_recover() = Some(stream);
        }
        let text = String::from_utf8(body).map_err(|_| {
            mid(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "non-UTF-8 body",
            ))
        })?;
        let json = minijson::parse(&text).map_err(|e| {
            mid(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                e.to_string(),
            ))
        })?;
        Ok((status, json))
    }
}
