//! The shape-keyed cache of Pieri start systems.
//!
//! Everything expensive about a pole-placement request depends only on
//! the shape `(m, p, q)`: the poset and the one generic run of the
//! Pieri tree. This cache maps `Shape → Arc<StartBundle>` so the first
//! request for a shape pays the tree (on the global work-stealing pool)
//! and every later request — any plant, any poles — skips straight to
//! the `d(m,p,q)` cheap continuation paths.
//!
//! Concurrency: one builder per shape. A request that finds the slot
//! `Building` parks on a condvar and wakes with the finished bundle —
//! it never duplicates the build, and it counts as a hit (it did not pay
//! for the tree). A failed build returns the error to the request that
//! ran it and leaves the slot empty; parked waiters wake and retry the
//! build themselves, each retry drawing a *fresh* generic instance
//! (the attempt number is mixed into the seed — a deterministic
//! failure must not recur identically forever).
//!
//! Residency is bounded: the cache enforces [`CacheLimits`] (a shape
//! count and an approximate byte budget, sized from
//! [`StartBundle::approx_bytes`]) with least-recently-used eviction, so
//! a stream of distinct large shapes cannot grow the server without
//! bound. Evictions are counted and exposed through `/v1/stats`.

use crate::job::JobError;
use crate::store::BundleStore;
use crate::sync::{rank, RankedMutex};
use pieri_core::{Shape, StartBundle};
use pieri_num::seeded_rng;
use pieri_parallel::solve_tree_parallel_prepared;
use pieri_trace::Counter;
use pieri_tracker::TrackSettings;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// How the cache builds a bundle on a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildMode {
    /// Sequential level-by-level solver (one core; other jobs keep the
    /// pool).
    Sequential,
    /// Tree-parallel scheduler on the global work-stealing pool with one
    /// virtual slave per pool thread — the PR-2 runtime does the heavy
    /// lifting of cold shapes.
    TreeParallel,
}

/// Residency bounds of the shape cache. Both limits apply; eviction is
/// least-recently-used over *ready* bundles (in-flight builds are never
/// evicted) and the most recently inserted bundle always survives, even
/// when it alone exceeds the byte budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLimits {
    /// Maximum number of resident shapes.
    pub max_shapes: usize,
    /// Approximate byte budget across all resident bundles
    /// ([`StartBundle::approx_bytes`]).
    pub max_bytes: usize,
}

impl Default for CacheLimits {
    fn default() -> Self {
        CacheLimits {
            max_shapes: 32,
            max_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Shared per-shape slot.
struct Slot {
    state: RankedMutex<SlotState>,
    ready: Condvar,
    /// LRU clock value of the slot's last hit (or build completion).
    last_used: AtomicU64,
    /// Build attempts so far; attempt 0 uses the pure
    /// `(bundle_seed, shape)` seed, retries after a failure mix the
    /// attempt number in so a doomed generic instance is not redrawn.
    attempts: AtomicUsize,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            state: RankedMutex::new("cache-slot", rank::CACHE_SLOT, SlotState::Empty),
            ready: Condvar::new(),
            last_used: AtomicU64::new(0),
            attempts: AtomicUsize::new(0),
        }
    }
}

#[derive(Default)]
enum SlotState {
    #[default]
    Empty,
    Building,
    Ready(Arc<StartBundle>),
}

/// Aggregate cache counters (monotone; snapshot via
/// [`ShapeCache::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a ready bundle (including requests that
    /// waited for a concurrent build rather than duplicating it).
    pub hits: usize,
    /// Requests that paid for a bundle build.
    pub misses: usize,
    /// Distinct shapes currently resident.
    pub shapes: usize,
    /// Bundles evicted by the LRU residency limits.
    pub evictions: usize,
    /// Approximate bytes held by the resident bundles.
    pub resident_bytes: usize,
    /// Bundles restored from the on-disk store at startup — warm
    /// restarts that skipped the Pieri tree entirely.
    pub restored: usize,
    /// Store loads rescued from the `.bak` fallback after a torn or
    /// corrupt primary file (see [`crate::store::BundleStore`]).
    pub store_recovered: usize,
}

/// A concurrent map `(m, p, q) → Arc<StartBundle>`.
pub struct ShapeCache {
    slots: RankedMutex<HashMap<Shape, Arc<Slot>>>,
    // The monotone counters are `pieri_trace::Counter`s so the engine
    // can adopt them into its metrics registry
    // ([`ShapeCache::register_metrics`]): `/v1/stats` and `/v1/metrics`
    // then read cache activity from the same coherent snapshot as the
    // job ledger, instead of racing these fields one by one.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    /// Monotone LRU clock; slots stamp their `last_used` from it.
    clock: AtomicU64,
    limits: CacheLimits,
    /// Seed stream for bundle builds: the bundle for a shape is a
    /// deterministic function of `(bundle_seed, shape)`, independent of
    /// request order.
    bundle_seed: u64,
    settings: TrackSettings,
    mode: BuildMode,
    /// Optional on-disk persistence: successful builds are saved
    /// best-effort, [`ShapeCache::with_store`] preloads at startup.
    store: Option<BundleStore>,
    restored: Counter,
}

impl ShapeCache {
    /// Creates an empty cache with the default [`CacheLimits`].
    pub fn new(bundle_seed: u64, settings: TrackSettings, mode: BuildMode) -> Self {
        ShapeCache::with_limits(bundle_seed, settings, mode, CacheLimits::default())
    }

    /// Creates an empty cache with explicit residency limits.
    pub fn with_limits(
        bundle_seed: u64,
        settings: TrackSettings,
        mode: BuildMode,
        limits: CacheLimits,
    ) -> Self {
        assert!(limits.max_shapes >= 1, "cache must hold at least one shape");
        ShapeCache {
            slots: RankedMutex::new("cache-slots", rank::CACHE_SLOTS, HashMap::new()),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            clock: AtomicU64::new(0),
            limits,
            bundle_seed,
            settings,
            mode,
            store: None,
            restored: Counter::new(),
        }
    }

    /// Adopts this cache's counters into `registry` (as
    /// `pieri_cache_*_total`), so registry snapshots — `/v1/stats`,
    /// `/v1/metrics` — cover cache activity coherently. Call once,
    /// before the cache serves traffic; counters accumulated earlier
    /// (e.g. store restores) stay visible, the instruments are shared,
    /// not copied.
    pub fn register_metrics(&self, registry: &pieri_trace::Registry) {
        registry.adopt_counter("pieri_cache_hits_total", self.hits.clone());
        registry.adopt_counter("pieri_cache_misses_total", self.misses.clone());
        registry.adopt_counter("pieri_cache_evictions_total", self.evictions.clone());
        registry.adopt_counter("pieri_cache_restored_total", self.restored.clone());
    }

    /// Attaches an on-disk [`BundleStore`] and eagerly restores every
    /// decodable bundle it holds, so a restarted server answers its
    /// first request for a known shape warm. Restoration is fully
    /// validated ([`StartBundle::restore`] regenerates the poset and
    /// generic instance from the persisted seed and residual-checks the
    /// coefficients); any defect silently degrades to a cold rebuild.
    /// `None` (or an unopenable directory) leaves the cache storeless.
    pub fn with_store(mut self, dir: Option<&std::path::Path>) -> Self {
        let Some(store) = dir.and_then(BundleStore::open) else {
            return self;
        };
        for (shape, stored) in store.load_all() {
            // Only restore bundles this cache's own seed stream could
            // have built (any plausible retry attempt): the resident
            // set must stay a deterministic function of
            // `(bundle_seed, shape)` even across a store written under
            // a different server configuration.
            if !(0..8).any(|attempt| stored.seed == self.seed_for(&shape, attempt)) {
                continue;
            }
            let mut rng = seeded_rng(stored.seed);
            let Ok(bundle) =
                StartBundle::restore(shape.clone(), &mut rng, stored.coeffs, stored.build_time)
            else {
                continue;
            };
            let slot = Arc::new(Slot::default());
            // lint:lock-rank(cache-slot, 30)
            *slot.state.lock_recover() = SlotState::Ready(Arc::new(bundle));
            self.touch(&slot);
            // lint:lock-rank(cache-slots, 20)
            self.slots.lock_recover().insert(shape.clone(), slot);
            self.restored.inc();
            self.evict_over_limit(&shape);
        }
        self.store = Some(store);
        self
    }

    fn touch(&self, slot: &Slot) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        slot.last_used.store(now, Ordering::Relaxed);
    }

    /// Returns the bundle for `shape`, building it (once, whoever gets
    /// there first) on a miss. The boolean is `true` on a hit.
    pub fn get_or_build(&self, shape: &Shape) -> Result<(Arc<StartBundle>, bool), JobError> {
        let slot = {
            // lint:lock-rank(cache-slots, 20)
            let mut slots = self.slots.lock_recover();
            slots.entry(shape.clone()).or_default().clone()
        };

        // lint:lock-rank(cache-slot, 30)
        let mut state = slot.state.lock_recover();
        loop {
            match &*state {
                SlotState::Ready(bundle) => {
                    self.touch(&slot);
                    self.hits.inc();
                    return Ok((bundle.clone(), true));
                }
                SlotState::Building => {
                    state = crate::sync::wait_recover(&slot.ready, state);
                }
                SlotState::Empty => {
                    *state = SlotState::Building;
                    drop(state);
                    let attempt = slot.attempts.fetch_add(1, Ordering::Relaxed);
                    let seed = self.seed_for(shape, attempt);
                    let built = self.build(shape, seed);
                    // lint:lock-rank(cache-slot, 30)
                    let mut state = slot.state.lock_recover();
                    match built {
                        Ok(bundle) => {
                            let bundle = Arc::new(bundle);
                            *state = SlotState::Ready(bundle.clone());
                            self.touch(&slot);
                            slot.ready.notify_all();
                            self.misses.inc();
                            drop(state);
                            if let Some(store) = &self.store {
                                store.save(shape, seed, bundle.coeffs(), bundle.build_time());
                            }
                            self.evict_over_limit(shape);
                            return Ok((bundle, false));
                        }
                        Err(e) => {
                            // Leave the slot retryable and fail the
                            // waiters through the Empty branch retrying
                            // — they will attempt their own build.
                            *state = SlotState::Empty;
                            slot.ready.notify_all();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// The deterministic build seed for `shape` at build attempt
    /// `attempt`. Attempt 0 seeds purely from `(bundle_seed, shape)`;
    /// retries perturb the stream so a doomed generic instance is not
    /// redrawn. The seed is what the on-disk store persists — replaying
    /// it through `seeded_rng` regenerates the identical bundle.
    fn seed_for(&self, shape: &Shape, attempt: usize) -> u64 {
        self.bundle_seed ^ shape_tag(shape) ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Builds a bundle outside any lock. Panics inside the solvers are
    /// contained here (the build runs caller-side, possibly on an engine
    /// worker thread).
    fn build(&self, shape: &Shape, seed: u64) -> Result<StartBundle, JobError> {
        let shape = shape.clone();
        let settings = self.settings;
        let mode = self.mode;
        catch_unwind(AssertUnwindSafe(move || match mode {
            BuildMode::Sequential => {
                let mut rng = seeded_rng(seed);
                StartBundle::build(shape, &mut rng, &settings)
            }
            BuildMode::TreeParallel => {
                let t0 = Instant::now();
                let poset = pieri_core::Poset::build(&shape);
                let mut rng = seeded_rng(seed);
                let problem = pieri_core::PieriProblem::random(shape, &mut rng);
                let workers = rayon::current_num_threads().max(1);
                let (solution, _) =
                    solve_tree_parallel_prepared(&problem, &poset, &settings, workers);
                StartBundle::from_parts(poset, problem, solution, t0.elapsed())
            }
        }))
        .map_err(|payload| JobError::StartSystem(panic_message(&payload)))
    }

    /// Enforces the residency limits after `keep` became ready: evicts
    /// least-recently-used ready bundles (never `keep`, never in-flight
    /// builds) until both the shape count and the byte budget hold.
    fn evict_over_limit(&self, keep: &Shape) {
        // lint:lock-rank(cache-slots, 20)
        let mut slots = self.slots.lock_recover();
        loop {
            // Snapshot the ready slots: (shape, last_used, bytes).
            let mut ready: Vec<(Shape, u64, usize)> = Vec::new();
            for (shape, slot) in slots.iter() {
                // lint:lock-rank(cache-slot, 30)
                if let SlotState::Ready(bundle) = &*slot.state.lock_recover() {
                    ready.push((
                        shape.clone(),
                        slot.last_used.load(Ordering::Relaxed),
                        bundle.approx_bytes(),
                    ));
                }
            }
            let total: usize = ready.iter().map(|(_, _, b)| *b).sum();
            if ready.len() <= self.limits.max_shapes && total <= self.limits.max_bytes {
                return;
            }
            let victim = ready
                .iter()
                .filter(|(shape, _, _)| shape != keep)
                .min_by_key(|(_, used, _)| *used)
                .map(|(shape, _, _)| shape.clone());
            let Some(victim) = victim else {
                // Only the just-inserted bundle remains; it survives
                // even over budget (evicting it would thrash).
                return;
            };
            slots.remove(&victim);
            self.evictions.inc();
        }
    }

    /// The configured residency limits.
    pub fn limits(&self) -> CacheLimits {
        self.limits
    }

    /// Counter snapshot. `shapes` counts only *resident* bundles — a
    /// slot whose build is in flight (or failed and awaits retry) is
    /// not a shape the cache can serve, and must agree with
    /// [`ShapeCache::resident`].
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get() as usize,
            misses: self.misses.get() as usize,
            evictions: self.evictions.get() as usize,
            restored: self.restored.get() as usize,
            ..self.residency_stats()
        }
    }

    /// [`ShapeCache::stats`] with the monotone counters read from an
    /// already-taken registry snapshot (see
    /// [`ShapeCache::register_metrics`]) instead of the live atomics —
    /// the engine uses this so one `/v1/stats` payload is a single
    /// coherent read of the whole registry.
    pub fn stats_from(&self, snap: &pieri_trace::Snapshot) -> CacheStats {
        CacheStats {
            hits: snap.counter("pieri_cache_hits_total") as usize,
            misses: snap.counter("pieri_cache_misses_total") as usize,
            evictions: snap.counter("pieri_cache_evictions_total") as usize,
            restored: snap.counter("pieri_cache_restored_total") as usize,
            ..self.residency_stats()
        }
    }

    /// The lock-derived (non-counter) half of [`CacheStats`].
    fn residency_stats(&self) -> CacheStats {
        let (shapes, resident_bytes) = {
            // lint:lock-rank(cache-slots, 20)
            let slots = self.slots.lock_recover();
            let mut count = 0usize;
            let mut bytes = 0usize;
            for slot in slots.values() {
                // lint:lock-rank(cache-slot, 30)
                if let SlotState::Ready(bundle) = &*slot.state.lock_recover() {
                    count += 1;
                    bytes += bundle.approx_bytes();
                }
            }
            (count, bytes)
        };
        CacheStats {
            shapes,
            resident_bytes,
            store_recovered: self.store.as_ref().map_or(0, |s| s.recovered()),
            ..CacheStats::default()
        }
    }

    /// The resident shapes with their root counts and build times — the
    /// `/v1/stats` payload.
    pub fn resident(&self) -> Vec<(Shape, usize, Duration)> {
        // lint:lock-rank(cache-slots, 20)
        let slots = self.slots.lock_recover();
        let mut out = Vec::new();
        for (shape, slot) in slots.iter() {
            // lint:lock-rank(cache-slot, 30)
            if let SlotState::Ready(bundle) = &*slot.state.lock_recover() {
                out.push((shape.clone(), bundle.root_count(), bundle.build_time()));
            }
        }
        out.sort_by_key(|(s, _, _)| (s.m(), s.p(), s.q()));
        out
    }
}

/// Mixes a shape into the bundle seed stream (FNV-1a over the dims).
fn shape_tag(shape: &Shape) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for dim in [shape.m(), shape.p(), shape.q()] {
        h ^= dim as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Best-effort panic payload to string.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> ShapeCache {
        ShapeCache::new(0x5eed, TrackSettings::default(), BuildMode::Sequential)
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_bundle() {
        let c = cache();
        let shape = Shape::new(2, 2, 0);
        let (a, hit_a) = c.get_or_build(&shape).unwrap();
        let (b, hit_b) = c.get_or_build(&shape).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b), "one bundle per shape");
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses, stats.shapes), (1, 1, 1));
        assert_eq!(stats.evictions, 0);
        assert!(stats.resident_bytes > 0, "byte estimate is nonzero");
    }

    #[test]
    fn distinct_shapes_get_distinct_bundles() {
        let c = cache();
        let (a, _) = c.get_or_build(&Shape::new(2, 2, 0)).unwrap();
        let (b, _) = c.get_or_build(&Shape::new(3, 2, 0)).unwrap();
        assert_eq!(a.root_count(), 2);
        assert_eq!(b.root_count(), 5);
        assert_eq!(c.stats().shapes, 2);
        let resident = c.resident();
        assert_eq!(resident.len(), 2);
    }

    #[test]
    fn concurrent_requests_build_once() {
        let c = Arc::new(cache());
        let shape = Shape::new(2, 2, 1);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                let shape = shape.clone();
                std::thread::spawn(move || c.get_or_build(&shape).unwrap().0)
            })
            .collect();
        let bundles: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for b in &bundles[1..] {
            assert!(Arc::ptr_eq(&bundles[0], b));
        }
        let stats = c.stats();
        assert_eq!(stats.misses, 1, "exactly one thread built");
        assert_eq!(stats.hits, 3, "the others shared it");
    }

    #[test]
    fn tree_parallel_build_matches_root_count() {
        let c = ShapeCache::new(0x5eed, TrackSettings::default(), BuildMode::TreeParallel);
        let (bundle, hit) = c.get_or_build(&Shape::new(2, 2, 1)).unwrap();
        assert!(!hit);
        assert_eq!(bundle.root_count(), 8);
    }

    #[test]
    fn lru_eviction_by_shape_count() {
        let c = ShapeCache::with_limits(
            0x5eed,
            TrackSettings::default(),
            BuildMode::Sequential,
            CacheLimits {
                max_shapes: 2,
                max_bytes: usize::MAX,
            },
        );
        let s220 = Shape::new(2, 2, 0);
        let s320 = Shape::new(3, 2, 0);
        let s210 = Shape::new(2, 1, 0);
        c.get_or_build(&s220).unwrap();
        c.get_or_build(&s320).unwrap();
        // Touch (2,2,0) so (3,2,0) becomes the LRU victim.
        assert!(c.get_or_build(&s220).unwrap().1, "hit refreshes LRU");
        c.get_or_build(&s210).unwrap();
        let stats = c.stats();
        assert_eq!(stats.shapes, 2, "capacity enforced");
        assert_eq!(stats.evictions, 1);
        let resident: Vec<Shape> = c.resident().into_iter().map(|(s, _, _)| s).collect();
        assert!(resident.contains(&s220), "recently used shape survives");
        assert!(resident.contains(&s210), "newcomer survives");
        assert!(!resident.contains(&s320), "LRU shape evicted");
        // The evicted shape rebuilds on demand (a miss, not an error).
        let (_, hit) = c.get_or_build(&s320).unwrap();
        assert!(!hit);
    }

    #[test]
    fn byte_budget_evicts_but_newcomer_survives() {
        // A budget below a single bundle: every insert evicts the
        // previous resident, but the newcomer itself always stays.
        let c = ShapeCache::with_limits(
            0x5eed,
            TrackSettings::default(),
            BuildMode::Sequential,
            CacheLimits {
                max_shapes: 8,
                max_bytes: 1,
            },
        );
        c.get_or_build(&Shape::new(2, 2, 0)).unwrap();
        assert_eq!(c.stats().shapes, 1, "over-budget newcomer survives");
        c.get_or_build(&Shape::new(3, 2, 0)).unwrap();
        let stats = c.stats();
        assert_eq!(stats.shapes, 1);
        assert_eq!(stats.evictions, 1);
        assert_eq!(c.resident()[0].0, Shape::new(3, 2, 0));
    }

    #[test]
    fn store_warm_restarts_and_corruption_falls_back_to_rebuild() {
        let dir = std::env::temp_dir().join(format!("pieri-cache-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let shape = Shape::new(2, 2, 0);

        // First "process": cold build, persisted on the way out.
        let first = ShapeCache::new(0x5eed, TrackSettings::default(), BuildMode::Sequential)
            .with_store(Some(&dir));
        assert_eq!(first.stats().restored, 0, "nothing on disk yet");
        let (cold, hit) = first.get_or_build(&shape).unwrap();
        assert!(!hit);

        // Second "process": the bundle preloads at construction and the
        // first request is a hit with bitwise-identical coefficients.
        let second = ShapeCache::new(0x5eed, TrackSettings::default(), BuildMode::Sequential)
            .with_store(Some(&dir));
        let stats = second.stats();
        assert_eq!((stats.restored, stats.shapes), (1, 1), "warm restart");
        let (warm, hit) = second.get_or_build(&shape).unwrap();
        assert!(hit, "restored bundle serves the first request");
        assert_eq!(warm.coeffs(), cold.coeffs(), "bitwise identical");

        // Corrupt the file: the next restart silently rebuilds.
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        std::fs::write(&file, "torn").unwrap();
        let third = ShapeCache::new(0x5eed, TrackSettings::default(), BuildMode::Sequential)
            .with_store(Some(&dir));
        assert_eq!(third.stats().restored, 0, "corrupt store restores nothing");
        let (rebuilt, hit) = third.get_or_build(&shape).unwrap();
        assert!(!hit, "cold rebuild, not an error");
        assert_eq!(rebuilt.coeffs(), cold.coeffs(), "same seed, same bundle");

        // A mismatched bundle seed fails the residual validation and
        // likewise degrades to a rebuild (no restore, no error).
        let fourth = ShapeCache::new(0xbad_5eed, TrackSettings::default(), BuildMode::Sequential)
            .with_store(Some(&dir));
        assert_eq!(fourth.stats().restored, 0, "foreign-seed store rejected");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bundle_byte_estimate_scales_with_shape() {
        let c = cache();
        let (small, _) = c.get_or_build(&Shape::new(2, 2, 0)).unwrap();
        let (large, _) = c.get_or_build(&Shape::new(2, 2, 1)).unwrap();
        assert!(small.approx_bytes() > 0);
        assert!(
            large.approx_bytes() > small.approx_bytes(),
            "(2,2,1) bundle ({}) must outweigh (2,2,0) ({})",
            large.approx_bytes(),
            small.approx_bytes()
        );
    }
}
