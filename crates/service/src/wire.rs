//! JSON wire codec for jobs, results and diagnostics.
//!
//! Conventions (also documented in the README's endpoint table):
//!
//! * complex number — two-element array `[re, im]`;
//! * matrix — array of rows, each row an array of complex numbers;
//! * matrix polynomial — array of coefficient matrices `[M₀, M₁, …]`;
//! * durations — milliseconds as JSON numbers;
//! * seeds — JSON numbers, restricted to integers below 2⁵³ (the exactly
//!   representable range of an IEEE double);
//! * errors — `{"error": {"kind": "...", "message": "..."}}` with the
//!   stable kind tags of [`JobError::kind`].
//!
//! Every decoder validates shape (rectangularity, finite numbers) and
//! returns [`WireError`] — malformed bytes can never panic the server.

use crate::cache::CacheStats;
use crate::engine::{CertifyCounters, EngineStats};
use crate::job::{CompensatorAnswer, JobError, JobRequest, JobResult};
use minijson::{object, JsonError, Value};
use pieri_certify::{Certificate, Verdict};
use pieri_linalg::CMat;
use pieri_num::Complex64;
use pieri_tracker::TrackStats;
use std::fmt;
use std::time::Duration;

/// A wire-format violation (parse error or schema mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        WireError(e.to_string())
    }
}

impl From<WireError> for JobError {
    fn from(e: WireError) -> Self {
        JobError::InvalidRequest(e.0)
    }
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, WireError> {
    v.get(key)
        .ok_or_else(|| WireError(format!("missing field {key:?}")))
}

fn num(v: &Value, what: &str) -> Result<f64, WireError> {
    v.as_f64()
        .ok_or_else(|| WireError(format!("{what} must be a number")))
}

fn uint(v: &Value, what: &str) -> Result<usize, WireError> {
    v.as_usize()
        .ok_or_else(|| WireError(format!("{what} must be a non-negative integer")))
}

fn seed(v: &Value, what: &str) -> Result<u64, WireError> {
    v.as_u64()
        .ok_or_else(|| WireError(format!("{what} must be an integer below 2^53")))
}

/// Optional boolean: absent decodes as `false` (the wire's `certify`
/// flag predates some clients), present must be a boolean.
fn opt_bool(v: &Value, key: &str) -> Result<bool, WireError> {
    match v.get(key) {
        None => Ok(false),
        Some(b) => b
            .as_bool()
            .ok_or_else(|| WireError(format!("{key} must be a boolean"))),
    }
}

/// Optional counter: absent decodes as `0` — the certification fields
/// postdate the PR-3/PR-4 wire format, and a new client must keep
/// decoding an old server's responses during a rolling upgrade.
fn opt_uint(v: &Value, key: &str) -> Result<usize, WireError> {
    match v.get(key) {
        None => Ok(0),
        Some(n) => uint(n, key),
    }
}

// ---- complex / matrix / polynomial ------------------------------------

/// `z → [re, im]`.
pub fn complex_to_json(z: Complex64) -> Value {
    Value::Array(vec![Value::Number(z.re), Value::Number(z.im)])
}

/// `[re, im] → z`, finite components required.
pub fn complex_from_json(v: &Value) -> Result<Complex64, WireError> {
    let items = v
        .as_array()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| WireError("complex number must be a [re, im] pair".into()))?;
    let re = num(&items[0], "re")?;
    let im = num(&items[1], "im")?;
    if !re.is_finite() || !im.is_finite() {
        return Err(WireError("complex components must be finite".into()));
    }
    Ok(Complex64::new(re, im))
}

/// Matrix → array of rows of `[re, im]` pairs.
pub fn mat_to_json(m: &CMat) -> Value {
    Value::Array(
        (0..m.rows())
            .map(|i| Value::Array((0..m.cols()).map(|j| complex_to_json(m[(i, j)])).collect()))
            .collect(),
    )
}

/// Array of rows → matrix; rejects empty or ragged input.
pub fn mat_from_json(v: &Value) -> Result<CMat, WireError> {
    let rows = v
        .as_array()
        .ok_or_else(|| WireError("matrix must be an array of rows".into()))?;
    if rows.is_empty() {
        return Err(WireError("matrix must have at least one row".into()));
    }
    let mut data: Vec<Vec<Complex64>> = Vec::with_capacity(rows.len());
    let mut width = None;
    for (i, row) in rows.iter().enumerate() {
        let entries = row
            .as_array()
            .ok_or_else(|| WireError(format!("matrix row {i} must be an array")))?;
        match width {
            None => {
                if entries.is_empty() {
                    return Err(WireError("matrix rows must be non-empty".into()));
                }
                width = Some(entries.len());
            }
            Some(w) if w != entries.len() => {
                return Err(WireError(format!(
                    "ragged matrix: row {i} has {} entries, expected {w}",
                    entries.len()
                )))
            }
            Some(_) => {}
        }
        data.push(
            entries
                .iter()
                .map(complex_from_json)
                .collect::<Result<_, _>>()?,
        );
    }
    Ok(CMat::from_rows(&data))
}

fn matpoly_to_json(coeffs: &[CMat]) -> Value {
    Value::Array(coeffs.iter().map(mat_to_json).collect())
}

fn matpoly_from_json(v: &Value, what: &str) -> Result<Vec<CMat>, WireError> {
    let items = v
        .as_array()
        .ok_or_else(|| WireError(format!("{what} must be an array of matrices")))?;
    items.iter().map(mat_from_json).collect()
}

pub(crate) fn complex_vec_to_json(zs: &[Complex64]) -> Value {
    Value::Array(zs.iter().map(|&z| complex_to_json(z)).collect())
}

pub(crate) fn complex_vec_from_json(v: &Value, what: &str) -> Result<Vec<Complex64>, WireError> {
    let items = v
        .as_array()
        .ok_or_else(|| WireError(format!("{what} must be an array")))?;
    items.iter().map(complex_from_json).collect()
}

fn duration_ms(d: Duration) -> Value {
    Value::Number(d.as_secs_f64() * 1e3)
}

/// Residuals can legitimately be `+∞` (e.g. a degree-degenerate
/// verification); JSON has no non-finite numbers, so those encode as
/// `null` and decode back to `+∞`.
fn residual_to_json(x: f64) -> Value {
    if x.is_finite() {
        Value::Number(x)
    } else {
        Value::Null
    }
}

fn residual_from_json(v: &Value, what: &str) -> Result<f64, WireError> {
    if v.is_null() {
        Ok(f64::INFINITY)
    } else {
        num(v, what)
    }
}

fn ms_duration(v: &Value, what: &str) -> Result<Duration, WireError> {
    let ms = num(v, what)?;
    if !(0.0..=1e15).contains(&ms) {
        return Err(WireError(format!("{what} out of range")));
    }
    Ok(Duration::from_secs_f64(ms / 1e3))
}

// ---- requests ----------------------------------------------------------

/// Encodes a request as its tagged JSON object.
pub fn request_to_json(req: &JobRequest) -> Value {
    match req {
        JobRequest::SolvePieri {
            m,
            p,
            q,
            seed,
            certify,
        } => object([
            ("type", Value::from("solve_pieri")),
            ("m", Value::from(*m)),
            ("p", Value::from(*p)),
            ("q", Value::from(*q)),
            ("seed", Value::Number(*seed as f64)),
            ("certify", Value::Bool(*certify)),
        ]),
        JobRequest::PlacePoles {
            a,
            b,
            c,
            q,
            poles,
            seed,
            certify,
        } => object([
            ("type", Value::from("place_poles")),
            ("a", mat_to_json(a)),
            ("b", mat_to_json(b)),
            ("c", mat_to_json(c)),
            ("q", Value::from(*q)),
            ("poles", complex_vec_to_json(poles)),
            ("seed", Value::Number(*seed as f64)),
            ("certify", Value::Bool(*certify)),
        ]),
    }
}

/// Decodes a tagged request object.
pub fn request_from_json(v: &Value) -> Result<JobRequest, WireError> {
    match field(v, "type")?.as_str() {
        Some("solve_pieri") => Ok(JobRequest::SolvePieri {
            m: uint(field(v, "m")?, "m")?,
            p: uint(field(v, "p")?, "p")?,
            q: uint(field(v, "q")?, "q")?,
            seed: seed(field(v, "seed")?, "seed")?,
            certify: opt_bool(v, "certify")?,
        }),
        Some("place_poles") => Ok(JobRequest::PlacePoles {
            a: mat_from_json(field(v, "a")?)?,
            b: mat_from_json(field(v, "b")?)?,
            c: mat_from_json(field(v, "c")?)?,
            q: uint(field(v, "q")?, "q")?,
            poles: complex_vec_from_json(field(v, "poles")?, "poles")?,
            seed: seed(field(v, "seed")?, "seed")?,
            certify: opt_bool(v, "certify")?,
        }),
        Some(other) => Err(WireError(format!("unknown job type {other:?}"))),
        None => Err(WireError("type must be a string".into())),
    }
}

// ---- results -----------------------------------------------------------

fn track_to_json(t: &TrackStats) -> Value {
    object([
        ("converged", Value::from(t.converged)),
        ("diverged", Value::from(t.diverged)),
        ("failed", Value::from(t.failed)),
        ("total_steps", Value::from(t.total_steps)),
        ("total_newton_iters", Value::from(t.total_newton_iters)),
        ("retracked", Value::from(t.retracked)),
        ("retrack_attempts", Value::from(t.retrack_attempts)),
        ("total_ms", duration_ms(t.total_time)),
        ("max_path_ms", duration_ms(t.max_path_time)),
    ])
}

fn track_from_json(v: &Value) -> Result<TrackStats, WireError> {
    Ok(TrackStats {
        converged: uint(field(v, "converged")?, "converged")?,
        diverged: uint(field(v, "diverged")?, "diverged")?,
        failed: uint(field(v, "failed")?, "failed")?,
        retracked: opt_uint(v, "retracked")?,
        retrack_attempts: opt_uint(v, "retrack_attempts")?,
        total_steps: uint(field(v, "total_steps")?, "total_steps")?,
        total_newton_iters: uint(field(v, "total_newton_iters")?, "total_newton_iters")?,
        total_time: ms_duration(field(v, "total_ms")?, "total_ms")?,
        max_path_time: ms_duration(field(v, "max_path_ms")?, "max_path_ms")?,
        // Per-path times are not shipped over the wire (unbounded size);
        // the aggregate fields above are the service-level diagnostics.
        path_times: Vec::new(),
    })
}

fn compensator_to_json(c: &CompensatorAnswer) -> Value {
    object([
        ("u", matpoly_to_json(&c.u_coeffs)),
        ("v", matpoly_to_json(&c.v_coeffs)),
        ("residual", residual_to_json(c.residual)),
        ("proper", Value::from(c.proper)),
    ])
}

fn compensator_from_json(v: &Value) -> Result<CompensatorAnswer, WireError> {
    Ok(CompensatorAnswer {
        u_coeffs: matpoly_from_json(field(v, "u")?, "u")?,
        v_coeffs: matpoly_from_json(field(v, "v")?, "v")?,
        residual: residual_from_json(field(v, "residual")?, "residual")?,
        proper: field(v, "proper")?
            .as_bool()
            .ok_or_else(|| WireError("proper must be a boolean".into()))?,
    })
}

/// Encodes one solution certificate: the verdict tag, the α-theory
/// estimates (non-finite estimates encode as `null`), the refinement
/// record and, for pole placement, the closed-loop pole residual.
pub fn certificate_to_json(c: &Certificate) -> Value {
    let reason = match &c.verdict {
        Verdict::Certified { .. } => Value::Null,
        Verdict::Suspect { reason, .. } | Verdict::Failed { reason } => {
            Value::String(reason.clone())
        }
    };
    object([
        ("verdict", Value::from(c.verdict.kind())),
        ("residual", residual_to_json(c.residual())),
        ("alpha", residual_to_json(c.alpha)),
        ("beta", residual_to_json(c.beta)),
        ("gamma", residual_to_json(c.gamma)),
        ("refined", Value::Bool(c.refined)),
        ("refine_iters", Value::from(c.refine_iters)),
        ("reason", reason),
        (
            "pole_residual",
            match c.pole_residual {
                Some(r) => residual_to_json(r),
                None => Value::Null,
            },
        ),
    ])
}

/// Decodes a certificate block (the client side).
pub fn certificate_from_json(v: &Value) -> Result<Certificate, WireError> {
    let residual = residual_from_json(field(v, "residual")?, "residual")?;
    let reason = field(v, "reason")?.as_str().unwrap_or_default().to_string();
    let alpha = residual_from_json(field(v, "alpha")?, "alpha")?;
    let verdict = match field(v, "verdict")?.as_str() {
        Some("certified") => Verdict::Certified {
            residual,
            newton_contraction: alpha,
        },
        Some("suspect") => Verdict::Suspect { residual, reason },
        Some("failed") => Verdict::Failed { reason },
        _ => return Err(WireError("verdict must be certified/suspect/failed".into())),
    };
    // `pole_residual` is nullable-null vs present-number; a null means
    // "not a pole-placement job".
    let pole_residual = {
        let pr = field(v, "pole_residual")?;
        if pr.is_null() {
            None
        } else {
            Some(num(pr, "pole_residual")?)
        }
    };
    Ok(Certificate {
        verdict,
        alpha,
        beta: residual_from_json(field(v, "beta")?, "beta")?,
        gamma: residual_from_json(field(v, "gamma")?, "gamma")?,
        refined: field(v, "refined")?
            .as_bool()
            .ok_or_else(|| WireError("refined must be a boolean".into()))?,
        refine_iters: uint(field(v, "refine_iters")?, "refine_iters")?,
        pole_residual,
    })
}

/// Encodes a finished job.
pub fn result_to_json(r: &JobResult) -> Value {
    object([
        ("solutions", Value::from(r.solutions)),
        ("expected", Value::Number(r.expected as f64)),
        ("improper", Value::from(r.improper)),
        ("failed", Value::from(r.failed)),
        (
            "coeffs",
            Value::Array(r.coeffs.iter().map(|x| complex_vec_to_json(x)).collect()),
        ),
        (
            "compensators",
            Value::Array(r.compensators.iter().map(compensator_to_json).collect()),
        ),
        (
            "certificates",
            Value::Array(r.certificates.iter().map(certificate_to_json).collect()),
        ),
        ("max_residual", residual_to_json(r.max_residual)),
        ("cache_hit", Value::from(r.cache_hit)),
        ("bundle_build_ms", duration_ms(r.bundle_build)),
        ("queue_wait_ms", duration_ms(r.queue_wait)),
        ("solve_ms", duration_ms(r.solve_time)),
        ("track", track_to_json(&r.track)),
    ])
}

/// Decodes a finished job (the client side).
pub fn result_from_json(v: &Value) -> Result<JobResult, WireError> {
    let coeffs = field(v, "coeffs")?
        .as_array()
        .ok_or_else(|| WireError("coeffs must be an array".into()))?
        .iter()
        .map(|x| complex_vec_from_json(x, "coeffs entry"))
        .collect::<Result<_, _>>()?;
    let compensators = field(v, "compensators")?
        .as_array()
        .ok_or_else(|| WireError("compensators must be an array".into()))?
        .iter()
        .map(compensator_from_json)
        .collect::<Result<_, _>>()?;
    // Absent on pre-certification servers: decode as "no certificates".
    let certificates = match v.get("certificates") {
        None => Vec::new(),
        Some(arr) => arr
            .as_array()
            .ok_or_else(|| WireError("certificates must be an array".into()))?
            .iter()
            .map(certificate_from_json)
            .collect::<Result<_, _>>()?,
    };
    let expected = num(field(v, "expected")?, "expected")?;
    if !(0.0..=2f64.powi(53)).contains(&expected) || expected.fract() != 0.0 {
        return Err(WireError("expected must be a non-negative integer".into()));
    }
    Ok(JobResult {
        solutions: uint(field(v, "solutions")?, "solutions")?,
        expected: expected as u128,
        improper: uint(field(v, "improper")?, "improper")?,
        failed: uint(field(v, "failed")?, "failed")?,
        coeffs,
        compensators,
        certificates,
        max_residual: residual_from_json(field(v, "max_residual")?, "max_residual")?,
        cache_hit: field(v, "cache_hit")?
            .as_bool()
            .ok_or_else(|| WireError("cache_hit must be a boolean".into()))?,
        bundle_build: ms_duration(field(v, "bundle_build_ms")?, "bundle_build_ms")?,
        queue_wait: ms_duration(field(v, "queue_wait_ms")?, "queue_wait_ms")?,
        solve_time: ms_duration(field(v, "solve_ms")?, "solve_ms")?,
        track: track_from_json(field(v, "track")?)?,
    })
}

// ---- errors & stats ----------------------------------------------------

/// Encodes a job error as the wire's error envelope.
pub fn error_to_json(e: &JobError) -> Value {
    object([(
        "error",
        object([
            ("kind", Value::from(e.kind())),
            ("message", Value::from(e.message())),
        ]),
    )])
}

/// Decodes an error envelope back into a [`JobError`] (client side).
/// Unknown kinds map to [`JobError::Internal`].
pub fn error_from_json(v: &Value) -> Result<JobError, WireError> {
    let err = field(v, "error")?;
    let kind = field(err, "kind")?
        .as_str()
        .ok_or_else(|| WireError("error.kind must be a string".into()))?;
    let message = field(err, "message")?
        .as_str()
        .unwrap_or_default()
        .to_string();
    Ok(match kind {
        "invalid_request" => JobError::InvalidRequest(message),
        "too_large" => JobError::TooLarge { detail: message },
        "queue_full" => JobError::QueueFull,
        "deadline_exceeded" => JobError::DeadlineExceeded { detail: message },
        "shutting_down" => JobError::ShuttingDown,
        "start_system" => JobError::StartSystem(message),
        "uncertified" => JobError::Uncertified { detail: message },
        _ => JobError::Internal(message),
    })
}

/// The build block shared by `/healthz` and `/v1/stats`: crate
/// version, the git hash baked in at build time (`PIERI_GIT_HASH`,
/// `"unknown"` when the build ran outside the repo), and which
/// optional features this binary was compiled with.
pub fn build_info_json() -> Value {
    object([
        ("version", Value::from(env!("CARGO_PKG_VERSION"))),
        (
            "git_hash",
            Value::from(option_env!("PIERI_GIT_HASH").unwrap_or("unknown")),
        ),
        (
            "features",
            object([
                ("trace", Value::Bool(cfg!(feature = "trace"))),
                ("chaos", Value::Bool(cfg!(feature = "chaos"))),
            ]),
        ),
    ])
}

/// Encodes the `/healthz` payload: liveness plus enough build identity
/// to tell *what* is alive (version, git hash, features, uptime).
pub fn health_to_json(uptime: Duration) -> Value {
    object([
        ("ok", Value::Bool(true)),
        ("uptime_secs", Value::Number(uptime.as_secs() as f64)),
        ("build", build_info_json()),
    ])
}

/// Encodes the `/v1/trace/<id>` payload: the recorded span tree of one
/// request, ordered as recorded (start order within each thread).
pub fn trace_to_json(trace_id: u64, spans: &[pieri_trace::SpanRecord]) -> Value {
    object([
        ("trace_id", Value::from(format!("{trace_id:016x}"))),
        (
            "spans",
            Value::Array(
                spans
                    .iter()
                    .map(|s| {
                        object([
                            ("name", Value::from(s.name)),
                            ("cat", Value::from(s.cat)),
                            ("tid", Value::from(s.tid as usize)),
                            ("start_us", Value::Number(s.start_us as f64)),
                            ("dur_us", Value::Number(s.dur_us as f64)),
                            ("depth", Value::from(s.depth as usize)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Encodes the `/v1/stats` payload.
pub fn stats_to_json(s: &EngineStats, resident: &[(pieri_core::Shape, usize, Duration)]) -> Value {
    object([
        ("workers", Value::from(s.workers)),
        ("queue_len", Value::from(s.queue_len)),
        ("queue_capacity", Value::from(s.queue_capacity)),
        ("submitted", Value::from(s.submitted)),
        ("completed", Value::from(s.completed)),
        ("rejected", Value::from(s.rejected)),
        ("shed", Value::from(s.shed)),
        ("deadline_expired", Value::from(s.deadline_expired)),
        ("workers_restarted", Value::from(s.workers_restarted)),
        ("jobs_recovered", Value::from(s.jobs_recovered)),
        ("uptime_secs", Value::Number(s.uptime.as_secs() as f64)),
        ("build", build_info_json()),
        ("certify", certify_counters_to_json(&s.certify)),
        ("cache", cache_stats_to_json(&s.cache, resident)),
    ])
}

fn certify_counters_to_json(c: &CertifyCounters) -> Value {
    object([
        ("certified", Value::from(c.certified)),
        ("refined", Value::from(c.refined)),
        ("retracked", Value::from(c.retracked)),
        ("failed", Value::from(c.failed)),
    ])
}

fn cache_stats_to_json(c: &CacheStats, resident: &[(pieri_core::Shape, usize, Duration)]) -> Value {
    object([
        ("hits", Value::from(c.hits)),
        ("misses", Value::from(c.misses)),
        ("shapes", Value::from(c.shapes)),
        ("evictions", Value::from(c.evictions)),
        ("resident_bytes", Value::from(c.resident_bytes)),
        ("restored", Value::from(c.restored)),
        ("store_recovered", Value::from(c.store_recovered)),
        (
            "resident",
            Value::Array(
                resident
                    .iter()
                    .map(|(shape, roots, build)| {
                        object([
                            ("m", Value::from(shape.m())),
                            ("p", Value::from(shape.p())),
                            ("q", Value::from(shape.q())),
                            ("roots", Value::from(*roots)),
                            ("build_ms", duration_ms(*build)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_num::seeded_rng;

    #[test]
    fn request_round_trips() {
        let sat = pieri_control::satellite_plant(1.0);
        let mut rng = seeded_rng(5);
        let reqs = [
            JobRequest::SolvePieri {
                m: 2,
                p: 2,
                q: 1,
                seed: 1234,
                certify: true,
            },
            JobRequest::PlacePoles {
                a: sat.a.clone(),
                b: sat.b.clone(),
                c: sat.c.clone(),
                q: 1,
                poles: pieri_control::conjugate_pole_set(5, &mut rng),
                seed: 42,
                certify: false,
            },
        ];
        for req in &reqs {
            let json = request_to_json(req);
            let text = json.serialize();
            let back = request_from_json(&minijson::parse(&text).unwrap()).unwrap();
            match (req, &back) {
                (
                    JobRequest::SolvePieri {
                        m,
                        p,
                        q,
                        seed,
                        certify,
                    },
                    JobRequest::SolvePieri {
                        m: m2,
                        p: p2,
                        q: q2,
                        seed: s2,
                        certify: c2,
                    },
                ) => {
                    assert_eq!((m, p, q, seed, certify), (m2, p2, q2, s2, c2));
                }
                (
                    JobRequest::PlacePoles { a, poles, seed, .. },
                    JobRequest::PlacePoles {
                        a: a2,
                        poles: p2,
                        seed: s2,
                        ..
                    },
                ) => {
                    assert_eq!(seed, s2);
                    assert_eq!(poles, p2, "poles survive bitwise");
                    for i in 0..a.rows() {
                        for j in 0..a.cols() {
                            assert_eq!(a[(i, j)], a2[(i, j)], "A[{i},{j}] bitwise");
                        }
                    }
                }
                _ => panic!("request kind changed in flight"),
            }
        }
    }

    #[test]
    fn malformed_matrices_are_wire_errors() {
        for text in [
            r#"{"type":"place_poles","a":[[1]],"b":[],"c":[],"q":0,"poles":[],"seed":1}"#,
            r#"{"type":"place_poles","a":[[[0,0],[1,1]],[[2,2]]],"b":[[[0,0]]],"c":[[[0,0]]],"q":0,"poles":[],"seed":1}"#,
            r#"{"type":"solve_pieri","m":2,"p":2,"q":0,"seed":-3}"#,
            r#"{"type":"warp"}"#,
        ] {
            let v = minijson::parse(text).unwrap();
            assert!(request_from_json(&v).is_err(), "{text}");
        }
    }

    #[test]
    fn pre_certification_results_still_decode() {
        // A PR-3/PR-4 server response: no `certificates`, no
        // `retracked`/`retrack_attempts` in the track block. A new
        // client must decode it with empty/zero defaults (rolling
        // upgrades, recorded payloads).
        let text = r#"{"solutions":1,"expected":1,"improper":0,"failed":0,
            "coeffs":[[[1.0,0.0]]],"compensators":[],
            "max_residual":1e-9,"cache_hit":true,"bundle_build_ms":0,
            "queue_wait_ms":1,"solve_ms":2,
            "track":{"converged":1,"diverged":0,"failed":0,
                     "total_steps":10,"total_newton_iters":20,
                     "total_ms":2,"max_path_ms":2}}"#;
        let back = result_from_json(&minijson::parse(text).unwrap()).unwrap();
        assert_eq!(back.solutions, 1);
        assert!(back.certificates.is_empty());
        assert_eq!(back.track.retracked, 0);
        assert_eq!(back.track.retrack_attempts, 0);
    }

    #[test]
    fn error_envelope_round_trips() {
        for e in [
            JobError::InvalidRequest("bad".into()),
            JobError::TooLarge {
                detail: "d too big".into(),
            },
            JobError::QueueFull,
            JobError::ShuttingDown,
            JobError::StartSystem("lost roots".into()),
            JobError::Internal("panic".into()),
        ] {
            let v = minijson::parse(&error_to_json(&e).serialize()).unwrap();
            let back = error_from_json(&v).unwrap();
            assert_eq!(back.kind(), e.kind());
            // Messages must be hop-stable: no kind-prefix stacking on
            // decode/re-encode round trips.
            assert_eq!(back.message(), e.message());
        }
    }
}
