//! Poison-recovering, rank-checked lock primitives for the service.
//!
//! Two failure modes are handled here, one per layer:
//!
//! **Poisoning.** The service's no-panic guarantee (`pieri-lint` rule
//! `no-panic-in-service`) has a second-order failure mode: a panic on
//! *any* thread holding one of our mutexes poisons it, and a
//! `lock().expect(…)` then converts every later request into a fresh
//! panic — one bad job becomes a permanent denial of service. Engine
//! workers already isolate job panics with `catch_unwind`, but cache
//! builds run caller-side and the queue/cache locks are shared; recovery
//! must live at the lock sites themselves. Recovery via
//! [`std::sync::PoisonError::into_inner`] is sound here because every
//! protected structure is valid after any partial update the panicking
//! thread could have made: the queue holds fully-constructed `Queued`
//! values (pushed or not), cache slots transition between complete
//! `SlotState`s, and the client's connection pool holds an `Option` that
//! is at worst `None`. Nothing is ever left half-written under a lock.
//!
//! **Deadlock.** The service has ten independent lock objects; nesting
//! them in inconsistent orders across threads deadlocks. Every lock is
//! therefore a [`RankedMutex`] carrying a `(name, rank)` pair from
//! [`rank`], and acquisition debug-asserts that the new rank is
//! strictly greater than every rank this thread already holds (tracked
//! in a thread-local stack). The *same* pairs appear in
//! `// lint:lock-rank(<name>, <N>)` annotations at each acquisition, so
//! the `lock-order` rule in `pieri-analyze` proves the global order
//! statically while the wrapper catches at runtime whatever the lint's
//! approximations miss. Release builds skip the assert but keep the
//! (cheap) stack bookkeeping.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex, MutexGuard};

/// The global lock order: ranks must strictly increase along every
/// nesting chain, so a lock may only be taken while holding locks of
/// *lower* rank. The reactor locks sit below the queue so an I/O
/// thread holding one may still submit into the engine; nothing above
/// the queue may reach back into a reactor lock.
pub(crate) mod rank {
    /// `reactor::ReactorShared.inbox` — freshly accepted connections
    /// handed to an I/O thread.
    pub(crate) const REACTOR_INBOX: u32 = 4;
    /// `reactor::ReactorShared.completions` — finished jobs on their
    /// way back to a reactor.
    pub(crate) const REACTOR_COMPLETIONS: u32 = 6;
    /// `engine::Shared.reaper` — dead-worker notifications for the
    /// supervisor. Below the queue: a dying worker's sentinel reports
    /// here with every other guard already released, and the supervisor
    /// takes the queue only after dropping this.
    pub(crate) const ENGINE_SUPERVISOR: u32 = 8;
    /// `engine::Shared.state` — the job queue.
    pub(crate) const ENGINE_QUEUE: u32 = 10;
    /// `engine::Shared.slots` — per-worker supervision slots (claimed
    /// job, generation, join handle). Above the queue: a worker claims
    /// its slot after popping, with the queue lock released.
    pub(crate) const ENGINE_WORKERS: u32 = 12;
    /// `cache::ShapeCache.slots` — the shape → slot map.
    pub(crate) const CACHE_SLOTS: u32 = 20;
    /// `cache::Slot.state` — one slot's build state.
    pub(crate) const CACHE_SLOT: u32 = 30;
    /// `engine::Engine.handles` — worker join handles (shutdown only).
    pub(crate) const ENGINE_HANDLES: u32 = 40;
    /// `http::Server.reactor_handles` — reactor join handles
    /// (shutdown only).
    pub(crate) const HTTP_ACCEPT: u32 = 50;
    /// `http::Client.conn` — the pooled client connection.
    pub(crate) const CLIENT_CONN: u32 = 60;
}

thread_local! {
    /// `(rank, name)` of every ranked guard this thread holds, in
    /// acquisition order.
    static HELD: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// A mutex with a name and a place in the global lock order.
pub(crate) struct RankedMutex<T> {
    name: &'static str,
    rank: u32,
    inner: Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// A new ranked mutex; `name` and `rank` must match the
    /// `lint:lock-rank` annotations at its acquisition sites.
    pub(crate) const fn new(name: &'static str, rank: u32, value: T) -> Self {
        RankedMutex {
            name,
            rank,
            inner: Mutex::new(value),
        }
    }

    /// Locks, recovering from poison, after debug-asserting that this
    /// acquisition respects the global rank order. The assert fires
    /// *before* locking, so a violation panics without poisoning
    /// anything.
    pub(crate) fn lock_recover(&self) -> RankedGuard<'_, T> {
        HELD.with(|held| {
            if let Some(&(top_rank, top_name)) = held.borrow().last() {
                debug_assert!(
                    self.rank > top_rank,
                    "lock-order violation: acquiring `{}` (rank {}) while holding \
                     `{}` (rank {}); ranks must strictly increase",
                    self.name,
                    self.rank,
                    top_name,
                    top_rank
                );
            }
        });
        let guard = lock_recover(&self.inner);
        HELD.with(|held| held.borrow_mut().push((self.rank, self.name)));
        RankedGuard {
            guard,
            entry: HeldEntry {
                rank: self.rank,
                name: self.name,
            },
        }
    }
}

/// The thread-local bookkeeping half of a [`RankedGuard`]: removes its
/// `(rank, name)` entry from [`HELD`] on drop. Guards can be dropped in
/// any order, so the *last matching* entry is removed, not the top.
pub(crate) struct HeldEntry {
    rank: u32,
    name: &'static str,
}

impl Drop for HeldEntry {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held
                .iter()
                .rposition(|&(r, n)| r == self.rank && n == self.name)
            {
                held.remove(pos);
            }
        });
    }
}

/// A guard from [`RankedMutex::lock_recover`]. Deliberately has no
/// `Drop` impl of its own so [`wait_recover`] can destructure it; the
/// field order releases the mutex first, then pops the held-rank entry.
pub(crate) struct RankedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    entry: HeldEntry,
}

impl<T> Deref for RankedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Locks a plain `mutex`, recovering the guard if a previous holder
/// panicked. The unranked primitive behind [`RankedMutex`]; prefer the
/// ranked wrapper for anything shared between service threads.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Waits on `condvar` with a ranked guard, recovering the reacquired
/// guard if the lock was poisoned while this thread slept. The guard's
/// held-rank entry stays on the stack across the wait: the lock is
/// reacquired before this returns, so from this thread's ordering
/// perspective it was never released — and while asleep the thread
/// acquires nothing.
pub(crate) fn wait_recover<'a, T>(
    condvar: &Condvar,
    guard: RankedGuard<'a, T>,
) -> RankedGuard<'a, T> {
    let RankedGuard { guard, entry } = guard;
    let guard = wait_recover_raw(condvar, guard);
    RankedGuard { guard, entry }
}

/// [`wait_recover`] for a plain [`MutexGuard`] — poison recovery only.
pub(crate) fn wait_recover_raw<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// [`wait_recover`] with a timeout: parks at most `timeout`, recovering
/// the reacquired guard from poison either way. The second return is
/// `true` when the wait timed out rather than being notified (spurious
/// wakeups report `false`, as with [`std::sync::Condvar`]).
pub(crate) fn wait_timeout_recover<'a, T>(
    condvar: &Condvar,
    guard: RankedGuard<'a, T>,
    timeout: std::time::Duration,
) -> (RankedGuard<'a, T>, bool) {
    let RankedGuard { guard, entry } = guard;
    let (guard, timed_out) = match condvar.wait_timeout(guard, timeout) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(poisoned) => {
            let (g, t) = poisoned.into_inner();
            (g, t.timed_out())
        }
    };
    (RankedGuard { guard, entry }, timed_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    fn held_snapshot() -> Vec<(u32, &'static str)> {
        HELD.with(|held| held.borrow().clone())
    }

    /// The regression the helpers exist for: before them, the service's
    /// lock sites used `.expect("… poisoned")`, so one panic while
    /// holding a shared lock turned every subsequent access — i.e. every
    /// subsequent request — into a panic. Recovery keeps serving.
    #[test]
    fn lock_recovers_after_holder_panics() {
        let counter = Arc::new(Mutex::new(0usize));
        let poisoner = {
            let counter = counter.clone();
            std::thread::spawn(move || {
                let mut n = counter.lock().expect("first lock");
                *n = 41;
                panic!("die while holding the lock");
            })
        };
        assert!(poisoner.join().is_err(), "thread panicked as arranged");
        assert!(counter.lock().is_err(), "mutex really is poisoned");

        let mut n = lock_recover(&counter);
        assert_eq!(*n, 41, "state from before the panic is intact");
        *n += 1;
        drop(n);
        assert_eq!(*lock_recover(&counter), 42, "lock keeps working");
    }

    /// Increasing-rank nesting passes, and the held stack empties when
    /// the guards go away — in either drop order.
    #[test]
    fn increasing_ranks_pass_and_stack_unwinds() {
        let low = RankedMutex::new("engine-queue", rank::ENGINE_QUEUE, 1u8);
        let high = RankedMutex::new("cache-slots", rank::CACHE_SLOTS, 2u8);
        {
            let g_low = low.lock_recover();
            let g_high = high.lock_recover();
            assert_eq!(
                held_snapshot(),
                vec![
                    (rank::ENGINE_QUEUE, "engine-queue"),
                    (rank::CACHE_SLOTS, "cache-slots")
                ]
            );
            // Non-LIFO release: drop the outer guard first.
            drop(g_low);
            assert_eq!(held_snapshot(), vec![(rank::CACHE_SLOTS, "cache-slots")]);
            drop(g_high);
        }
        assert!(held_snapshot().is_empty());
    }

    /// The acceptance case: the same `(name, rank)` pairs the
    /// `lock-order` lint reads make an inverted acquisition panic in
    /// debug builds — before the inner lock is taken, so nothing is
    /// poisoned.
    #[test]
    fn rank_inversion_debug_asserts() {
        let slots = RankedMutex::new("cache-slots", rank::CACHE_SLOTS, ());
        let queue = RankedMutex::new("engine-queue", rank::ENGINE_QUEUE, ());
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _outer = slots.lock_recover();
            let _inner = queue.lock_recover(); // 10 while holding 20
        }));
        if cfg!(debug_assertions) {
            let err = result.expect_err("inversion must panic in debug builds");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("lock-order violation"), "{msg}");
            assert!(msg.contains("engine-queue"), "{msg}");
        } else {
            assert!(result.is_ok(), "release builds skip the assert");
        }
        assert!(held_snapshot().is_empty(), "unwinding released every entry");
        // The locks themselves stay usable (the assert fired before
        // locking the inner mutex, and unwinding released the outer).
        drop(queue.lock_recover());
        drop(slots.lock_recover());
    }

    #[test]
    fn reacquiring_the_same_rank_debug_asserts() {
        let m = Arc::new(RankedMutex::new("cache-slot", rank::CACHE_SLOT, ()));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _a = m.lock_recover();
            let _b = m.lock_recover(); // would self-deadlock in release
        }));
        assert_eq!(result.is_err(), cfg!(debug_assertions));
        assert!(held_snapshot().is_empty());
    }

    /// `wait_recover` under contention: many waiters park on one ranked
    /// lock, each keeps its held-rank entry across the sleep, and every
    /// one observes the final value.
    #[test]
    fn wait_recover_under_contention() {
        const WAITERS: usize = 8;
        let shared = Arc::new((
            RankedMutex::new("engine-queue", rank::ENGINE_QUEUE, 0usize),
            Condvar::new(),
        ));
        let threads: Vec<_> = (0..WAITERS)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    let (lock, cv) = &*shared;
                    let mut g = lock.lock_recover();
                    while *g < WAITERS {
                        g = wait_recover(cv, g);
                        assert_eq!(
                            held_snapshot(),
                            vec![(rank::ENGINE_QUEUE, "engine-queue")],
                            "entry survives the wait"
                        );
                    }
                    *g
                })
            })
            .collect();
        for _ in 0..WAITERS {
            std::thread::sleep(Duration::from_millis(1));
            let (lock, cv) = &*shared;
            *lock.lock_recover() += 1;
            cv.notify_all();
        }
        for t in threads {
            assert_eq!(t.join().expect("waiter exits cleanly"), WAITERS);
        }
    }

    /// A waiter that panics *after* waking (holding the reacquired
    /// guard) poisons the mutex; other waiters recover and finish.
    #[test]
    fn wait_recover_survives_a_panicking_waiter() {
        let shared = Arc::new((
            RankedMutex::new("cache-slot", rank::CACHE_SLOT, (false, false)),
            Condvar::new(),
        ));
        let victim = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                let (lock, cv) = &*shared;
                let mut g = lock.lock_recover();
                while !g.0 {
                    g = wait_recover(cv, g);
                }
                panic!("die holding the reacquired guard");
            })
        };
        let survivor = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                let (lock, cv) = &*shared;
                let mut g = lock.lock_recover();
                while !g.1 {
                    g = wait_recover(cv, g);
                }
                assert!(g.0, "state from the panicking waiter is intact");
            })
        };
        {
            let (lock, cv) = &*shared;
            lock.lock_recover().0 = true;
            cv.notify_all();
        }
        assert!(victim.join().is_err(), "victim panicked as arranged");
        {
            let (lock, cv) = &*shared;
            // This lock itself exercises poison recovery.
            lock.lock_recover().1 = true;
            cv.notify_all();
        }
        survivor.join().expect("survivor recovered from the poison");
        assert!(held_snapshot().is_empty());
    }

    #[test]
    fn wait_recover_raw_on_poisoned_condvar_pair() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Poison the mutex first…
        {
            let pair = pair.clone();
            let t = std::thread::spawn(move || {
                let _g = pair.0.lock().expect("first lock");
                panic!("poison it");
            });
            assert!(t.join().is_err());
        }
        // …then prove a waiter still completes a wait/notify round-trip.
        let waker = {
            let pair = pair.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                *lock_recover(&pair.0) = true;
                pair.1.notify_all();
            })
        };
        let mut ready = lock_recover(&pair.0);
        while !*ready {
            ready = wait_recover_raw(&pair.1, ready);
        }
        waker.join().expect("waker exits cleanly");
    }
}
