//! Poison-recovering lock primitives for the service.
//!
//! The service's no-panic guarantee (`pieri-lint` rule
//! `no-panic-in-service`) has a second-order failure mode: a panic on
//! *any* thread holding one of our mutexes poisons it, and a
//! `lock().expect(…)` then converts every later request into a fresh
//! panic — one bad job becomes a permanent denial of service. Engine
//! workers already isolate job panics with `catch_unwind`, but cache
//! builds run caller-side and the queue/cache locks are shared; recovery
//! must live at the lock sites themselves.
//!
//! Recovery via [`PoisonError::into_inner`] is sound here because every
//! protected structure is valid after any partial update the panicking
//! thread could have made: the queue holds fully-constructed `Queued`
//! values (pushed or not), cache slots transition between complete
//! `SlotState`s, and the client's connection pool holds an `Option` that
//! is at worst `None`. Nothing is ever left half-written under a lock.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Waits on `condvar`, recovering the reacquired guard if the lock was
/// poisoned while this thread slept.
pub(crate) fn wait_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// The regression the helpers exist for: before them, the service's
    /// lock sites used `.expect("… poisoned")`, so one panic while
    /// holding a shared lock turned every subsequent access — i.e. every
    /// subsequent request — into a panic. Recovery keeps serving.
    #[test]
    fn lock_recovers_after_holder_panics() {
        let counter = Arc::new(Mutex::new(0usize));
        let poisoner = {
            let counter = counter.clone();
            std::thread::spawn(move || {
                let mut n = counter.lock().expect("first lock");
                *n = 41;
                panic!("die while holding the lock");
            })
        };
        assert!(poisoner.join().is_err(), "thread panicked as arranged");
        assert!(counter.lock().is_err(), "mutex really is poisoned");

        let mut n = lock_recover(&counter);
        assert_eq!(*n, 41, "state from before the panic is intact");
        *n += 1;
        drop(n);
        assert_eq!(*lock_recover(&counter), 42, "lock keeps working");
    }

    #[test]
    fn wait_recovers_on_poisoned_condvar_pair() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Poison the mutex first…
        {
            let pair = pair.clone();
            let t = std::thread::spawn(move || {
                let _g = pair.0.lock().expect("first lock");
                panic!("poison it");
            });
            assert!(t.join().is_err());
        }
        // …then prove a waiter still completes a wait/notify round-trip.
        let waker = {
            let pair = pair.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                *lock_recover(&pair.0) = true;
                pair.1.notify_all();
            })
        };
        let mut ready = lock_recover(&pair.0);
        while !*ready {
            ready = wait_recover(&pair.1, ready);
        }
        waker.join().expect("waker exits cleanly");
    }
}
