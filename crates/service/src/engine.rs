//! The job engine: a bounded queue feeding worker threads, with the
//! heavy shape-level work running on the global work-stealing pool.
//!
//! Flow of a job: `submit` validates against the admission limits and
//! enqueues (back-pressure: a full queue rejects with
//! [`JobError::QueueFull`], a blocking variant waits for space); a
//! worker pops it, resolves the shape through the [`ShapeCache`] — a
//! miss runs the Pieri tree on the pool, a hit costs nothing — and
//! tracks the `d(m,p,q)` continuation paths to the request's data.
//! Shutdown is graceful: intake closes immediately, queued and in-flight
//! jobs finish, workers exit, and every late submitter gets
//! [`JobError::ShuttingDown`].
//!
//! No panic crosses the boundary: execution is wrapped in
//! `catch_unwind` and surfaces as [`JobError::Internal`].
//!
//! Behind the workers sits a **supervisor** thread: each worker claims
//! its current job in a per-worker supervision slot (a heartbeat — the
//! claim carries a start timestamp), and the supervisor restarts
//! workers that die (a panic escaping the `catch_unwind` frame, e.g.
//! while holding the queue lock) or *wedge* (a claimed job running past
//! [`SupervisorConfig::stall_timeout`]), with capped exponential
//! backoff between a worker's consecutive failures. An orphaned job
//! whose solver never started is requeued at the front (replay-safe:
//! the computation is deterministic and had no observable effect yet);
//! one lost mid-execution is answered with a structured internal error.
//! Exactly-once answering is structural: whoever takes the claim out of
//! the slot — finishing worker or recovering supervisor — owns the
//! completion, so no job is ever answered twice or dropped.

use crate::cache::{panic_message, BuildMode, CacheLimits, CacheStats, ShapeCache};
use crate::job::{CompensatorAnswer, JobError, JobLimits, JobRequest, JobResult};
use crate::sync::{rank, RankedMutex};
use crossbeam::channel;
use pieri_certify::{Certificate, CertifyPolicy};
use pieri_control::{
    solve_dynamic_state_space_certified, solve_dynamic_state_space_with_start,
    verify_closed_loop_ss, StateSpace,
};
use pieri_core::Shape;
use pieri_num::{seeded_rng, Complex64};
use pieri_trace::{Counter, Gauge, Histogram, Registry};
use pieri_tracker::{CancelToken, TrackSettings};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads popping the job queue. Each worker tracks its
    /// job's continuation paths itself; cold-shape tree solves fan out
    /// on the global pool regardless of this number.
    pub workers: usize,
    /// Bounded queue capacity (back-pressure beyond this).
    pub queue_capacity: usize,
    /// Seed stream for the cache's generic start instances.
    pub bundle_seed: u64,
    /// Tracker settings used for bundle builds and continuations.
    pub settings: TrackSettings,
    /// Admission limits.
    pub limits: JobLimits,
    /// How cache misses run the Pieri tree.
    pub build_mode: BuildMode,
    /// Residency limits of the shape cache (LRU eviction beyond them).
    pub cache_limits: CacheLimits,
    /// Policy applied to jobs that request certification (the wire's
    /// `certify: true` flag). Jobs without the flag run exactly as
    /// before, whatever this is set to.
    pub certify: CertifyPolicy,
    /// Directory of the on-disk [`crate::store::BundleStore`]. When set,
    /// bundles persisted by earlier runs are loaded at startup (a
    /// restarted server answers its first request warm) and every
    /// freshly built bundle is saved best-effort. `None` disables
    /// persistence.
    pub bundle_store: Option<PathBuf>,
    /// Worker supervision: failure detection cadence, wedge threshold
    /// and restart backoff.
    pub supervisor: SupervisorConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: rayon::current_num_threads().max(1),
            queue_capacity: 64,
            bundle_seed: 0x5eed_cafe,
            settings: TrackSettings::default(),
            limits: JobLimits::default(),
            build_mode: BuildMode::TreeParallel,
            cache_limits: CacheLimits::default(),
            certify: CertifyPolicy::full(),
            bundle_store: None,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// How the engine's supervisor detects and replaces failed workers.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Wedge-scan cadence. Panicked workers are reported immediately
    /// (the dying thread notifies the supervisor); this bounds only how
    /// fast *stalls* are noticed.
    pub tick: Duration,
    /// A claimed job running longer than this marks its worker wedged:
    /// the worker is failed over and the job recovered. Must comfortably
    /// exceed the longest legitimate job (cold bundle builds included).
    pub stall_timeout: Duration,
    /// Restart backoff after a worker's first consecutive failure;
    /// doubles per further failure.
    pub backoff_base: Duration,
    /// Upper bound on the exponential restart backoff.
    pub backoff_cap: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            tick: Duration::from_millis(250),
            stall_timeout: Duration::from_secs(30),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

/// How a finished job reaches its submitter: a channel for the blocking
/// [`JobTicket`] API, a callback for the reactor's completion queue.
enum Done {
    Channel(channel::Sender<Result<JobResult, JobError>>),
    Callback(Box<dyn FnOnce(Result<JobResult, JobError>) + Send + 'static>),
}

struct Queued {
    req: JobRequest,
    enqueued: Instant,
    /// Cancelled explicitly (client gone) or via its embedded deadline;
    /// checked before dequeue-execution and between continuation paths.
    cancel: CancelToken,
    /// The request's trace id (0 = untraced). Spans emitted while this
    /// job runs — queue wait, the solve itself, tracker phases — carry
    /// it, so `/v1/trace/<id>` reassembles the whole lifecycle.
    trace_id: u64,
    done: Done,
}

struct QueueState {
    queue: VecDeque<Queued>,
    open: bool,
}

/// A worker's claim on the job it is currently running — the heartbeat
/// the supervisor reads. Created when the worker moves a popped job
/// into its slot; removed by whoever completes the job (the worker on
/// success, the supervisor on fail-over). Taking it out of the slot is
/// the exactly-once point: the taker owns `job.done`.
struct InFlight {
    job: Queued,
    /// When the claim was made; `started.elapsed()` past the stall
    /// timeout marks the worker wedged.
    started: Instant,
    /// Set once the solver is actually invoked. A claim recovered with
    /// this still `false` is replay-safe to requeue — the computation
    /// had no observable effect yet.
    executing: bool,
}

/// Supervision state of one worker index.
struct WorkerSlot {
    /// Bumped on every fail-over. A worker whose generation no longer
    /// matches its slot has been superseded: it must not touch the
    /// claim and must exit (a wedge that woke up late, for example).
    generation: u64,
    busy: Option<InFlight>,
    handle: Option<JoinHandle<()>>,
    /// Consecutive failures feeding the exponential restart backoff;
    /// reset by any successfully completed job.
    consecutive_failures: u32,
}

/// The supervisor's inbox: dying workers push `(index, generation)`
/// here from their panic sentinel, shutdown raises `stop`.
struct ReaperState {
    dead: Vec<(usize, u64)>,
    stop: bool,
}

/// The engine's instruments, registered on the shared [`Registry`].
///
/// Field order here **is** registration order, which is also the
/// snapshot read order — each bounded counter registers before the
/// counter that bounds it, and every increment site bumps the bound
/// *first* (`completed` before `expired`, `rejected` before `shed`,
/// `submitted` at admission long before `completed` at delivery). With
/// the registry's SeqCst contract that makes the `/v1/stats` ledger
/// invariants (`deadline_expired ≤ completed ≤ submitted`,
/// `shed ≤ rejected`) hold in *every* snapshot, not just at quiescence
/// — see the coherence notes in [`pieri_trace::metrics`].
struct EngineMetrics {
    /// Deadlines that fired *after* admission — while queued (the
    /// solver is never invoked) or between continuation paths.
    expired: Counter,
    completed: Counter,
    /// Load-shedding rejections at admission: a full queue on the
    /// non-blocking path, or a deadline already lapsed at submit.
    /// Subset of `rejected`.
    shed: Counter,
    rejected: Counter,
    submitted: Counter,
    certified: Counter,
    refined: Counter,
    retracked: Counter,
    cert_failed: Counter,
    /// Workers replaced after a panic or wedge.
    workers_restarted: Counter,
    /// Orphaned jobs requeued replay-safely by the supervisor.
    jobs_recovered: Counter,
    /// Jobs currently queued; set under the engine-queue lock at every
    /// push/pop site, so it never drifts from `queue.len()`.
    queue_depth: Gauge,
    /// Admission-to-dequeue latency of jobs a worker picked up.
    queue_wait_us: Histogram,
    /// Solver wall time of successfully completed jobs.
    solve_us: Histogram,
}

impl EngineMetrics {
    fn register_all(registry: &Registry) -> EngineMetrics {
        EngineMetrics {
            expired: registry.counter("pieri_jobs_deadline_expired_total"),
            completed: registry.counter("pieri_jobs_completed_total"),
            shed: registry.counter("pieri_jobs_shed_total"),
            rejected: registry.counter("pieri_jobs_rejected_total"),
            submitted: registry.counter("pieri_jobs_submitted_total"),
            certified: registry.counter("pieri_certify_certified_total"),
            refined: registry.counter("pieri_certify_refined_total"),
            retracked: registry.counter("pieri_certify_retracked_total"),
            cert_failed: registry.counter("pieri_certify_failed_total"),
            workers_restarted: registry.counter("pieri_workers_restarted_total"),
            jobs_recovered: registry.counter("pieri_jobs_recovered_total"),
            queue_depth: registry.gauge("pieri_queue_depth"),
            queue_wait_us: registry.histogram("pieri_job_queue_wait_us"),
            solve_us: registry.histogram("pieri_job_solve_us"),
        }
    }
}

struct Shared {
    state: RankedMutex<QueueState>,
    /// Workers wait here for jobs.
    jobs: Condvar,
    /// Blocking submitters wait here for queue space.
    space: Condvar,
    cache: ShapeCache,
    limits: JobLimits,
    settings: TrackSettings,
    capacity: usize,
    /// The single source of truth behind `/v1/stats` and `/v1/metrics`:
    /// every engine counter above lives here, the shape cache's
    /// counters are adopted into it, and the reactor registers its
    /// per-path HTTP metrics on it too.
    registry: Arc<Registry>,
    metrics: EngineMetrics,
    /// Engine start time (`/v1/stats` reports `uptime_secs` from it).
    started: Instant,
    certify_policy: CertifyPolicy,
    /// Per-worker supervision slots; indexed by worker id.
    slots: RankedMutex<Vec<WorkerSlot>>,
    /// Dead-worker notifications and the supervisor stop flag.
    reaper: RankedMutex<ReaperState>,
    /// The supervisor parks here between ticks; dying workers and
    /// shutdown notify it.
    reaper_cv: Condvar,
    supervisor: SupervisorConfig,
}

impl Shared {
    /// Rolls a certified job's outcome into the engine-wide counters.
    fn count_certificates(&self, certs: &[Certificate], retracked: usize) {
        let certified = certs.iter().filter(|c| c.is_certified()).count();
        let refined = certs.iter().filter(|c| c.refined).count();
        let failed = certs.iter().filter(|c| c.is_failed()).count();
        self.metrics.certified.add(certified as u64);
        self.metrics.refined.add(refined as u64);
        self.metrics.cert_failed.add(failed as u64);
        self.metrics.retracked.add(retracked as u64);
    }
}

/// Aggregate certification counters (the `/v1/stats` `certify` block).
///
/// These count certification **outcomes observed**, whether or not the
/// job ultimately shipped: a job with six certified solutions and two
/// failed ones is answered with an `uncertified` error, yet still adds
/// 6 to `certified` and 2 to `failed` — the counters describe what the
/// certifier saw, `completed`/`rejected` describe what jobs returned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertifyCounters {
    /// Solutions whose certificate came back `Certified`.
    pub certified: usize,
    /// Solutions polished by the double-double refiner.
    pub refined: usize,
    /// Paths that needed at least one re-track attempt.
    pub retracked: usize,
    /// Solutions whose certificate came back `Failed` (their jobs were
    /// answered with an `uncertified` error).
    pub failed: usize,
}

/// A handle to one submitted job; resolve it with [`JobTicket::wait`].
pub struct JobTicket {
    rx: channel::Receiver<Result<JobResult, JobError>>,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JobTicket")
    }
}

impl JobTicket {
    /// Blocks until the job finishes.
    pub fn wait(self) -> Result<JobResult, JobError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(JobError::Internal("worker disappeared".into())))
    }
}

/// Engine counters and gauges (the `/v1/stats` payload).
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Worker thread count.
    pub workers: usize,
    /// Jobs currently queued.
    pub queue_len: usize,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Jobs accepted so far.
    pub submitted: usize,
    /// Jobs finished (ok or error) so far.
    pub completed: usize,
    /// Submissions bounced by back-pressure or shutdown.
    pub rejected: usize,
    /// Load-shed rejections at admission (full queue on the reactor
    /// path, or deadline lapsed at submit) — a subset of `rejected`.
    pub shed: usize,
    /// Per-request deadlines that fired after admission: expired in the
    /// queue (solver untouched) or cancelled between continuation paths.
    pub deadline_expired: usize,
    /// Certification counters (certified/refined/retracked/failed).
    pub certify: CertifyCounters,
    /// Workers the supervisor replaced after a panic or wedge.
    pub workers_restarted: usize,
    /// Orphaned in-flight jobs the supervisor requeued replay-safely
    /// (their solver had not started when the worker died).
    pub jobs_recovered: usize,
    /// Time since the engine started.
    pub uptime: Duration,
    /// Shape-cache counters.
    pub cache: CacheStats,
}

/// The batch job engine. Create with [`Engine::start`], stop with
/// [`Engine::shutdown`] (also runs on drop).
pub struct Engine {
    shared: Arc<Shared>,
    workers: usize,
    handles: RankedMutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Starts the worker threads.
    ///
    /// # Panics
    /// Panics when `config.workers == 0` or `config.queue_capacity == 0`.
    pub fn start(config: EngineConfig) -> Engine {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.queue_capacity >= 1, "queue capacity must be ≥ 1");
        // Honour `PIERI_TRACE` on every engine start so any binary
        // embedding the service (examples, loadgen, operator tools)
        // records spans without code changes. A no-op when the
        // variable is unset or a recorder is already installed by the
        // harness; the metrics registry below is on regardless.
        if !pieri_trace::enabled() {
            pieri_trace::install_from_env();
        }
        let registry = Arc::new(Registry::new());
        let metrics = EngineMetrics::register_all(&registry);
        // Bundle builds inherit the re-track policy: a failed tree
        // path inside a shape build is a server-side defect, and a
        // bounded tightened retry is strictly better than losing a
        // root (which fails the whole build). Determinism holds —
        // retries only fire on paths that would otherwise fail, and
        // a disabled policy leaves the operator's settings alone.
        let cache = ShapeCache::with_limits(
            config.bundle_seed,
            config.certify.effective_settings(&config.settings),
            config.build_mode,
            config.cache_limits,
        )
        .with_store(config.bundle_store.as_deref());
        cache.register_metrics(&registry);
        let shared = Arc::new(Shared {
            state: RankedMutex::new(
                "engine-queue",
                rank::ENGINE_QUEUE,
                QueueState {
                    queue: VecDeque::new(),
                    open: true,
                },
            ),
            jobs: Condvar::new(),
            space: Condvar::new(),
            cache,
            limits: config.limits,
            settings: config.settings,
            capacity: config.queue_capacity,
            registry,
            metrics,
            started: Instant::now(),
            certify_policy: config.certify,
            slots: RankedMutex::new(
                "engine-workers",
                rank::ENGINE_WORKERS,
                (0..config.workers)
                    .map(|_| WorkerSlot {
                        generation: 0,
                        busy: None,
                        handle: None,
                        consecutive_failures: 0,
                    })
                    .collect(),
            ),
            reaper: RankedMutex::new(
                "engine-supervisor",
                rank::ENGINE_SUPERVISOR,
                ReaperState {
                    dead: Vec::new(),
                    stop: false,
                },
            ),
            reaper_cv: Condvar::new(),
            supervisor: config.supervisor,
        });
        for i in 0..config.workers {
            let handle = spawn_worker(&shared, i, 0)
                // lint:allow(no-panic-in-service) — startup-time
                // precondition, not a request path: if the OS cannot
                // spawn the fixed worker set, the process cannot
                // serve at all and should die loudly at boot.
                .expect("spawn worker");
            // lint:lock-rank(engine-workers, 12)
            shared.slots.lock_recover()[i].handle = Some(handle);
        }
        let supervisor = {
            let shared = shared.clone();
            // lint:allow(no-raw-thread-spawn) — the singleton
            // supervisor thread, created once at startup; it runs no
            // per-job compute, only failure detection and respawns.
            std::thread::Builder::new()
                .name("pieri-service-supervisor".into())
                .spawn(move || supervisor_loop(&shared))
                // lint:allow(no-panic-in-service) — startup-time
                // precondition, same argument as the worker spawns.
                .expect("spawn supervisor")
        };
        Engine {
            shared,
            workers: config.workers,
            handles: RankedMutex::new("engine-handles", rank::ENGINE_HANDLES, vec![supervisor]),
        }
    }

    /// Starts with the default configuration.
    pub fn with_defaults() -> Engine {
        Engine::start(EngineConfig::default())
    }

    /// Validates and enqueues a job; non-blocking back-pressure — a full
    /// queue returns [`JobError::QueueFull`] immediately.
    pub fn submit(&self, req: JobRequest) -> Result<JobTicket, JobError> {
        let (tx, rx) = channel::unbounded();
        self.enqueue(req, None, false, 0, Done::Channel(tx))?;
        Ok(JobTicket { rx })
    }

    /// Validates and enqueues a job, waiting for queue space when full.
    pub fn submit_blocking(&self, req: JobRequest) -> Result<JobTicket, JobError> {
        let (tx, rx) = channel::unbounded();
        self.enqueue(req, None, true, 0, Done::Channel(tx))?;
        Ok(JobTicket { rx })
    }

    /// [`Engine::submit`] with an absolute deadline: lapsed-at-submit
    /// sheds immediately, lapsed-in-queue answers without invoking the
    /// solver, lapsed-mid-execution stops the tracker at the next path
    /// boundary. The returned [`CancelToken`] cancels the job early
    /// (e.g. when the client connection goes away).
    pub fn submit_with_deadline(
        &self,
        req: JobRequest,
        deadline: Option<Instant>,
    ) -> Result<(JobTicket, CancelToken), JobError> {
        let (tx, rx) = channel::unbounded();
        let token = self.enqueue(req, deadline, false, 0, Done::Channel(tx))?;
        Ok((JobTicket { rx }, token))
    }

    /// Completion-callback admission for the reactor: never blocks, and
    /// never calls `on_done` when admission itself fails (the error
    /// comes back synchronously for the caller to render). On success
    /// `on_done` runs exactly once, on the worker thread that finished
    /// the job — callbacks must be cheap and non-blocking-ish (the
    /// reactor's pushes one completion and wakes an eventfd).
    ///
    /// `trace_id` (0 = untraced) tags the job's spans — queue wait,
    /// solve, tracker phases — so `/v1/trace/<id>` can reassemble the
    /// request's full lifecycle across threads.
    pub fn submit_async(
        &self,
        req: JobRequest,
        deadline: Option<Instant>,
        trace_id: u64,
        on_done: impl FnOnce(Result<JobResult, JobError>) + Send + 'static,
    ) -> Result<CancelToken, JobError> {
        self.enqueue(
            req,
            deadline,
            false,
            trace_id,
            Done::Callback(Box::new(on_done)),
        )
    }

    /// Convenience: blocking submit + wait.
    pub fn run(&self, req: JobRequest) -> Result<JobResult, JobError> {
        self.submit_blocking(req)?.wait()
    }

    fn enqueue(
        &self,
        req: JobRequest,
        deadline: Option<Instant>,
        block: bool,
        trace_id: u64,
        done: Done,
    ) -> Result<CancelToken, JobError> {
        if let Err(e) = req.validate(&self.shared.limits) {
            self.shared.metrics.rejected.inc();
            return Err(e);
        }
        // Deadline-aware admission control: work that cannot possibly
        // answer in time is shed here, before it costs a queue slot.
        // `rejected` first, `shed` second — the snapshot coherence
        // contract (see [`EngineMetrics`]) needs the superset bumped
        // before its subset.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.shared.metrics.rejected.inc();
            self.shared.metrics.shed.inc();
            return Err(JobError::DeadlineExceeded {
                detail: "deadline lapsed before admission".into(),
            });
        }
        let cancel = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        // lint:lock-rank(engine-queue, 10)
        let mut state = self.shared.state.lock_recover();
        loop {
            if !state.open {
                self.shared.metrics.rejected.inc();
                return Err(JobError::ShuttingDown);
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(Queued {
                    req,
                    enqueued: Instant::now(),
                    cancel: cancel.clone(),
                    trace_id,
                    done,
                });
                self.shared.metrics.submitted.inc();
                self.shared
                    .metrics
                    .queue_depth
                    .set(state.queue.len() as i64);
                self.shared.jobs.notify_one();
                return Ok(cancel);
            }
            if !block {
                self.shared.metrics.rejected.inc();
                self.shared.metrics.shed.inc();
                return Err(JobError::QueueFull);
            }
            state = crate::sync::wait_recover(&self.shared.space, state);
        }
    }

    /// One coherent counter snapshot: every field comes from a single
    /// registration-order read of the registry, so the ledger
    /// invariants (`deadline_expired ≤ completed ≤ submitted`,
    /// `shed ≤ rejected`) hold in the returned value even while
    /// workers are mid-update.
    pub fn stats(&self) -> EngineStats {
        let snap = self.shared.registry.snapshot();
        let count = |name: &str| snap.counter(name) as usize;
        // lint:lock-rank(engine-queue, 10)
        let queue_len = self.shared.state.lock_recover().queue.len();
        EngineStats {
            workers: self.workers,
            queue_len,
            queue_capacity: self.shared.capacity,
            submitted: count("pieri_jobs_submitted_total"),
            completed: count("pieri_jobs_completed_total"),
            rejected: count("pieri_jobs_rejected_total"),
            shed: count("pieri_jobs_shed_total"),
            deadline_expired: count("pieri_jobs_deadline_expired_total"),
            certify: CertifyCounters {
                certified: count("pieri_certify_certified_total"),
                refined: count("pieri_certify_refined_total"),
                retracked: count("pieri_certify_retracked_total"),
                failed: count("pieri_certify_failed_total"),
            },
            workers_restarted: count("pieri_workers_restarted_total"),
            jobs_recovered: count("pieri_jobs_recovered_total"),
            uptime: self.shared.started.elapsed(),
            cache: self.shared.cache.stats_from(&snap),
        }
    }

    /// The metrics registry — the single source of truth behind
    /// `/v1/stats` and `/v1/metrics`. The HTTP layer registers its
    /// per-path counters and latency histograms here, so one snapshot
    /// covers the whole service.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Time since this engine started (drives `uptime_secs` in
    /// `/healthz` and `/v1/stats` without a full registry snapshot).
    pub fn uptime(&self) -> Duration {
        self.shared.started.elapsed()
    }

    /// The shape cache (read access for diagnostics).
    pub fn cache(&self) -> &ShapeCache {
        &self.shared.cache
    }

    /// The bounded queue's capacity (the HTTP batch endpoint caps batch
    /// size at this).
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Graceful shutdown: closes intake, lets queued and in-flight jobs
    /// finish, retires the supervisor, joins the workers, and answers
    /// anything left orphaned by workers that died with no supervisor
    /// left to replace them. Idempotent.
    pub fn shutdown(&self) {
        {
            // lint:lock-rank(engine-queue, 10)
            let mut state = self.shared.state.lock_recover();
            state.open = false;
            self.shared.jobs.notify_all();
            self.shared.space.notify_all();
        }
        // Stop the supervisor first so it cannot spawn replacement
        // workers (or requeue orphans) while shutdown drains.
        {
            // lint:lock-rank(engine-supervisor, 8)
            let mut reaper = self.shared.reaper.lock_recover();
            reaper.stop = true;
            self.shared.reaper_cv.notify_all();
        }
        // lint:lock-rank(engine-handles, 40)
        let handles = std::mem::take(&mut *self.handles.lock_recover());
        for h in handles {
            let _ = h.join();
        }
        // Join the current worker generation. Handles of failed-over
        // (wedged) workers were detached at fail-over and are not here.
        let workers: Vec<JoinHandle<()>> = {
            // lint:lock-rank(engine-workers, 12)
            let mut slots = self.shared.slots.lock_recover();
            slots.iter_mut().filter_map(|s| s.handle.take()).collect()
        };
        for h in workers {
            let _ = h.join();
        }
        // Workers drain the queue before exiting, so normally both of
        // these are empty. They are populated only when workers died
        // during shutdown (after the supervisor stopped): their queued
        // jobs and orphaned claims still get a structured answer rather
        // than a hang.
        let leftovers: Vec<Queued> = {
            // lint:lock-rank(engine-queue, 10)
            let mut state = self.shared.state.lock_recover();
            let drained = state.queue.drain(..).collect();
            self.shared.metrics.queue_depth.set(0);
            drained
        };
        let orphans: Vec<InFlight> = {
            // lint:lock-rank(engine-workers, 12)
            let mut slots = self.shared.slots.lock_recover();
            slots.iter_mut().filter_map(|s| s.busy.take()).collect()
        };
        for job in leftovers
            .into_iter()
            .chain(orphans.into_iter().map(|o| o.job))
        {
            self.shared.metrics.completed.inc();
            deliver(job.done, Err(JobError::ShuttingDown));
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn deliver(done: Done, result: Result<JobResult, JobError>) {
    match done {
        // A dropped ticket (client gave up) is fine; ignore send
        // errors.
        Done::Channel(tx) => {
            let _ = tx.send(result);
        }
        Done::Callback(cb) => cb(result),
    }
}

fn spawn_worker(
    shared: &Arc<Shared>,
    id: usize,
    generation: u64,
) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    // lint:allow(no-raw-thread-spawn) — these *are* the engine's
    // bounded worker set (initial spawns and supervised replacements);
    // all per-job compute they run goes through the pool.
    std::thread::Builder::new()
        .name(format!("pieri-service-worker-{id}"))
        .spawn(move || worker_loop(&shared, id, generation))
}

/// Reports a worker death to the supervisor. Declared as the *first*
/// local of `worker_loop`, so it drops last: by the time the report is
/// filed, every guard the dying frame held has been released (nothing
/// is reported while holding a lock, and the poisoned queue mutex is
/// already droppped — recovery at the other lock sites handles it).
struct Sentinel {
    shared: Arc<Shared>,
    id: usize,
    generation: u64,
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // lint:lock-rank(engine-supervisor, 8)
            let mut reaper = self.shared.reaper.lock_recover();
            reaper.dead.push((self.id, self.generation));
            self.shared.reaper_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, id: usize, generation: u64) {
    let _sentinel = Sentinel {
        shared: Arc::clone(shared),
        id,
        generation,
    };
    loop {
        let job = {
            // lint:lock-rank(engine-queue, 10)
            let mut state = shared.state.lock_recover();
            // chaos: die while holding the queue lock — poisons the
            // mutex, which every other lock site must recover from.
            crate::chaos::panic_site("worker.panic");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    shared.metrics.queue_depth.set(state.queue.len() as i64);
                    shared.space.notify_one();
                    break Some(job);
                }
                if !state.open {
                    break None;
                }
                state = crate::sync::wait_recover(&shared.jobs, state);
            }
        };
        let Some(job) = job else { return };
        // Claim the job in this worker's supervision slot. The clones
        // keep the worker running off its own copies while the slot
        // holds the authoritative one (the supervisor requeues from
        // there on fail-over).
        let req = job.req.clone();
        let cancel = job.cancel.clone();
        let enqueued = job.enqueued;
        let trace_id = job.trace_id;
        let unclaimed = {
            // lint:lock-rank(engine-workers, 12)
            let mut slots = shared.slots.lock_recover();
            let slot = &mut slots[id];
            if slot.generation == generation {
                slot.busy = Some(InFlight {
                    job,
                    started: Instant::now(),
                    executing: false,
                });
                None
            } else {
                Some(job)
            }
        };
        if let Some(job) = unclaimed {
            // Superseded: the supervisor failed this generation over
            // (e.g. a wedge that cleared late). Hand the job back
            // untouched and bow out — the replacement worker owns this
            // slot now.
            // lint:lock-rank(engine-queue, 10)
            let mut state = shared.state.lock_recover();
            state.queue.push_front(job);
            shared.metrics.queue_depth.set(state.queue.len() as i64);
            shared.jobs.notify_one();
            return;
        }
        // chaos: die after claiming — the supervisor must requeue the
        // claim replay-safely (its solver never ran).
        crate::chaos::panic_site("worker.panic.job");
        if let Some(hit) = crate::chaos::fault("worker.wedge") {
            std::thread::sleep(Duration::from_millis(hit.param_or(500)));
        }
        if let Some(hit) = crate::chaos::fault("worker.delay") {
            std::thread::sleep(Duration::from_millis(hit.param_or(10)));
        }
        let queue_wait = enqueued.elapsed();
        shared.metrics.queue_wait_us.record_duration(queue_wait);
        // The queue wait crosses threads (stamped at enqueue, observed
        // here), so it is recorded as an already-closed span rather
        // than an RAII guard.
        crate::trace::note_queue_wait(trace_id, queue_wait);
        // Expired-before-dequeue: the deadline (or an explicit cancel)
        // fired while the job sat in the queue — answer structurally
        // without ever invoking the solver.
        let result = if cancel.is_cancelled() {
            Err(JobError::DeadlineExceeded {
                detail: format!(
                    "deadline lapsed after {:.1} ms in the queue; solver not invoked",
                    queue_wait.as_secs_f64() * 1e3
                ),
            })
        } else {
            // Mark the claim executing; if the slot is no longer ours
            // the supervisor failed us over while we stalled above and
            // the job belongs to the recovery path now.
            let ours = {
                // lint:lock-rank(engine-workers, 12)
                let mut slots = shared.slots.lock_recover();
                let slot = &mut slots[id];
                slot.generation == generation
                    && match slot.busy.as_mut() {
                        Some(busy) => {
                            busy.executing = true;
                            true
                        }
                        None => false,
                    }
            };
            if !ours {
                return;
            }
            // The cancel scope makes the token visible to the
            // continuation drivers, which consult it between paths.
            // The job scope sets this thread's current trace id for
            // the duration (tracker spans inherit it) and wraps the
            // solve in a "track" span.
            let _span = crate::trace::job_span(trace_id);
            pieri_tracker::cancel::scope(&cancel, || execute(shared, &req, queue_wait))
        };
        // Completion: take the claim back out of the slot. Whoever
        // takes it answers; if the supervisor already did (we were
        // declared wedged mid-execution), this thread is a ghost and
        // its result is discarded — the client was already answered.
        let done = {
            // lint:lock-rank(engine-workers, 12)
            let mut slots = shared.slots.lock_recover();
            let slot = &mut slots[id];
            if slot.generation == generation {
                slot.consecutive_failures = 0;
                slot.busy.take().map(|inflight| inflight.job.done)
            } else {
                None
            }
        };
        let Some(done) = done else { return };
        if let Ok(res) = &result {
            shared.metrics.solve_us.record_duration(res.solve_time);
        }
        // `completed` before `expired`: the snapshot coherence contract
        // (see [`EngineMetrics`]) needs the bounding counter bumped
        // first for `deadline_expired ≤ completed` to hold in every
        // snapshot.
        shared.metrics.completed.inc();
        if matches!(result, Err(JobError::DeadlineExceeded { .. })) {
            shared.metrics.expired.inc();
        }
        deliver(done, result);
    }
}

fn supervisor_loop(shared: &Arc<Shared>) {
    loop {
        let dead: Vec<(usize, u64)> = {
            // lint:lock-rank(engine-supervisor, 8)
            let mut reaper = shared.reaper.lock_recover();
            if reaper.dead.is_empty() && !reaper.stop {
                let (g, _timed_out) = crate::sync::wait_timeout_recover(
                    &shared.reaper_cv,
                    reaper,
                    shared.supervisor.tick,
                );
                reaper = g;
            }
            if reaper.stop {
                return;
            }
            std::mem::take(&mut reaper.dead)
        };
        for (id, generation) in dead {
            restart_worker(shared, id, generation);
        }
        // Wedge scan: any claimed job running past the stall timeout
        // marks its worker for fail-over. The per-job claim timestamp
        // is the heartbeat — no cooperation from the wedged thread is
        // needed.
        let now = Instant::now();
        let stalled: Vec<(usize, u64)> = {
            // lint:lock-rank(engine-workers, 12)
            let slots = shared.slots.lock_recover();
            slots
                .iter()
                .enumerate()
                .filter(|(_, s)| {
                    s.busy.as_ref().is_some_and(|b| {
                        now.duration_since(b.started) > shared.supervisor.stall_timeout
                    })
                })
                .map(|(id, s)| (id, s.generation))
                .collect()
        };
        for (id, generation) in stalled {
            restart_worker(shared, id, generation);
        }
    }
}

/// Fails over worker `id` at `generation`: retires the generation,
/// recovers its claimed job (requeue or shed), and spawns the
/// replacement after the backoff. Stale generations are ignored, so a
/// panic report racing a wedge scan acts once.
fn restart_worker(shared: &Arc<Shared>, id: usize, generation: u64) {
    let (orphan, failures) = {
        // lint:lock-rank(engine-workers, 12)
        let mut slots = shared.slots.lock_recover();
        let slot = &mut slots[id];
        if slot.generation != generation {
            return;
        }
        slot.generation += 1;
        slot.consecutive_failures += 1;
        // A wedged thread may never return; detach its handle rather
        // than ever joining it. (A panicked thread is already gone.)
        drop(slot.handle.take());
        (slot.busy.take(), slot.consecutive_failures)
    };
    if let Some(inflight) = orphan {
        recover_inflight(shared, inflight);
    }
    // Capped exponential backoff between one worker's consecutive
    // failures, so a deterministic crasher cannot hot-loop the spawn
    // path. The supervisor sleeping here also slows other restarts
    // down — intentional: a panic storm should throttle the engine,
    // not race it.
    let backoff = backoff_delay(&shared.supervisor, failures);
    if !backoff.is_zero() {
        std::thread::sleep(backoff);
    }
    shared.metrics.workers_restarted.inc();
    match spawn_worker(shared, id, generation + 1) {
        Ok(handle) => {
            // lint:lock-rank(engine-workers, 12)
            shared.slots.lock_recover()[id].handle = Some(handle);
        }
        Err(_) => {
            // Spawn failure (resource exhaustion): file the slot as
            // dead again so the next tick retries with more backoff.
            // lint:lock-rank(engine-supervisor, 8)
            let mut reaper = shared.reaper.lock_recover();
            reaper.dead.push((id, generation + 1));
        }
    }
}

/// Completes or requeues a claim recovered from a failed worker.
fn recover_inflight(shared: &Arc<Shared>, inflight: InFlight) {
    let InFlight { job, executing, .. } = inflight;
    if job.cancel.is_cancelled() {
        // `completed` before `expired` — same coherence-contract
        // ordering as the worker's completion path.
        shared.metrics.completed.inc();
        shared.metrics.expired.inc();
        deliver(
            job.done,
            Err(JobError::DeadlineExceeded {
                detail: "deadline lapsed while the job was recovered from a failed worker".into(),
            }),
        );
    } else if executing {
        // The solver was already running when the worker died or
        // wedged. Re-running would be answer-deterministic, but a job
        // that wedges its worker would then wedge every replacement —
        // shed it with a structured error instead.
        shared.metrics.completed.inc();
        deliver(
            job.done,
            Err(JobError::Internal(
                "worker failed mid-execution; job shed during fail-over".into(),
            )),
        );
    } else {
        // The solver never started: requeue at the front, replay-safe.
        // The transient over-capacity this may cause is deliberate —
        // recovered work must not be lost to a momentarily full queue.
        shared.metrics.jobs_recovered.inc();
        // lint:lock-rank(engine-queue, 10)
        let mut state = shared.state.lock_recover();
        state.queue.push_front(job);
        shared.metrics.queue_depth.set(state.queue.len() as i64);
        shared.jobs.notify_one();
    }
}

fn backoff_delay(config: &SupervisorConfig, failures: u32) -> Duration {
    let shift = failures.saturating_sub(1).min(16);
    config
        .backoff_base
        .saturating_mul(1u32 << shift)
        .min(config.backoff_cap)
}

/// Runs one validated job; never panics across this frame.
fn execute(shared: &Shared, req: &JobRequest, queue_wait: Duration) -> Result<JobResult, JobError> {
    catch_unwind(AssertUnwindSafe(|| run_job(shared, req, queue_wait)))
        .unwrap_or_else(|payload| Err(JobError::Internal(panic_message(&payload))))
}

/// A certified job whose continuation left numerically failed paths (even
/// after bounded re-tracking) or whose solutions failed their Newton
/// certificates is answered with a structured error, not a partial
/// answer: with certification requested, "whatever Newton converged to"
/// is not an acceptable response.
fn require_certified(certs: &[Certificate], failed_paths: usize) -> Result<(), JobError> {
    let failed_certs = certs.iter().filter(|c| c.is_failed()).count();
    if failed_paths > 0 || failed_certs > 0 {
        return Err(JobError::Uncertified {
            detail: format!(
                "{failed_paths} path(s) failed numerically after bounded re-tracking; \
                 {failed_certs} solution(s) failed the Newton certificate"
            ),
        });
    }
    Ok(())
}

/// A continuation the cancel token stopped at a path boundary is
/// abandoned work: the partial solution set is withheld and the job
/// answers with the structured deadline error (mirroring the queued
/// case — either the client gets the whole answer or a clean error).
fn reject_cancelled(cont: &pieri_core::InstanceContinuation) -> Result<(), JobError> {
    if cont.cancelled {
        return Err(JobError::DeadlineExceeded {
            detail: format!(
                "deadline lapsed mid-execution; stopped at a path boundary \
                 after {} path(s), partial results withheld",
                cont.stats.total()
            ),
        });
    }
    Ok(())
}

fn run_job(shared: &Shared, req: &JobRequest, queue_wait: Duration) -> Result<JobResult, JobError> {
    let (m, p, q) = req.shape_dims();
    let shape = Shape::new(m, p, q);
    let (bundle, cache_hit) = shared.cache.get_or_build(&shape)?;
    let bundle_build = if cache_hit {
        Duration::ZERO
    } else {
        bundle.build_time()
    };
    let certify = req.certify();
    let policy = shared.certify_policy;
    let t0 = Instant::now();

    let mut result = match req {
        JobRequest::SolvePieri { seed, .. } => {
            let mut rng = seeded_rng(*seed);
            let target = pieri_core::PieriProblem::random(shape.clone(), &mut rng);
            let cont = if certify {
                bundle.continue_to_certified(&target, &shared.settings, &policy)
            } else {
                bundle.continue_to(&target, &shared.settings)
            };
            reject_cancelled(&cont)?;
            if certify {
                shared.count_certificates(&cont.certificates, cont.stats.retracked);
                require_certified(&cont.certificates, cont.failed)?;
            }
            let max_residual = cont
                .maps
                .iter()
                .map(|map| map.max_residual(&target))
                .fold(0.0, f64::max);
            JobResult {
                solutions: cont.maps.len(),
                improper: cont.diverged,
                failed: cont.failed,
                coeffs: cont.coeffs,
                compensators: Vec::new(),
                certificates: cont.certificates,
                max_residual,
                track: cont.stats,
                ..JobResult::default()
            }
        }
        JobRequest::PlacePoles {
            a,
            b,
            c,
            q,
            poles,
            seed,
            ..
        } => {
            let ss = StateSpace::new(a.clone(), b.clone(), c.clone());
            let mut rng = seeded_rng(*seed);
            let (comps, cont, _) = if certify {
                solve_dynamic_state_space_certified(
                    &ss,
                    *q,
                    poles,
                    &mut rng,
                    &bundle,
                    &shared.settings,
                    &policy,
                )
            } else {
                solve_dynamic_state_space_with_start(
                    &ss,
                    *q,
                    poles,
                    &mut rng,
                    &bundle,
                    &shared.settings,
                )
            };
            reject_cancelled(&cont)?;
            if certify {
                shared.count_certificates(&cont.certificates, cont.stats.retracked);
                require_certified(&cont.certificates, cont.failed)?;
            }
            let mut max_residual: f64 = 0.0;
            let compensators = comps
                .iter()
                .zip(cont.maps.iter())
                .map(|(comp, map)| {
                    let (_, residual) = verify_closed_loop_ss(&ss, map, poles);
                    max_residual = max_residual.max(residual);
                    CompensatorAnswer {
                        u_coeffs: comp.u().coeffs().to_vec(),
                        v_coeffs: comp.v().coeffs().to_vec(),
                        residual,
                        proper: comp.gain_at(Complex64::ZERO).is_some(),
                    }
                })
                .collect();
            JobResult {
                solutions: cont.maps.len(),
                improper: cont.diverged,
                failed: cont.failed,
                coeffs: cont.coeffs,
                compensators,
                certificates: cont.certificates,
                max_residual,
                track: cont.stats,
                ..JobResult::default()
            }
        }
    };
    // The bundle already knows d(m,p,q) — never rebuild the poset here.
    result.expected = bundle.root_count() as u128;
    result.cache_hit = cache_hit;
    result.bundle_build = bundle_build;
    result.queue_wait = queue_wait;
    result.solve_time = t0.elapsed();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine(workers: usize, capacity: usize) -> Engine {
        Engine::start(EngineConfig {
            workers,
            queue_capacity: capacity,
            build_mode: BuildMode::Sequential,
            ..EngineConfig::default()
        })
    }

    fn solve_req(seed: u64) -> JobRequest {
        JobRequest::SolvePieri {
            m: 2,
            p: 2,
            q: 0,
            seed,
            certify: false,
        }
    }

    #[test]
    fn solve_job_round_trips_and_caches() {
        let engine = small_engine(2, 8);
        let cold = engine.run(solve_req(11)).unwrap();
        assert_eq!(cold.solutions, 2);
        assert_eq!(cold.expected, 2);
        assert!(!cold.cache_hit);
        assert!(cold.bundle_build > Duration::ZERO);
        assert!(
            cold.max_residual < 1e-7,
            "residual {:.2e}",
            cold.max_residual
        );

        let warm = engine.run(solve_req(11)).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.bundle_build, Duration::ZERO);
        assert_eq!(warm.coeffs, cold.coeffs, "same seed → same bits");
        assert_eq!(warm.track.total(), 2, "only d(2,2,0) paths tracked");
        engine.shutdown();
    }

    #[test]
    fn invalid_jobs_are_rejected_at_submit() {
        let engine = small_engine(1, 4);
        let err = engine
            .submit(JobRequest::SolvePieri {
                m: 0,
                p: 1,
                q: 0,
                seed: 0,
                certify: false,
            })
            .unwrap_err();
        assert_eq!(err.kind(), "invalid_request");
        assert_eq!(engine.stats().rejected, 1);
    }

    #[test]
    fn queue_full_backpressure() {
        // One worker, capacity 1: the worker occupies itself with the
        // first job (a cold solve), the queue holds the second, and the
        // third non-blocking submit must bounce.
        let engine = small_engine(1, 1);
        let t1 = engine.submit(solve_req(1)).unwrap();
        let mut bounced = false;
        let mut tickets = vec![t1];
        for seed in 2..50 {
            match engine.submit(solve_req(seed)) {
                Ok(t) => tickets.push(t),
                Err(JobError::QueueFull) => {
                    bounced = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(bounced, "bounded queue must eventually reject");
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_then_rejects() {
        let engine = small_engine(1, 8);
        let tickets: Vec<_> = (0..3)
            .map(|seed| engine.submit(solve_req(seed)).unwrap())
            .collect();
        engine.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "queued jobs finish on shutdown");
        }
        assert_eq!(
            engine.submit(solve_req(99)).unwrap_err(),
            JobError::ShuttingDown
        );
    }

    #[test]
    fn place_poles_job_places_the_satellite() {
        let engine = small_engine(2, 8);
        let sat = pieri_control::satellite_plant(1.0);
        let mut rng = seeded_rng(77);
        let poles = pieri_control::conjugate_pole_set(5, &mut rng);
        let req = JobRequest::PlacePoles {
            a: sat.a.clone(),
            b: sat.b.clone(),
            c: sat.c.clone(),
            q: 1,
            poles,
            seed: 40,
            certify: false,
        };
        let res = engine.run(req).unwrap();
        assert_eq!(res.expected, 8, "d(2,2,1) = 8");
        assert_eq!(res.solutions, 8);
        assert_eq!(res.compensators.len(), 8);
        assert!(res.max_residual < 1e-6, "residual {:.2e}", res.max_residual);
        engine.shutdown();
    }
}
