//! Typed job requests, results and structured errors.
//!
//! This is the service's trust boundary: everything a client can send is
//! validated here *before* it reaches the numeric layers, whose
//! preconditions are enforced with panics (they are programming errors
//! there, input errors here). No panic crosses a job boundary — the
//! engine additionally wraps execution in `catch_unwind` as a backstop,
//! surfacing anything that slips through as [`JobError::Internal`].

use pieri_certify::Certificate;
use pieri_core::root_count;
use pieri_linalg::CMat;
use pieri_num::Complex64;
use pieri_tracker::TrackStats;
use std::fmt;
use std::time::Duration;

/// Admission limits, part of the engine configuration: they bound the
/// combinatorial size of a job so one request cannot monopolise the
/// server (d(m,p,q) grows exponentially).
#[derive(Debug, Clone, Copy)]
pub struct JobLimits {
    /// Largest admissible root count `d(m,p,q)`.
    pub max_roots: u128,
    /// Largest admissible number of interpolation conditions
    /// `n = mp + q(m+p)`.
    pub max_conditions: usize,
}

impl Default for JobLimits {
    fn default() -> Self {
        JobLimits {
            max_roots: 2_000,
            max_conditions: 24,
        }
    }
}

/// A pole-placement or raw-Pieri job.
#[derive(Debug, Clone)]
pub enum JobRequest {
    /// Solve a generic random Pieri instance of shape `(m, p, q)` seeded
    /// by `seed` — the paper's Table III/IV workload, useful for warming
    /// a shape and for benchmarking.
    SolvePieri {
        /// Number of inputs.
        m: usize,
        /// Number of outputs.
        p: usize,
        /// Compensator degree.
        q: usize,
        /// Instance seed (same seed → same instance → same answer).
        seed: u64,
        /// Request a-posteriori certification: re-track failed paths,
        /// certify every solution and double-double-refine it; any
        /// uncertifiable solution fails the job with a structured
        /// [`JobError::Uncertified`] instead of silently shipping.
        certify: bool,
    },
    /// Place the closed-loop poles of the state-space plant
    /// `ẋ = Ax + Bu, y = Cx` with a degree-`q` compensator: all
    /// `d(m,p,q)` feedback laws placing `n° + q` prescribed poles.
    PlacePoles {
        /// State matrix (`n° × n°`).
        a: CMat,
        /// Input matrix (`n° × m`).
        b: CMat,
        /// Output matrix (`p × n°`).
        c: CMat,
        /// Compensator degree (0 = static output feedback).
        q: usize,
        /// The `n° + q` prescribed closed-loop poles.
        poles: Vec<Complex64>,
        /// Seed for the request's randomisation (coordinate rotation,
        /// gamma, padding conditions) — same seed, same compensators.
        seed: u64,
        /// Request a-posteriori certification (see
        /// [`JobRequest::SolvePieri::certify`]); for pole placement the
        /// certificate additionally carries the closed-loop pole
        /// residual against the requested poles.
        certify: bool,
    },
}

impl JobRequest {
    /// The shape `(m, p, q)` this job resolves to, unvalidated.
    pub fn shape_dims(&self) -> (usize, usize, usize) {
        match self {
            JobRequest::SolvePieri { m, p, q, .. } => (*m, *p, *q),
            JobRequest::PlacePoles { b, c, q, .. } => (b.cols(), c.rows(), *q),
        }
    }

    /// Whether the request asked for certification.
    pub fn certify(&self) -> bool {
        match self {
            JobRequest::SolvePieri { certify, .. } | JobRequest::PlacePoles { certify, .. } => {
                *certify
            }
        }
    }

    /// Full validation against `limits`; everything the solvers would
    /// panic on must be caught here.
    pub fn validate(&self, limits: &JobLimits) -> Result<(), JobError> {
        let (m, p, q) = self.shape_dims();
        if m == 0 || p == 0 {
            return Err(JobError::InvalidRequest(
                "need at least one input (m ≥ 1) and one output (p ≥ 1)".into(),
            ));
        }
        // The wire format carries seeds as IEEE doubles, exact only
        // below 2⁵³. Rejecting larger seeds everywhere (not just at
        // decode) keeps the in-process and HTTP paths answering
        // identically and makes silent rounding impossible: any seed
        // ≥ 2⁵³ errors rather than running with a perturbed value.
        let seed = match self {
            JobRequest::SolvePieri { seed, .. } | JobRequest::PlacePoles { seed, .. } => *seed,
        };
        if seed >= (1 << 53) {
            return Err(JobError::InvalidRequest(
                "seed must be below 2^53 (exact in the JSON wire format)".into(),
            ));
        }
        // Bound each dimension before any arithmetic: the wire accepts
        // integers up to 2⁵³, so `m*p` could otherwise wrap in release
        // builds and sail past the limits. Since `n ≥ m`, `n ≥ p` and
        // `n ≥ 2q` (with m, p ≥ 1), any dimension beyond
        // `max_conditions` already implies an oversized job — and after
        // this check the exact `n` below cannot overflow.
        if m > limits.max_conditions || p > limits.max_conditions || q > limits.max_conditions {
            return Err(JobError::TooLarge {
                detail: format!(
                    "dimensions ({m},{p},{q}) exceed the condition limit {}",
                    limits.max_conditions
                ),
            });
        }
        let n = m * p + q * (m + p);
        if n > limits.max_conditions {
            return Err(JobError::TooLarge {
                detail: format!(
                    "n = mp + q(m+p) = {n} conditions exceeds the limit {}",
                    limits.max_conditions
                ),
            });
        }
        let roots = root_count(m, p, q);
        if roots > limits.max_roots {
            return Err(JobError::TooLarge {
                detail: format!(
                    "d({m},{p},{q}) = {roots} roots exceeds the limit {}",
                    limits.max_roots
                ),
            });
        }
        if let JobRequest::PlacePoles {
            a, b, c, q, poles, ..
        } = self
        {
            if !a.is_square() {
                return Err(JobError::InvalidRequest(format!(
                    "A must be square, got {}×{}",
                    a.rows(),
                    a.cols()
                )));
            }
            let dim = a.rows();
            if b.rows() != dim || c.cols() != dim {
                return Err(JobError::InvalidRequest(format!(
                    "B must be {dim}×m and C p×{dim} to match A, got B {}×{} and C {}×{}",
                    b.rows(),
                    b.cols(),
                    c.rows(),
                    c.cols()
                )));
            }
            let placed = dim + q;
            if poles.len() != placed {
                return Err(JobError::InvalidRequest(format!(
                    "prescribe exactly n° + q = {placed} poles, got {}",
                    poles.len()
                )));
            }
            if placed > n {
                return Err(JobError::InvalidRequest(format!(
                    "plant degree {dim} too large for a degree-{q} compensator \
                     (n° + q = {placed} > n = {n})"
                )));
            }
            if poles.iter().any(|s| !s.is_finite()) {
                return Err(JobError::InvalidRequest(
                    "prescribed poles must be finite".into(),
                ));
            }
            if !a.is_finite() || !b.is_finite() || !c.is_finite() {
                return Err(JobError::InvalidRequest(
                    "plant matrices must be finite".into(),
                ));
            }
            // A prescribed pole equal to an open-loop pole makes the
            // resolvent `(sI − A)⁻¹` singular — the curve evaluation
            // would panic deep in the numeric layer. Same factorisation,
            // same tolerance, caught here as a client error instead.
            for (i, &s) in poles.iter().enumerate() {
                let si_a = CMat::from_fn(dim, dim, |r, c2| {
                    let d = if r == c2 { s } else { Complex64::ZERO };
                    d - a[(r, c2)]
                });
                if pieri_linalg::Lu::factor(&si_a).is_err() {
                    return Err(JobError::InvalidRequest(format!(
                        "pole {i} ({s}) coincides with an open-loop pole of the plant"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// One compensator of a `PlacePoles` answer: the matrix-fraction blocks
/// `K(s) = V(s)·U(s)⁻¹` as coefficient matrices, plus derived checks.
#[derive(Debug, Clone)]
pub struct CompensatorAnswer {
    /// Denominator coefficients `U₀..U_q` (each `p × p`).
    pub u_coeffs: Vec<CMat>,
    /// Numerator coefficients `V₀..V_q` (each `m × p`).
    pub v_coeffs: Vec<CMat>,
    /// Worst relative residual of the closed-loop characteristic
    /// polynomial over the prescribed poles (certifies the placement).
    pub residual: f64,
    /// True when the compensator is proper at `s = 0` (a static gain
    /// exists for `q = 0` solutions).
    pub proper: bool,
}

/// The result of a completed job.
#[derive(Debug, Clone, Default)]
pub struct JobResult {
    /// Number of solutions delivered.
    pub solutions: usize,
    /// The enumerative count `d(m,p,q)` (solutions ≤ expected; the gap
    /// is `improper + failed`).
    pub expected: u128,
    /// Continuation paths that honestly diverged (solutions at infinity,
    /// e.g. improper feedback laws — structural, not numerical).
    pub improper: usize,
    /// Paths that failed numerically.
    pub failed: usize,
    /// Root-pattern coefficient vectors of the solutions (raw Pieri
    /// answer; what the determinism tests compare bitwise).
    pub coeffs: Vec<Vec<Complex64>>,
    /// Compensators (empty for `SolvePieri` jobs).
    pub compensators: Vec<CompensatorAnswer>,
    /// One certificate per shipped solution (in `coeffs` order), present
    /// when the request asked for certification; empty otherwise.
    pub certificates: Vec<Certificate>,
    /// Largest verification residual over all solutions: intersection-
    /// condition residual for `SolvePieri`, closed-loop characteristic
    /// residual for `PlacePoles`.
    pub max_residual: f64,
    /// Whether the shape-level work came from the cache.
    pub cache_hit: bool,
    /// Time the shape-level work (poset + generic tree solve) took
    /// *within this job* — zero on a cache hit; that is the measured
    /// saving.
    pub bundle_build: Duration,
    /// Time from submission to the start of execution.
    pub queue_wait: Duration,
    /// Execution time (continuation + extraction + verification).
    pub solve_time: Duration,
    /// Path-tracking statistics of the continuation stage
    /// ([`TrackStats`] re-used from the tracker crate).
    pub track: TrackStats,
}

/// Structured job failure — the only error type that crosses the
/// service boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The request is malformed (shape mismatch, wrong pole count, …).
    InvalidRequest(String),
    /// The request is well-formed but exceeds the admission limits.
    TooLarge {
        /// Which limit, and by how much.
        detail: String,
    },
    /// The bounded queue is full — back-pressure; retry later.
    QueueFull,
    /// The request's deadline lapsed before an answer could be
    /// produced: shed at admission, expired while queued, or cancelled
    /// between continuation paths mid-execution. No partial result is
    /// ever shipped under this error.
    DeadlineExceeded {
        /// Where in the pipeline the deadline fired.
        detail: String,
    },
    /// The engine is shutting down and accepts no new work.
    ShuttingDown,
    /// The shape-level generic solve lost roots (a numerics bug worth a
    /// report, not a client error).
    StartSystem(String),
    /// The request asked for certification and at least one path stayed
    /// numerically failed after bounded re-tracking, or a shipped
    /// solution failed its Newton certificate. The job's answer is not
    /// trustworthy and is withheld.
    Uncertified {
        /// What failed certification, with counts.
        detail: String,
    },
    /// A panic or other defect inside the solver, caught at the
    /// boundary.
    Internal(String),
}

impl JobError {
    /// Stable machine-readable kind tag (the wire format's `kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::InvalidRequest(_) => "invalid_request",
            JobError::TooLarge { .. } => "too_large",
            JobError::QueueFull => "queue_full",
            JobError::DeadlineExceeded { .. } => "deadline_exceeded",
            JobError::ShuttingDown => "shutting_down",
            JobError::StartSystem(_) => "start_system",
            JobError::Uncertified { .. } => "uncertified",
            JobError::Internal(_) => "internal",
        }
    }

    /// The payload without the kind prefix `Display` adds — what the
    /// wire encodes as `message`, so a decode/re-encode hop does not
    /// stack prefixes ("invalid request: invalid request: …").
    pub fn message(&self) -> String {
        match self {
            JobError::InvalidRequest(msg)
            | JobError::StartSystem(msg)
            | JobError::Internal(msg) => msg.clone(),
            JobError::TooLarge { detail }
            | JobError::Uncertified { detail }
            | JobError::DeadlineExceeded { detail } => detail.clone(),
            JobError::QueueFull => "job queue is full, retry later".into(),
            JobError::ShuttingDown => "service is shutting down".into(),
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            JobError::TooLarge { detail } => write!(f, "job too large: {detail}"),
            JobError::QueueFull => write!(f, "job queue is full, retry later"),
            JobError::DeadlineExceeded { detail } => write!(f, "deadline exceeded: {detail}"),
            JobError::ShuttingDown => write!(f, "service is shutting down"),
            JobError::StartSystem(msg) => write!(f, "start-system build failed: {msg}"),
            JobError::Uncertified { detail } => write!(f, "certification failed: {detail}"),
            JobError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_num::seeded_rng;

    fn satellite_request(q: usize, n_poles: usize) -> JobRequest {
        let ss = pieri_control::satellite_plant(1.0);
        let mut rng = seeded_rng(1);
        JobRequest::PlacePoles {
            a: ss.a.clone(),
            b: ss.b.clone(),
            c: ss.c.clone(),
            q,
            poles: pieri_control::conjugate_pole_set(n_poles, &mut rng),
            seed: 7,
            certify: false,
        }
    }

    #[test]
    fn valid_requests_pass() {
        let limits = JobLimits::default();
        assert_eq!(satellite_request(1, 5).validate(&limits), Ok(()));
        let solve = JobRequest::SolvePieri {
            m: 2,
            p: 2,
            q: 1,
            seed: 3,
            certify: false,
        };
        assert_eq!(solve.validate(&limits), Ok(()));
    }

    #[test]
    fn wrong_pole_count_is_invalid_not_panic() {
        let limits = JobLimits::default();
        let err = satellite_request(1, 4).validate(&limits).unwrap_err();
        assert_eq!(err.kind(), "invalid_request");
    }

    #[test]
    fn zero_io_dimensions_rejected() {
        let limits = JobLimits::default();
        let req = JobRequest::SolvePieri {
            m: 0,
            p: 2,
            q: 0,
            seed: 0,
            certify: false,
        };
        assert_eq!(req.validate(&limits).unwrap_err().kind(), "invalid_request");
    }

    #[test]
    fn oversized_seed_rejected_everywhere_not_just_on_the_wire() {
        let limits = JobLimits::default();
        let req = JobRequest::SolvePieri {
            m: 2,
            p: 2,
            q: 0,
            seed: 1 << 53,
            certify: false,
        };
        assert_eq!(req.validate(&limits).unwrap_err().kind(), "invalid_request");
    }

    #[test]
    fn pole_on_open_loop_spectrum_is_a_client_error_not_a_panic() {
        // The satellite's open-loop spectrum contains 0 and ±iω.
        let limits = JobLimits::default();
        let ss = pieri_control::satellite_plant(1.0);
        let mut rng = seeded_rng(2);
        let mut poles = pieri_control::conjugate_pole_set(4, &mut rng);
        poles[0] = Complex64::ZERO;
        let req = JobRequest::PlacePoles {
            a: ss.a.clone(),
            b: ss.b.clone(),
            c: ss.c.clone(),
            q: 0,
            poles,
            seed: 1,
            certify: false,
        };
        let err = req.validate(&limits).unwrap_err();
        assert_eq!(err.kind(), "invalid_request");
        assert!(err.to_string().contains("open-loop"), "{err}");
    }

    #[test]
    fn admission_limits_enforced() {
        let req = JobRequest::SolvePieri {
            m: 4,
            p: 4,
            q: 2,
            seed: 0,
            certify: false,
        };
        let err = req.validate(&JobLimits::default()).unwrap_err();
        assert_eq!(err.kind(), "too_large");
    }

    #[test]
    fn non_square_a_rejected() {
        let limits = JobLimits::default();
        let req = JobRequest::PlacePoles {
            a: CMat::zeros(2, 3),
            b: CMat::zeros(2, 1),
            c: CMat::zeros(1, 2),
            q: 0,
            poles: vec![],
            seed: 0,
            certify: false,
        };
        assert_eq!(req.validate(&limits).unwrap_err().kind(), "invalid_request");
    }

    #[test]
    fn non_finite_data_rejected() {
        let limits = JobLimits::default();
        let mut a = CMat::zeros(1, 1);
        a[(0, 0)] = Complex64::new(f64::NAN, 0.0);
        let req = JobRequest::PlacePoles {
            a,
            b: CMat::zeros(1, 1),
            c: CMat::zeros(1, 1),
            q: 0,
            poles: vec![Complex64::ONE],
            seed: 0,
            certify: false,
        };
        assert_eq!(req.validate(&limits).unwrap_err().kind(), "invalid_request");
    }
}
