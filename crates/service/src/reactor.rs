//! Event-driven service core: a few I/O threads multiplex thousands of
//! keep-alive connections over epoll (the vendored [`mio_lite`]
//! wrapper) instead of one thread per connection.
//!
//! Each [`Reactor`] owns one `epoll` instance and a private set of
//! connections; reactor 0 additionally owns the listener and deals
//! fresh sockets round-robin to its peers through their
//! [`ReactorShared::inbox`]. A connection is a pair of byte buffers
//! and a FIFO of response [`Slot`]s:
//!
//! * **Read side** — `read` to `WouldBlock` into `read_buf`, then parse
//!   as many complete HTTP/1.1 requests as the buffer holds
//!   ([`crate::http::parse_request`] is incremental: a partial request
//!   simply stays buffered). Every parsed request claims the next
//!   sequence number and a slot in the FIFO, so *pipelined* requests —
//!   several in flight on one connection — come back in order no
//!   matter how the engine reorders their execution.
//! * **Engine side** — solve/batch jobs go in through
//!   [`crate::engine::Engine::submit_async`], which never blocks: a
//!   full queue or a lapsed deadline is an immediate structured 503
//!   (load shedding, counted in `/v1/stats`). Worker completions come
//!   back through [`ReactorShared::completions`] plus a waker nudge.
//! * **Write side** — ready slots at the *front* of the FIFO render
//!   into `write_buf`, which drains to the socket as far as
//!   `WouldBlock` allows; epoll interest tracks whether there is
//!   unsent output or parser appetite left.
//!
//! Nothing in a reactor thread ever parks on a lock that is held
//! across I/O, sleeps, or blocks on a socket: every handler below is
//! marked `lint:nonblocking` and audited by `pieri-analyze`'s
//! `no-blocking-in-nonblocking` call-graph rule. The deliberate
//! exceptions — nonblocking syscalls that *return* `WouldBlock`, and
//! bounded push/take critical sections on the two reactor queues — are
//! individually annotated `lint:allow` at the call site.
//!
//! Overload is answered, not ignored: past the connection cap a new
//! socket is registered just long enough to receive a preloaded 503
//! envelope; past cap + headroom it is dropped outright.
//!
//! **Draining** (zero-downtime restart): when the server raises the
//! shared `draining` flag, reactor 0 drops the listener — with
//! `SO_REUSEPORT` the kernel immediately routes new connections to the
//! replacement process sharing the port — and every reactor flags its
//! connections `closing`. In-flight jobs still complete and their
//! responses still flush; only *new* work is refused. A connection
//! closed before its response starts is the client's replay-safe retry
//! case, so a retrying client never loses a request across a restart.
//!
//! Socket syscalls on connections go through [`crate::chaos`]: under
//! the `chaos` feature an installed fault plan can inject `EAGAIN`
//! storms, short reads/writes, and dropped accepts; without the
//! feature the shims inline away to the bare syscalls.

use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use minijson::Value;
use mio_lite::{Events, Interest, Poll, Token, Waker};
use pieri_trace::{Counter, Histogram, Registry};
use pieri_tracker::CancelToken;

use crate::engine::Engine;
use crate::http;
use crate::job::{JobError, JobResult};
use crate::sync::{rank, RankedMutex};
use crate::wire;

/// Token of each reactor's eventfd waker.
const WAKER: Token = Token(0);
/// Token of the listener (registered on reactor 0 only).
const LISTENER: Token = Token(1);
/// First token handed to a connection; tokens are monotonically
/// increasing and never reused, so a stale completion for a closed
/// connection can never be misdelivered to its token's successor.
const FIRST_CONN: usize = 2;
/// Number of reactor (I/O) threads. Two suffice for the solver-bound
/// workload: the engine's worker pool is the throughput limit and the
/// reactors only shuffle bytes and parse headers.
pub(crate) const REACTOR_THREADS: usize = 2;
/// Requests admitted per connection ahead of the first unanswered one
/// (HTTP/1.1 pipelining). Bounds per-connection memory: past this the
/// reactor simply stops reading until responses drain.
const PIPELINE_DEPTH: usize = 32;
/// Poll timeout: the latency floor for stop-flag checks and idle
/// sweeps, not for I/O (I/O readiness wakes the poll immediately).
const POLL_TICK: Duration = Duration::from_millis(100);
/// Bytes read per `read` call while draining a readable socket.
const READ_CHUNK: usize = 16 * 1024;
/// Connections past [`http::MAX_CONNECTIONS`] that still get a 503
/// envelope before close; beyond cap + headroom the socket is dropped
/// without an answer (the envelope itself costs a registered fd).
const OVERLOAD_HEADROOM: usize = 64;
/// Cadence of the idle-connection sweep.
const SWEEP_EVERY: Duration = Duration::from_secs(1);

/// Path classes for the per-endpoint HTTP metrics
/// (`pieri_http_requests_total{path=...}` and
/// `pieri_http_request_us{path=...}`). Unknown paths fold into `other`
/// so hostile clients cannot mint unbounded label values.
const PATH_CLASSES: [&str; 7] = [
    "/healthz",
    "/v1/stats",
    "/v1/metrics",
    "/v1/trace",
    "/v1/solve",
    "/v1/batch",
    "other",
];
/// Index of the catch-all class in [`PATH_CLASSES`].
const CLASS_OTHER: usize = 6;

/// Maps a request path onto its [`PATH_CLASSES`] index.
fn class_of(path: &str) -> usize {
    if path.starts_with("/v1/trace/") {
        return 3;
    }
    PATH_CLASSES
        .iter()
        .position(|p| *p == path)
        .unwrap_or(CLASS_OTHER)
}

/// Per-path-class request counters and latency histograms, registered
/// once on the engine's metrics registry (in [`build`]) and shared by
/// every reactor thread. Latency is measured from dispatch to the
/// response hitting the write buffer, so solve/batch classes include
/// queue wait and solve time.
struct HttpMetrics {
    /// `pieri_http_requests_total{path=...}`, indexed by class.
    requests: Vec<Counter>,
    /// `pieri_http_request_us{path=...}`, indexed by class.
    latency_us: Vec<Histogram>,
}

impl HttpMetrics {
    fn register_all(registry: &Registry) -> Self {
        let requests = PATH_CLASSES
            .iter()
            .map(|p| registry.counter_with("pieri_http_requests_total", "path", p))
            .collect();
        let latency_us = PATH_CLASSES
            .iter()
            .map(|p| registry.histogram_with("pieri_http_request_us", "path", p))
            .collect();
        HttpMetrics {
            requests,
            latency_us,
        }
    }
}

/// Per-server sweep budgets, threaded from
/// [`crate::http::ServerOptions`] so tests can shrink them without
/// waiting out the production constants.
#[derive(Clone, Copy)]
pub(crate) struct Tuning {
    /// Idle budget for quiescent kept-alive connections.
    pub(crate) keep_alive_idle: Duration,
    /// Budget for stalled transfers (bytes buffered, none moving).
    pub(crate) io_timeout: Duration,
}

/// One finished engine job on its way back to a reactor thread.
struct Completion {
    /// Connection token the job belongs to.
    token: usize,
    /// Slot sequence number within the connection.
    seq: u64,
    /// Index within a batch slot (0 for single-job slots).
    index: usize,
    /// The job's outcome.
    result: Result<JobResult, JobError>,
}

/// The cross-thread half of one reactor: what acceptors and engine
/// workers may touch. Everything else lives privately on the reactor
/// thread.
pub(crate) struct ReactorShared {
    /// Freshly accepted sockets dealt to this reactor by the acceptor.
    inbox: RankedMutex<Vec<TcpStream>>,
    /// Finished jobs waiting to be folded back into connection state.
    completions: RankedMutex<Vec<Completion>>,
    /// Nudges the reactor's `epoll_wait` after a push to either queue.
    waker: Waker,
}

impl ReactorShared {
    /// Wakes the reactor thread (used by [`crate::http::Server`] on
    /// shutdown; queue pushes wake internally).
    pub(crate) fn wake(&self) {
        let _ = self.waker.wake();
    }
}

/// What a response slot is waiting for.
enum SlotState {
    /// Response known; waiting for its turn at the front of the FIFO.
    Ready {
        /// HTTP status code.
        status: u16,
        /// JSON response body.
        body: Value,
    },
    /// Response known, plain-text payload (the Prometheus exposition
    /// behind `/v1/metrics`); waiting for its turn at the front.
    ReadyText {
        /// HTTP status code.
        status: u16,
        /// Text response body.
        text: String,
    },
    /// A single job in flight in the engine.
    Pending {
        /// Cancels the job if the connection dies first.
        cancel: CancelToken,
    },
    /// A `/v1/batch` fan-out with some jobs still in flight.
    Batch {
        /// Per-job response bodies, filled as completions arrive.
        results: Vec<Option<Value>>,
        /// Jobs still owing a completion.
        remaining: usize,
        /// Cancels in-flight jobs if the connection dies first.
        cancels: Vec<CancelToken>,
    },
}

/// One queued response on a connection, identified by sequence number
/// so completions land in the right slot even when pipelined jobs
/// finish out of order.
struct Slot {
    seq: u64,
    /// Close the connection after this response is written.
    close_after: bool,
    /// The request's trace id (0 = untraced; emitted as the
    /// `x-trace-id` response header when nonzero).
    trace_id: u64,
    /// [`PATH_CLASSES`] index for the per-path metrics.
    class: usize,
    /// When the request was dispatched, for the latency histogram and
    /// the slow-request log.
    started: Instant,
    state: SlotState,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet parsed into requests.
    read_buf: Vec<u8>,
    /// Rendered responses not yet accepted by the kernel.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written.
    written: usize,
    /// Response FIFO, front = next response on the wire.
    slots: VecDeque<Slot>,
    /// Next slot sequence number.
    next_seq: u64,
    /// Requests parsed on this connection so far.
    served: usize,
    /// No further requests will be read; close once `slots` and
    /// `write_buf` drain.
    closing: bool,
    /// Interest currently registered with epoll.
    interest: Interest,
    /// Last byte-level progress, for the idle sweep.
    last_activity: Instant,
}

/// One event loop: an epoll instance plus the connections it owns.
pub(crate) struct Reactor {
    index: usize,
    poll: Poll,
    shared: Vec<Arc<ReactorShared>>,
    engine: Arc<Engine>,
    /// The listener, owned by reactor 0.
    listener: Option<TcpListener>,
    stop: Arc<AtomicBool>,
    /// Graceful-drain flag shared with [`crate::http::Server`]: once
    /// raised, the listener is dropped and connections finish their
    /// in-flight work but accept nothing new.
    draining: Arc<AtomicBool>,
    /// Whether this reactor has already acted on the drain flag.
    drain_started: bool,
    /// Connections across *all* reactors, for the overload cap.
    conn_total: Arc<AtomicUsize>,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    /// Round-robin cursor for dealing accepted sockets.
    rr: usize,
    last_sweep: Instant,
    tuning: Tuning,
    /// Per-path request counters/latency, shared across reactors.
    http_metrics: Arc<HttpMetrics>,
}

/// What [`build`] hands the server: the reactors (to be moved onto
/// threads by the caller), their shared halves (for shutdown
/// wake-ups), and the live-connection counter (for the drain wait).
pub(crate) type BuildParts = (Vec<Reactor>, Vec<Arc<ReactorShared>>, Arc<AtomicUsize>);

/// Builds `threads` reactors sharing `listener` (owned and polled by
/// reactor 0), `engine`, and the `stop`/`draining` flags.
pub(crate) fn build(
    threads: usize,
    listener: TcpListener,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    tuning: Tuning,
) -> std::io::Result<BuildParts> {
    listener.set_nonblocking(true)?;
    let threads = threads.max(1);
    let conn_total = Arc::new(AtomicUsize::new(0));
    let mut polls = Vec::with_capacity(threads);
    let mut shared = Vec::with_capacity(threads);
    for _ in 0..threads {
        let poll = Poll::new()?;
        let waker = Waker::new(&poll, WAKER)?;
        shared.push(Arc::new(ReactorShared {
            inbox: RankedMutex::new("reactor-inbox", rank::REACTOR_INBOX, Vec::new()),
            completions: RankedMutex::new(
                "reactor-completions",
                rank::REACTOR_COMPLETIONS,
                Vec::new(),
            ),
            waker,
        }));
        polls.push(poll);
    }
    polls[0].register(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
    let mut listener = Some(listener);
    let http_metrics = Arc::new(HttpMetrics::register_all(engine.registry()));
    let reactors = polls
        .into_iter()
        .enumerate()
        .map(|(index, poll)| Reactor {
            index,
            poll,
            shared: shared.clone(),
            engine: engine.clone(),
            listener: if index == 0 { listener.take() } else { None },
            stop: stop.clone(),
            draining: draining.clone(),
            drain_started: false,
            conn_total: conn_total.clone(),
            conns: HashMap::new(),
            next_token: FIRST_CONN,
            rr: 0,
            last_sweep: Instant::now(),
            tuning,
            http_metrics: http_metrics.clone(),
        })
        .collect();
    Ok((reactors, shared, conn_total))
}

impl Reactor {
    /// This reactor's index (names its thread).
    pub(crate) fn index(&self) -> usize {
        self.index
    }

    /// The event loop. Runs until the stop flag is raised, then closes
    /// every connection (cancelling their in-flight jobs) and returns.
    // lint:nonblocking — the poll loop; epoll_wait with a timeout is the only place it waits
    pub(crate) fn run(mut self) {
        let mut events = Events::with_capacity(512);
        // lint:allow(no-blocking-in-nonblocking) — AtomicBool::load; the name-keyed call graph resolves `load` to the store's file loader
        while !self.stop.load(Ordering::SeqCst) {
            // lint:allow(no-blocking-in-nonblocking) — epoll_wait with a bounded timeout; the chaos-feature hook inside takes one bounded registry lock
            if self.poll.poll(&mut events, Some(POLL_TICK)).is_err() {
                break;
            }
            // lint:allow(no-blocking-in-nonblocking) — AtomicBool::load; the name-keyed call graph resolves `load` to the store's file loader
            if !self.drain_started && self.draining.load(Ordering::SeqCst) {
                // lint:allow(no-blocking-in-nonblocking) — drops the listener and flags connections; pump is the usual nonblocking path
                self.begin_drain();
            }
            let fired: Vec<mio_lite::Event> = events.iter().collect();
            for event in fired {
                match event.token() {
                    WAKER => self.shared[self.index].waker.drain(),
                    // lint:allow(no-blocking-in-nonblocking) — accept on a nonblocking listener: WouldBlock instead of parking
                    LISTENER => self.accept_ready(),
                    // lint:allow(no-blocking-in-nonblocking) — handler does nonblocking socket I/O and bounded queue pushes only
                    Token(token) => self.conn_event(token, event),
                }
            }
            // lint:allow(no-blocking-in-nonblocking) — bounded critical section: take under the reactor-inbox lock
            self.drain_inbox();
            // lint:allow(no-blocking-in-nonblocking) — bounded critical section: take under the reactor-completions lock
            self.drain_completions();
            self.sweep_idle();
        }
        self.close_all();
    }

    /// Enters drain mode: drops the listener (reactor 0 — with
    /// `SO_REUSEPORT` the kernel instantly reroutes new connections to
    /// the replacement listener sharing the port), flags every
    /// connection `closing`, and pumps each so quiescent ones close
    /// now. Connections with in-flight jobs stay until their responses
    /// flush: a drain answers admitted work, it only refuses new work.
    // lint:nonblocking — one epoll_ctl for the listener, then the usual nonblocking pump per connection
    fn begin_drain(&mut self) {
        self.drain_started = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poll.deregister(listener.as_raw_fd());
            // The listener drops here, releasing its accept queue.
        }
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.closing = true;
            }
            // lint:allow(no-blocking-in-nonblocking) — pump performs nonblocking writes and sheds via submit_async
            self.pump(token);
        }
    }

    /// Accepts until `WouldBlock`, dealing sockets round-robin across
    /// reactors. Runs on reactor 0 only (the listener's owner).
    // lint:nonblocking — listener is nonblocking; accept returns WouldBlock when drained
    fn accept_ready(&mut self) {
        loop {
            let accepted = {
                let Some(listener) = &self.listener else {
                    return;
                };
                // lint:allow(no-blocking-in-nonblocking) — nonblocking accept: WouldBlock instead of parking
                match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return,
                }
            };
            if crate::chaos::accept_dropped() {
                // Injected accept failure: the peer sees a reset before
                // any byte is answered — its replay-safe retry case.
                continue;
            }
            let target = self.rr % self.shared.len();
            self.rr = self.rr.wrapping_add(1);
            if target == self.index {
                // lint:allow(no-blocking-in-nonblocking) — registration is epoll_ctl plus an optional preloaded 503 render
                self.register_conn(accepted);
            } else {
                // lint:allow(no-blocking-in-nonblocking) — bounded critical section: push under the reactor-inbox lock
                // lint:lock-rank(reactor-inbox, 4)
                self.shared[target].inbox.lock_recover().push(accepted);
                self.shared[target].wake();
            }
        }
    }

    /// Adopts sockets dealt to this reactor by the acceptor.
    // lint:nonblocking — a take under a ranked lock, then per-socket epoll registration
    fn drain_inbox(&mut self) {
        // lint:allow(no-blocking-in-nonblocking) — bounded critical section: take under the reactor-inbox lock
        // lint:lock-rank(reactor-inbox, 4)
        let fresh = std::mem::take(&mut *self.shared[self.index].inbox.lock_recover());
        for stream in fresh {
            // lint:allow(no-blocking-in-nonblocking) — registration is epoll_ctl plus an optional preloaded 503 render
            self.register_conn(stream);
        }
    }

    /// Brings a fresh socket under this reactor's epoll. Over the
    /// connection cap the socket is preloaded with a 503 envelope and
    /// closed after writing it; over cap + headroom it is dropped
    /// without an answer.
    // lint:nonblocking — configures the socket and registers it; no I/O beyond the preloaded-503 pump
    fn register_conn(&mut self, stream: TcpStream) {
        if self.drain_started {
            // No new work during a drain: dropping the socket before
            // any byte is answered is the client's replay-safe retry
            // case, and with SO_REUSEPORT the retry lands on the
            // replacement listener.
            return;
        }
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            return;
        }
        // lint:allow(no-blocking-in-nonblocking) — AtomicUsize::load; the name-keyed call graph resolves `load` to the store's file loader
        let live = self.conn_total.load(Ordering::SeqCst);
        let over = live >= http::MAX_CONNECTIONS;
        if live >= http::MAX_CONNECTIONS + OVERLOAD_HEADROOM {
            return;
        }
        let token = self.next_token;
        let interest = if over {
            Interest::WRITABLE
        } else {
            Interest::READABLE
        };
        if self
            .poll
            .register(stream.as_raw_fd(), Token(token), interest)
            .is_err()
        {
            return;
        }
        self.next_token += 1;
        self.conn_total.fetch_add(1, Ordering::SeqCst);
        let mut conn = Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            slots: VecDeque::new(),
            next_seq: 0,
            served: 0,
            closing: over,
            interest,
            last_activity: Instant::now(),
        };
        if over {
            let e = JobError::QueueFull;
            conn.slots.push_back(Slot {
                seq: 0,
                close_after: true,
                trace_id: 0,
                class: CLASS_OTHER,
                started: Instant::now(),
                state: SlotState::Ready {
                    status: http::status_for(&e),
                    body: wire::error_to_json(&e),
                },
            });
            conn.next_seq = 1;
        }
        self.conns.insert(token, conn);
        // lint:allow(no-blocking-in-nonblocking) — pump performs nonblocking writes and sheds via submit_async
        self.pump(token);
    }

    /// Handles a readiness event for one connection.
    // lint:nonblocking — dispatches to nonblocking read/write handlers
    fn conn_event(&mut self, token: usize, event: mio_lite::Event) {
        if !self.conns.contains_key(&token) {
            return;
        }
        if event.is_error() {
            self.close_conn(token);
            return;
        }
        if event.is_readable() || event.is_closed() {
            // A half-closed peer (RDHUP) may still have buffered bytes:
            // read_ready drains them and observes EOF itself.
            // lint:allow(no-blocking-in-nonblocking) — nonblocking reads: WouldBlock instead of parking
            self.read_ready(token);
            if !self.conns.contains_key(&token) {
                return;
            }
        }
        if event.is_writable() {
            // lint:allow(no-blocking-in-nonblocking) — pump performs nonblocking writes and sheds via submit_async
            self.pump(token);
        }
    }

    /// Drains the socket into `read_buf` until `WouldBlock` or EOF,
    /// then parses and answers whatever became complete.
    // lint:nonblocking — reads a nonblocking fd; WouldBlock ends the drain
    fn read_ready(&mut self, token: usize) {
        let mut eof = false;
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                // lint:allow(no-blocking-in-nonblocking) — nonblocking read (chaos shim passthrough): WouldBlock instead of parking
                match crate::chaos::sock_read(&mut conn.stream, &mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        conn.last_activity = Instant::now();
                        // Parser appetite is the backpressure valve: past
                        // it, leave the rest in the kernel buffer.
                        if conn.slots.len() >= PIPELINE_DEPTH
                            && conn.read_buf.len() >= http::MAX_HEADER_BYTES
                        {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if eof {
                // No more requests will ever arrive; finish writing what
                // is owed (pump closes once slots and write_buf drain).
                conn.closing = true;
                if conn.slots.is_empty() && conn.read_buf.is_empty() {
                    dead = true;
                }
            }
        }
        if dead {
            self.close_conn(token);
            return;
        }
        // lint:allow(no-blocking-in-nonblocking) — pump performs nonblocking writes and sheds via submit_async
        self.pump(token);
    }

    /// Parses complete requests out of `read_buf` (bounded by
    /// [`PIPELINE_DEPTH`] unanswered slots) and dispatches them.
    // lint:nonblocking — pure parsing plus nonblocking dispatch into the engine
    fn parse_ready(&mut self, token: usize) {
        loop {
            let parse_start = Instant::now();
            let parsed = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.closing || conn.slots.len() >= PIPELINE_DEPTH || conn.read_buf.is_empty() {
                    return;
                }
                match http::parse_request(&conn.read_buf) {
                    http::Parse::Partial => return,
                    http::Parse::Bad(e) => {
                        // Framing is unrecoverable: answer the envelope
                        // and close, exactly like the threaded core did.
                        conn.closing = true;
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.slots.push_back(Slot {
                            seq,
                            close_after: true,
                            trace_id: 0,
                            class: CLASS_OTHER,
                            started: Instant::now(),
                            state: SlotState::Ready {
                                status: http::status_for(&e),
                                body: wire::error_to_json(&e),
                            },
                        });
                        return;
                    }
                    http::Parse::Request(head) => {
                        let end = head.body_start + head.body_len;
                        let body = conn.read_buf[head.body_start..end].to_vec();
                        conn.read_buf.drain(..end);
                        conn.served += 1;
                        let close_after =
                            !head.keep_alive || conn.served >= http::MAX_REQUESTS_PER_CONN;
                        if close_after {
                            conn.closing = true;
                        }
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        (head, body, seq, close_after)
                    }
                }
            };
            let (head, body, seq, close_after) = parsed;
            crate::trace::note_parse(head.trace_id, parse_start.elapsed());
            let _span = crate::trace::request_span("admit", head.trace_id);
            // lint:allow(no-blocking-in-nonblocking) — dispatch submits async; engine admission sheds instead of waiting
            let slot = self.dispatch(token, seq, &head, &body, close_after);
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.slots.push_back(slot);
            }
        }
    }

    /// Routes one parsed request. Fast endpoints resolve to a `Ready`
    /// slot immediately; solve/batch go through the engine's
    /// nonblocking admission and resolve later via completions.
    // lint:nonblocking — nonblocking admission only; a full queue is an immediate structured 503
    fn dispatch(
        &self,
        token: usize,
        seq: u64,
        head: &http::ParsedHead,
        body: &[u8],
        close_after: bool,
    ) -> Slot {
        let trace_id = head.trace_id;
        let class = class_of(&head.path);
        let started = Instant::now();
        let ready = |status: u16, body: Value| Slot {
            seq,
            close_after,
            trace_id,
            class,
            started,
            state: SlotState::Ready { status, body },
        };
        match (head.method.as_str(), head.path.as_str()) {
            ("GET", "/healthz") => {
                // lint:allow(no-blocking-in-nonblocking) — uptime is a clock read
                ready(200, wire::health_to_json(self.engine.uptime()))
            }
            ("GET", "/v1/stats") => {
                // lint:allow(no-blocking-in-nonblocking) — stats reads one registry snapshot plus the queue length, never I/O
                let stats = self.engine.stats();
                // lint:allow(no-blocking-in-nonblocking) — resident() is a bounded walk under the cache-slots lock
                let resident = self.engine.cache().resident();
                ready(200, wire::stats_to_json(&stats, &resident))
            }
            ("GET", "/v1/metrics") => {
                // The exposition is rendered here, off the write path,
                // from the same snapshot `/v1/stats` uses.
                // lint:allow(no-blocking-in-nonblocking) — snapshot is a bounded walk under the trace-registry lock
                let snap = self.engine.registry().snapshot();
                Slot {
                    seq,
                    close_after,
                    trace_id,
                    class,
                    started,
                    state: SlotState::ReadyText {
                        status: 200,
                        // lint:allow(no-blocking-in-nonblocking) — renders from the already-taken snapshot; the name-keyed graph collides Snapshot accessors with Registry lockers
                        text: pieri_trace::render_prometheus(&snap),
                    },
                }
            }
            ("GET", path) if path.starts_with("/v1/trace/") => {
                let suffix = &path["/v1/trace/".len()..];
                // lint:allow(no-blocking-in-nonblocking) — trace_lookup is a bounded copy under the trace-store lock
                let found = pieri_trace::parse_trace_id(suffix)
                    .and_then(|id| crate::trace::trace_lookup(id).map(|spans| (id, spans)));
                match found {
                    Some((id, spans)) => ready(200, wire::trace_to_json(id, &spans)),
                    None => {
                        // Unknown, evicted, malformed, or tracing off:
                        // all answer a structured 404.
                        let e = JobError::InvalidRequest(format!("no recorded trace '{suffix}'"));
                        ready(404, wire::error_to_json(&e))
                    }
                }
            }
            ("POST", "/v1/solve") => match http::parse_job(body) {
                Err(e) => ready(http::status_for(&e), wire::error_to_json(&e)),
                Ok(req) => {
                    // lint:allow(no-blocking-in-nonblocking) — the hook's queue push runs later, on an engine worker thread
                    let done = self.completion_hook(token, seq, 0);
                    let deadline = head.deadline();
                    // lint:allow(no-blocking-in-nonblocking) — submit_async sheds on a full queue instead of waiting
                    match self.engine.submit_async(req, deadline, trace_id, done) {
                        Ok(cancel) => Slot {
                            seq,
                            close_after,
                            trace_id,
                            class,
                            started,
                            state: SlotState::Pending { cancel },
                        },
                        Err(e) => ready(http::status_for(&e), wire::error_to_json(&e)),
                    }
                }
            },
            ("POST", "/v1/batch") => {
                // lint:allow(no-blocking-in-nonblocking) — queue_capacity is a config read
                let cap = self.engine.queue_capacity();
                // lint:allow(no-blocking-in-nonblocking) — pure JSON decoding into memory; no I/O
                match http::parse_batch(body, cap) {
                    Err(e) => ready(http::status_for(&e), wire::error_to_json(&e)),
                    Ok(jobs) => {
                        let n = jobs.len();
                        let mut results: Vec<Option<Value>> = Vec::new();
                        results.resize_with(n, || None);
                        let mut cancels = Vec::new();
                        let mut remaining = n;
                        let deadline = head.deadline();
                        for (i, job) in jobs.into_iter().enumerate() {
                            let done = self.completion_hook(token, seq, i);
                            // lint:allow(no-blocking-in-nonblocking) — submit_async sheds on a full queue instead of waiting
                            match self.engine.submit_async(job, deadline, trace_id, done) {
                                Ok(cancel) => cancels.push(cancel),
                                Err(e) => {
                                    results[i] = Some(wire::error_to_json(&e));
                                    remaining -= 1;
                                }
                            }
                        }
                        if remaining == 0 {
                            ready(200, batch_body(results))
                        } else {
                            Slot {
                                seq,
                                close_after,
                                trace_id,
                                class,
                                started,
                                state: SlotState::Batch {
                                    results,
                                    remaining,
                                    cancels,
                                },
                            }
                        }
                    }
                }
            }
            (_, "/healthz" | "/v1/stats" | "/v1/metrics" | "/v1/solve" | "/v1/batch") => {
                let e = JobError::InvalidRequest(format!(
                    "method {} not allowed on {}",
                    head.method, head.path
                ));
                ready(405, wire::error_to_json(&e))
            }
            (_, path) if path.starts_with("/v1/trace/") => {
                let e = JobError::InvalidRequest(format!(
                    "method {} not allowed on {}",
                    head.method, head.path
                ));
                ready(405, wire::error_to_json(&e))
            }
            _ => {
                let e = JobError::InvalidRequest(format!("no such endpoint {}", head.path));
                ready(404, wire::error_to_json(&e))
            }
        }
    }

    /// The completion callback for one submitted job: runs on an engine
    /// worker thread, pushes the result onto this reactor's completion
    /// queue, and wakes the poll.
    fn completion_hook(
        &self,
        token: usize,
        seq: u64,
        index: usize,
    ) -> impl FnOnce(Result<JobResult, JobError>) + Send + 'static {
        let shared = self.shared[self.index].clone();
        move |result| {
            // lint:lock-rank(reactor-completions, 6)
            shared.completions.lock_recover().push(Completion {
                token,
                seq,
                index,
                result,
            });
            shared.wake();
        }
    }

    /// Folds finished jobs back into their connections' slots.
    // lint:nonblocking — a take under a ranked lock, then in-memory slot updates
    fn drain_completions(&mut self) {
        // lint:allow(no-blocking-in-nonblocking) — bounded critical section: take under the reactor-completions lock
        // lint:lock-rank(reactor-completions, 6)
        let done = std::mem::take(&mut *self.shared[self.index].completions.lock_recover());
        for completion in done {
            // lint:allow(no-blocking-in-nonblocking) — slot bookkeeping plus the nonblocking pump
            self.apply_completion(completion);
        }
    }

    /// Resolves one completion against its slot. Completions for
    /// closed connections are dropped (their tokens are never reused).
    // lint:nonblocking — in-memory bookkeeping, then the nonblocking pump
    fn apply_completion(&mut self, completion: Completion) {
        let token = completion.token;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let Some(slot) = conn.slots.iter_mut().find(|s| s.seq == completion.seq) else {
                return;
            };
            match &mut slot.state {
                SlotState::Ready { .. } | SlotState::ReadyText { .. } => {}
                SlotState::Pending { .. } => {
                    let (status, body) = match &completion.result {
                        Ok(r) => (200, wire::result_to_json(r)),
                        Err(e) => (http::status_for(e), wire::error_to_json(e)),
                    };
                    slot.state = SlotState::Ready { status, body };
                }
                SlotState::Batch {
                    results, remaining, ..
                } => {
                    if let Some(cell) = results.get_mut(completion.index) {
                        if cell.is_none() {
                            *cell = Some(match &completion.result {
                                Ok(r) => wire::result_to_json(r),
                                Err(e) => wire::error_to_json(e),
                            });
                            *remaining -= 1;
                        }
                    }
                    if *remaining == 0 {
                        let results = std::mem::take(results);
                        slot.state = SlotState::Ready {
                            status: 200,
                            body: batch_body(results),
                        };
                    }
                }
            }
        }
        // lint:allow(no-blocking-in-nonblocking) — pump performs nonblocking writes and sheds via submit_async
        self.pump(token);
    }

    /// The per-connection engine room: parse what is parseable, render
    /// the ready prefix of the slot FIFO, write as much as the socket
    /// accepts, then close or re-arm epoll interest.
    // lint:nonblocking — writes a nonblocking fd; WouldBlock re-arms epoll instead of parking
    fn pump(&mut self, token: usize) {
        // lint:allow(no-blocking-in-nonblocking) — parsing plus nonblocking dispatch into the engine
        self.parse_ready(token);
        let close = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            // Render every leading slot whose response is known; order
            // on the wire is FIFO order regardless of completion order.
            while let Some(slot) = conn.slots.front() {
                let keep = !slot.close_after;
                let (rendered, status) = match &slot.state {
                    SlotState::Ready { status, body } => {
                        let _span = crate::trace::request_span("render", slot.trace_id);
                        // lint:allow(no-blocking-in-nonblocking) — renders into a Vec<u8>; the flagged `write` is minijson's in-memory buffer
                        let bytes = http::render_response(*status, body, keep, slot.trace_id);
                        (bytes, *status)
                    }
                    SlotState::ReadyText { status, text } => {
                        (http::render_text_response(*status, text, keep), *status)
                    }
                    SlotState::Pending { .. } | SlotState::Batch { .. } => break,
                };
                conn.write_buf.extend_from_slice(&rendered);
                let elapsed = slot.started.elapsed();
                self.http_metrics.requests[slot.class].inc();
                self.http_metrics.latency_us[slot.class].record_duration(elapsed);
                crate::trace::request_done(
                    PATH_CLASSES[slot.class],
                    status,
                    slot.trace_id,
                    elapsed,
                );
                if slot.close_after {
                    conn.closing = true;
                }
                conn.slots.pop_front();
            }
            let mut dead = false;
            while conn.written < conn.write_buf.len() {
                // lint:allow(no-blocking-in-nonblocking) — nonblocking write (chaos shim passthrough): WouldBlock instead of parking
                match crate::chaos::sock_write(&mut conn.stream, &conn.write_buf[conn.written..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.written += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if conn.written == conn.write_buf.len() {
                // lint:allow(no-blocking-in-nonblocking) — Vec::clear; the name-keyed call graph collides with pieri_chaos::clear (registry lock)
                conn.write_buf.clear();
                conn.written = 0;
            }
            dead || (conn.closing && conn.slots.is_empty() && conn.write_buf.is_empty())
        };
        if close {
            self.close_conn(token);
        } else {
            self.update_interest(token);
        }
    }

    /// Re-arms epoll interest to match what the connection can absorb:
    /// readable while the parser has appetite, writable while output is
    /// pending. A connection wanting neither stays registered for
    /// error/hangup edges only.
    // lint:nonblocking — one epoll_ctl at most
    fn update_interest(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut want = Interest::NONE;
        if !conn.closing && conn.slots.len() < PIPELINE_DEPTH {
            want = want.add(Interest::READABLE);
        }
        if conn.written < conn.write_buf.len() {
            want = want.add(Interest::WRITABLE);
        }
        if want != conn.interest
            && self
                .poll
                .reregister(conn.stream.as_raw_fd(), Token(token), want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    /// Tears down one connection: cancels in-flight jobs (stale
    /// completions for its never-reused token are dropped on arrival),
    /// deregisters the fd, releases the global slot.
    // lint:nonblocking — cancellation flags, one epoll_ctl, and a map removal
    fn close_conn(&mut self, token: usize) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        for slot in &conn.slots {
            match &slot.state {
                SlotState::Ready { .. } | SlotState::ReadyText { .. } => {}
                SlotState::Pending { cancel } => cancel.cancel(),
                SlotState::Batch { cancels, .. } => {
                    for cancel in cancels {
                        cancel.cancel();
                    }
                }
            }
        }
        let _ = self.poll.deregister(conn.stream.as_raw_fd());
        self.conn_total.fetch_sub(1, Ordering::SeqCst);
    }

    /// Closes connections idle past their budget. A connection with
    /// unanswered slots is exempt — the engine (and its deadlines)
    /// governs job latency, not the transport. Quiescent kept-alive
    /// connections get the server's `keep_alive_idle` budget;
    /// connections with buffered bytes (a stalled request or response)
    /// get the larger `io_timeout` (both from [`Tuning`], defaulted by
    /// [`crate::http::ServerOptions`]).
    // lint:nonblocking — clock reads and map removals only
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        // Sweep at least as often as the smallest budget, so shrunken
        // test budgets are enforced promptly (poll ticks bound the
        // cadence floor).
        let cadence = SWEEP_EVERY
            .min(self.tuning.keep_alive_idle)
            .min(self.tuning.io_timeout);
        if now.duration_since(self.last_sweep) < cadence {
            return;
        }
        self.last_sweep = now;
        let tuning = self.tuning;
        let expired: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, conn)| {
                if !conn.slots.is_empty() {
                    return false;
                }
                let quiescent = conn.read_buf.is_empty() && conn.write_buf.is_empty();
                let budget = if quiescent {
                    tuning.keep_alive_idle
                } else {
                    tuning.io_timeout
                };
                now.duration_since(conn.last_activity) > budget
            })
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            self.close_conn(token);
        }
    }

    /// Closes every connection (shutdown path).
    // lint:nonblocking — per-connection teardown only
    fn close_all(&mut self) {
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }
}

/// Assembles the `/v1/batch` response body from filled per-job slots.
/// `None` cells are impossible once `remaining == 0`, but degrade to a
/// structured internal error rather than a panic.
fn batch_body(results: Vec<Option<Value>>) -> Value {
    let results: Vec<Value> = results
        .into_iter()
        .map(|cell| {
            cell.unwrap_or_else(|| {
                wire::error_to_json(&JobError::Internal("batch slot never resolved".into()))
            })
        })
        .collect();
    minijson::object([("results", Value::Array(results))])
}
