//! End-to-end tests for the reactor rework: deadline semantics (shed
//! before the solver, cancel between paths, never partial results),
//! overload shedding with structured 503s, HTTP/1.1 pipelining on one
//! socket, the `x-deadline-ms` header, and warm restarts from the
//! on-disk bundle store.

use minijson::Value;
use pieri_service::{wire, BuildMode, Client, Engine, EngineConfig, JobError, JobRequest, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn engine(workers: usize, capacity: usize) -> Engine {
    Engine::start(EngineConfig {
        workers,
        queue_capacity: capacity,
        build_mode: BuildMode::Sequential,
        ..EngineConfig::default()
    })
}

fn solve_req(seed: u64) -> JobRequest {
    JobRequest::SolvePieri {
        m: 2,
        p: 2,
        q: 0,
        seed,
        certify: false,
    }
}

/// A cold multi-path job: the satellite's 8 = d(2,2,1) paths plus the
/// poset/tree build give the deadline something to lapse inside.
fn satellite_place(seed: u64) -> JobRequest {
    let sat = pieri_control::satellite_plant(1.0);
    let mut rng = pieri_num::seeded_rng(7);
    JobRequest::PlacePoles {
        a: sat.a,
        b: sat.b,
        c: sat.c,
        q: 1,
        poles: pieri_control::conjugate_pole_set(5, &mut rng),
        seed,
        certify: false,
    }
}

// ---- deadline semantics ------------------------------------------------

#[test]
fn cancelled_in_queue_answers_without_touching_the_solver() {
    let eng = engine(1, 8);
    // Occupy the single worker with a cold job…
    let busy = eng.submit(satellite_place(100)).expect("admit busy job");
    // …then queue a job for a shape the cache has never seen and cancel
    // it while it waits.
    let victim = JobRequest::SolvePieri {
        m: 3,
        p: 2,
        q: 0,
        seed: 1,
        certify: false,
    };
    let (ticket, cancel) = eng
        .submit_with_deadline(victim, None)
        .expect("admit victim");
    cancel.cancel();

    let err = ticket.wait().expect_err("cancelled job must not succeed");
    let JobError::DeadlineExceeded { detail } = &err else {
        panic!("expected DeadlineExceeded, got {err:?}");
    };
    assert!(
        detail.contains("solver not invoked"),
        "expired-in-queue detail names the skipped solver: {detail}"
    );
    busy.wait().expect("busy job unaffected");

    let stats = eng.stats();
    assert_eq!(stats.deadline_expired, 1);
    // The victim's shape (3,2,0) never reached the solver or the cache.
    assert!(
        !eng.cache()
            .resident()
            .iter()
            .any(|(shape, _, _)| (shape.m(), shape.p(), shape.q()) == (3, 2, 0)),
        "cancelled job must not have built a start bundle"
    );
    eng.shutdown();
}

#[test]
fn deadline_lapse_never_yields_partial_results() {
    let eng = engine(1, 8);
    // 1 ms against a cold multi-path job: the deadline lapses either in
    // the queue or between continuation paths — both must answer with
    // the structured error and withhold any partial solution set.
    let deadline = Instant::now() + Duration::from_millis(1);
    let (ticket, _cancel) = eng
        .submit_with_deadline(satellite_place(200), Some(deadline))
        .expect("admit");
    let err = ticket.wait().expect_err("lapsed deadline must not succeed");
    let JobError::DeadlineExceeded { detail } = &err else {
        panic!("expected DeadlineExceeded, got {err:?}");
    };
    assert!(
        detail.contains("solver not invoked") || detail.contains("partial results withheld"),
        "either shed in queue or stopped at a path boundary: {detail}"
    );
    assert_eq!(eng.stats().deadline_expired, 1);

    // The engine is unharmed: the same job without a deadline succeeds.
    let full = eng.run(satellite_place(200)).expect("no-deadline rerun");
    assert_eq!(full.solutions, 8);
    eng.shutdown();
}

// ---- raw-socket helpers ------------------------------------------------

/// Sends `requests` verbatim and reads `n` HTTP responses off the same
/// socket, returning `(status, parsed body)` per response.
fn raw_exchange(addr: std::net::SocketAddr, requests: &str, n: usize) -> Vec<(u16, Value)> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream.write_all(requests.as_bytes()).expect("send");
    let mut buf = Vec::new();
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    while out.len() < n {
        let got = stream.read(&mut chunk).expect("read");
        if got == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..got]);
        // Drain every complete response currently buffered.
        while let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..head_end]).expect("utf8 head");
            let status: u16 = head
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .expect("status code");
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse().ok())?
                })
                .expect("content-length");
            let body_start = head_end + 4;
            if buf.len() < body_start + content_length {
                break;
            }
            let body = std::str::from_utf8(&buf[body_start..body_start + content_length])
                .expect("utf8 body")
                .to_string();
            buf.drain(..body_start + content_length);
            out.push((status, minijson::parse(&body).expect("json body")));
        }
    }
    assert_eq!(out.len(), n, "expected {n} responses");
    out
}

fn post(path: &str, body: &Value, extra: &str, keep_alive: bool) -> String {
    let payload = body.serialize();
    let connection = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n{extra}\r\n{payload}",
        payload.len()
    )
}

// ---- pipelining --------------------------------------------------------

#[test]
fn pipelined_requests_answer_in_request_order() {
    let engine = Arc::new(engine(2, 16));
    let server = Server::start("127.0.0.1:0", engine).expect("bind");

    // Five requests on the wire before reading a byte: jobs with
    // distinct seeds interleaved with instant health checks. The
    // responses must come back in request order even though the fast
    // endpoints resolve long before the solves.
    let mut wire_bytes = String::new();
    for seed in 0..2u64 {
        wire_bytes.push_str(&post(
            "/v1/solve",
            &wire::request_to_json(&solve_req(seed)),
            "",
            true,
        ));
        wire_bytes
            .push_str("GET /healthz HTTP/1.1\r\nHost: test\r\nConnection: keep-alive\r\n\r\n");
    }
    wire_bytes.push_str("GET /v1/stats HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");

    let responses = raw_exchange(server.addr(), &wire_bytes, 5);
    for (i, (status, body)) in responses.iter().enumerate() {
        assert_eq!(*status, 200, "response {i}: {}", body.serialize());
    }
    // Order: solve, healthz, solve, healthz, stats.
    assert!(responses[0].1.get("solutions").is_some());
    assert_eq!(
        responses[1].1.get("ok").and_then(Value::as_bool),
        Some(true)
    );
    assert!(responses[2].1.get("solutions").is_some());
    assert_eq!(
        responses[3].1.get("ok").and_then(Value::as_bool),
        Some(true)
    );
    // The stats snapshot is taken when the request is *dispatched* —
    // pipelined requests execute concurrently, so the earlier solves
    // are submitted (FIFO parse order) but not necessarily completed.
    assert_eq!(
        responses[4].1.get("submitted").and_then(Value::as_usize),
        Some(2),
        "stats sees both solves admitted: {}",
        responses[4].1.serialize()
    );
    server.engine().shutdown();
    server.shutdown();
}

// ---- x-deadline-ms -----------------------------------------------------

#[test]
fn x_deadline_ms_sheds_expired_work_with_structured_503() {
    let engine = Arc::new(engine(1, 8));
    let server = Server::start("127.0.0.1:0", engine).expect("bind");

    // A zero budget has always lapsed by admission time: the job is
    // shed before it costs a queue slot, and the envelope says so.
    let req = post(
        "/v1/solve",
        &wire::request_to_json(&solve_req(9)),
        "x-deadline-ms: 0\r\n",
        false,
    );
    let responses = raw_exchange(server.addr(), &req, 1);
    let (status, body) = &responses[0];
    assert_eq!(*status, 503, "{}", body.serialize());
    let err = wire::error_from_json(body).expect("error envelope");
    assert_eq!(err.kind(), "deadline_exceeded");

    // A generous budget answers normally.
    let req = post(
        "/v1/solve",
        &wire::request_to_json(&solve_req(9)),
        "x-deadline-ms: 30000\r\n",
        false,
    );
    let responses = raw_exchange(server.addr(), &req, 1);
    assert_eq!(responses[0].0, 200, "{}", responses[0].1.serialize());

    // And a malformed one is a 400, not a silent default.
    let req = post(
        "/v1/solve",
        &wire::request_to_json(&solve_req(9)),
        "x-deadline-ms: soon\r\n",
        false,
    );
    let responses = raw_exchange(server.addr(), &req, 1);
    assert_eq!(responses[0].0, 400, "{}", responses[0].1.serialize());

    let stats = server.engine().stats();
    assert!(stats.shed >= 1, "the zero-budget job was counted as shed");
    server.engine().shutdown();
    server.shutdown();
}

// ---- overload ----------------------------------------------------------

#[test]
fn overload_sheds_structured_503_and_recovers() {
    // One worker, two queue slots, thirty concurrent cold-ish jobs:
    // most of the burst must be shed with the structured `queue_full`
    // envelope, every request must get *some* answer, and the server
    // must be fully usable afterwards.
    let engine = Arc::new(Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: 2,
        build_mode: BuildMode::Sequential,
        ..EngineConfig::default()
    }));
    let server = Server::start("127.0.0.1:0", engine).expect("bind");
    let addr = server.addr();

    let burst = 30usize;
    let answers: Vec<(u16, Value)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..burst)
            .map(|i| {
                scope.spawn(move || {
                    let client = Client::new(addr).expect("client");
                    client
                        .post(
                            "/v1/solve",
                            &wire::request_to_json(&satellite_place(i as u64)),
                        )
                        .expect("every request is answered")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    assert_eq!(answers.len(), burst, "zero dropped-but-unanswered requests");
    let ok = answers.iter().filter(|(s, _)| *s == 200).count();
    let shed = answers
        .iter()
        .filter(|(s, b)| {
            *s == 503
                && wire::error_from_json(b)
                    .map(|e| e.kind() == "queue_full")
                    .unwrap_or(false)
        })
        .count();
    assert_eq!(ok + shed, burst, "only 200s and structured queue_full 503s");
    assert!(ok >= 1, "the queue drained some of the burst");
    assert!(shed >= 1, "a 3-slot pipeline cannot absorb a burst of 30");

    // The sheds are visible in /v1/stats…
    let client = Client::new(addr).expect("client");
    let (status, stats) = client.get("/v1/stats").expect("stats");
    assert_eq!(status, 200);
    assert_eq!(
        stats.get("shed").and_then(Value::as_usize),
        Some(shed),
        "{}",
        stats.serialize()
    );
    // …and the connections stay usable after the storm.
    let warm = client.solve(&solve_req(77)).expect("post-overload solve");
    assert_eq!(warm.solutions, 2);
    assert!(client.health());
    server.engine().shutdown();
    server.shutdown();
}

// ---- warm restart ------------------------------------------------------

#[test]
fn warm_restart_answers_first_request_from_the_store() {
    let dir = std::env::temp_dir().join(format!("pieri-reactor-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || EngineConfig {
        workers: 1,
        queue_capacity: 8,
        build_mode: BuildMode::Sequential,
        bundle_store: Some(dir.clone()),
        ..EngineConfig::default()
    };

    // First server lifetime: a cold build, persisted on the way out.
    let server = Server::start("127.0.0.1:0", Arc::new(Engine::start(config()))).expect("bind");
    let client = Client::new(server.addr()).expect("client");
    let cold = client.solve(&solve_req(0)).expect("cold solve");
    assert!(!cold.cache_hit);
    server.engine().shutdown();
    server.shutdown();

    // Second lifetime, same store: the *first* request is already warm.
    let server = Server::start("127.0.0.1:0", Arc::new(Engine::start(config()))).expect("bind");
    let client = Client::new(server.addr()).expect("client");
    let warm = client
        .solve(&solve_req(0))
        .expect("first post-restart solve");
    assert!(
        warm.cache_hit,
        "restarted server answers its first request from the persisted bundle"
    );
    assert_eq!(warm.coeffs, cold.coeffs, "bitwise identical across restart");
    let stats = server.engine().stats();
    assert_eq!(stats.cache.restored, 1, "one bundle preloaded at startup");
    server.engine().shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
