//! Regression test for the `/v1/stats` coherence contract: every
//! snapshot taken *while* workers and submitters are mid-flight must
//! satisfy the documented invariants (`deadline_expired ≤ completed ≤
//! submitted`, `shed ≤ rejected`). The registry guarantees this by
//! registration order (each bounded counter reads before its bound)
//! plus increment order (every site bumps the bound first); this test
//! hammers `Engine::stats()` from sampler threads during a swarm of
//! valid, invalid, lapsed-deadline and queue-flooding submissions to
//! catch any regression in either ordering.
//!
//! Always-on (no `trace` feature needed): the metrics registry is
//! unconditional.

use pieri_service::{BuildMode, Engine, EngineConfig, JobRequest};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn quick_job(seed: u64) -> JobRequest {
    JobRequest::SolvePieri {
        m: 2,
        p: 2,
        q: 0,
        seed,
        certify: false,
    }
}

#[test]
fn stats_snapshots_hold_invariants_under_load() {
    let engine = Arc::new(Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 3,
        build_mode: BuildMode::Sequential,
        ..EngineConfig::default()
    }));
    let stop = Arc::new(AtomicBool::new(false));

    let samplers: Vec<_> = (0..2)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut checked = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let s = engine.stats();
                    assert!(
                        s.completed <= s.submitted,
                        "completed {} > submitted {}",
                        s.completed,
                        s.submitted
                    );
                    assert!(
                        s.deadline_expired <= s.completed,
                        "deadline_expired {} > completed {}",
                        s.deadline_expired,
                        s.completed
                    );
                    assert!(
                        s.shed <= s.rejected,
                        "shed {} > rejected {}",
                        s.shed,
                        s.rejected
                    );
                    assert!(s.queue_len <= s.queue_capacity);
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    let submitters: Vec<_> = (0..3)
        .map(|worker| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                for round in 0..30u64 {
                    // Valid work (one shape: warm after the first build).
                    let _ = engine.run(quick_job(worker * 1000 + round));
                    // Invalid request: rejected at admission.
                    let _ = engine.submit(JobRequest::SolvePieri {
                        m: 0,
                        p: 0,
                        q: 0,
                        seed: 1,
                        certify: false,
                    });
                    // Already-lapsed deadline: shed at admission.
                    let _ = engine.submit_with_deadline(
                        quick_job(round),
                        Some(Instant::now() - Duration::from_millis(1)),
                    );
                    // Async flood against the 3-deep queue: some of
                    // these shed as QueueFull under concurrency.
                    for burst in 0..4u64 {
                        let _ = engine.submit_async(
                            quick_job(worker * 10_000 + round * 10 + burst),
                            None,
                            0,
                            |_| {},
                        );
                    }
                }
            })
        })
        .collect();

    for t in submitters {
        t.join().expect("submitter");
    }
    stop.store(true, Ordering::SeqCst);
    let mut total_checked = 0usize;
    for t in samplers {
        total_checked += t.join().expect("sampler");
    }
    assert!(total_checked > 0, "samplers observed live snapshots");

    // Final quiescent snapshot: the swarm really produced the traffic
    // classes the invariants are about.
    let s = engine.stats();
    assert!(
        s.completed >= 90,
        "every valid run completed: {}",
        s.completed
    );
    assert!(s.rejected >= 90, "invalid submissions counted");
    assert!(s.shed >= 90, "lapsed deadlines shed");
    engine.shutdown();
}
