//! End-to-end HTTP smoke test: boot the server on an ephemeral port,
//! drive it with the blocking client, and verify the answers
//! *client-side* from the wire payload alone (rebuild the solution maps
//! from the returned compensator coefficients and check the closed-loop
//! characteristic polynomial at the prescribed poles).
//!
//! CI runs this file as the workflow's smoke job under both
//! `PIERI_NUM_THREADS` configurations.

use minijson::Value;
use pieri_core::PMap;
use pieri_num::seeded_rng;
use pieri_service::{wire, BuildMode, Client, Engine, EngineConfig, JobRequest, Server};
use std::sync::Arc;

fn boot() -> (Server, Client) {
    let engine = Arc::new(Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 16,
        build_mode: BuildMode::TreeParallel,
        ..EngineConfig::default()
    }));
    let server = Server::start("127.0.0.1:0", engine).expect("bind ephemeral port");
    let client = Client::new(server.addr()).expect("client");
    (server, client)
}

#[test]
fn place_satellite_poles_over_http() {
    let (server, client) = boot();
    assert!(client.health(), "healthz answers");

    let sat = pieri_control::satellite_plant(1.0);
    let mut rng = seeded_rng(31);
    let poles = pieri_control::conjugate_pole_set(5, &mut rng);
    let req = JobRequest::PlacePoles {
        a: sat.a.clone(),
        b: sat.b.clone(),
        c: sat.c.clone(),
        q: 1,
        poles: poles.clone(),
        seed: 2026,
    };

    let cold = client.solve(&req).expect("cold request");
    assert_eq!(cold.expected, 8, "d(2,2,1) = 8");
    assert_eq!(cold.solutions, 8);
    assert!(!cold.cache_hit);
    assert!(
        cold.max_residual < 1e-6,
        "server-side residual {:.2e}",
        cold.max_residual
    );

    // Client-side verification from wire data only: X(s) = [U(s); V(s)].
    for comp in &cold.compensators {
        let coeffs: Vec<_> = comp
            .u_coeffs
            .iter()
            .zip(&comp.v_coeffs)
            .map(|(u, v)| u.vstack(v))
            .collect();
        let map = PMap::from_coeff_matrices(coeffs);
        let (_, residual) = pieri_control::verify_closed_loop_ss(&sat, &map, &poles);
        assert!(residual < 1e-6, "client-side residual {residual:.2e}");
    }

    // Warm repeat: cache hit, bitwise-identical compensators.
    let warm = client.solve(&req).expect("warm request");
    assert!(warm.cache_hit, "second identical request is a cache hit");
    assert_eq!(warm.coeffs, cold.coeffs, "bitwise identical over the wire");

    // Stats reflect the traffic.
    let (status, stats) = client.get("/v1/stats").expect("stats");
    assert_eq!(status, 200);
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("misses").and_then(Value::as_usize), Some(1));
    assert!(cache.get("hits").and_then(Value::as_usize).unwrap_or(0) >= 1);

    server.engine().shutdown();
    server.shutdown();
}

#[test]
fn batch_endpoint_mixes_jobs_and_errors() {
    let (server, client) = boot();
    let jobs = Value::Array(vec![
        wire::request_to_json(&JobRequest::SolvePieri {
            m: 2,
            p: 2,
            q: 0,
            seed: 7,
        }),
        // Oversized job: must fail in its slot without sinking the batch.
        wire::request_to_json(&JobRequest::SolvePieri {
            m: 4,
            p: 4,
            q: 2,
            seed: 7,
        }),
        wire::request_to_json(&JobRequest::SolvePieri {
            m: 2,
            p: 2,
            q: 0,
            seed: 8,
        }),
    ]);
    let body = minijson::object([("jobs", jobs)]);
    let (status, response) = client.post("/v1/batch", &body).expect("batch");
    assert_eq!(status, 200);
    let results = response.get("results").and_then(Value::as_array).unwrap();
    assert_eq!(results.len(), 3);
    let first = wire::result_from_json(&results[0]).expect("first is a result");
    assert_eq!(first.solutions, 2);
    let second = wire::error_from_json(&results[1]).expect("second is an error");
    assert_eq!(second.kind(), "too_large");
    let third = wire::result_from_json(&results[2]).expect("third is a result");
    assert_eq!(third.solutions, 2);
    assert!(third.cache_hit, "batch shares the shape bundle");

    server.engine().shutdown();
    server.shutdown();
}

#[test]
fn http_error_surface() {
    let (server, client) = boot();

    // Unknown endpoint.
    let (status, body) = client.get("/nope").unwrap();
    assert_eq!(status, 404);
    assert!(body.get("error").is_some());

    // Wrong method.
    let (status, _) = client.get("/v1/solve").unwrap();
    assert_eq!(status, 405);

    // Malformed JSON body.
    let (status, body) = client
        .post("/v1/solve", &Value::String("not a job".into()))
        .unwrap();
    assert_eq!(status, 400, "{}", body.serialize());

    // Structurally valid JSON, invalid job.
    let bad = minijson::parse(r#"{"type":"solve_pieri","m":0,"p":1,"q":0,"seed":1}"#).unwrap();
    let (status, body) = client.post("/v1/solve", &bad).unwrap();
    assert_eq!(status, 400);
    let err = wire::error_from_json(&body).unwrap();
    assert_eq!(err.kind(), "invalid_request");

    // The server survived all of it.
    assert!(client.health());
    server.engine().shutdown();
    server.shutdown();
}
