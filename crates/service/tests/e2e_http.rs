//! End-to-end HTTP smoke test: boot the server on an ephemeral port,
//! drive it with the blocking client, and verify the answers
//! *client-side* from the wire payload alone (rebuild the solution maps
//! from the returned compensator coefficients and check the closed-loop
//! characteristic polynomial at the prescribed poles).
//!
//! CI runs this file as the workflow's smoke job under both
//! `PIERI_NUM_THREADS` configurations.

use minijson::Value;
use pieri_core::PMap;
use pieri_num::seeded_rng;
use pieri_service::{wire, BuildMode, Client, Engine, EngineConfig, JobRequest, Server};
use std::sync::Arc;

fn boot() -> (Server, Client) {
    let engine = Arc::new(Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 16,
        build_mode: BuildMode::TreeParallel,
        ..EngineConfig::default()
    }));
    let server = Server::start("127.0.0.1:0", engine).expect("bind ephemeral port");
    let client = Client::new(server.addr()).expect("client");
    (server, client)
}

#[test]
fn place_satellite_poles_over_http() {
    let (server, client) = boot();
    assert!(client.health(), "healthz answers");

    let sat = pieri_control::satellite_plant(1.0);
    let mut rng = seeded_rng(31);
    let poles = pieri_control::conjugate_pole_set(5, &mut rng);
    let req = JobRequest::PlacePoles {
        a: sat.a.clone(),
        b: sat.b.clone(),
        c: sat.c.clone(),
        q: 1,
        poles: poles.clone(),
        seed: 2026,
        certify: false,
    };

    let cold = client.solve(&req).expect("cold request");
    assert_eq!(cold.expected, 8, "d(2,2,1) = 8");
    assert_eq!(cold.solutions, 8);
    assert!(!cold.cache_hit);
    assert!(
        cold.max_residual < 1e-6,
        "server-side residual {:.2e}",
        cold.max_residual
    );

    // Client-side verification from wire data only: X(s) = [U(s); V(s)].
    for comp in &cold.compensators {
        let coeffs: Vec<_> = comp
            .u_coeffs
            .iter()
            .zip(&comp.v_coeffs)
            .map(|(u, v)| u.vstack(v))
            .collect();
        let map = PMap::from_coeff_matrices(coeffs);
        let (_, residual) = pieri_control::verify_closed_loop_ss(&sat, &map, &poles);
        assert!(residual < 1e-6, "client-side residual {residual:.2e}");
    }

    // Warm repeat: cache hit, bitwise-identical compensators.
    let warm = client.solve(&req).expect("warm request");
    assert!(warm.cache_hit, "second identical request is a cache hit");
    assert_eq!(warm.coeffs, cold.coeffs, "bitwise identical over the wire");

    // Stats reflect the traffic.
    let (status, stats) = client.get("/v1/stats").expect("stats");
    assert_eq!(status, 200);
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("misses").and_then(Value::as_usize), Some(1));
    assert!(cache.get("hits").and_then(Value::as_usize).unwrap_or(0) >= 1);

    server.engine().shutdown();
    server.shutdown();
}

#[test]
fn batch_endpoint_mixes_jobs_and_errors() {
    let (server, client) = boot();
    let jobs = Value::Array(vec![
        wire::request_to_json(&JobRequest::SolvePieri {
            m: 2,
            p: 2,
            q: 0,
            seed: 7,
            certify: false,
        }),
        // Oversized job: must fail in its slot without sinking the batch.
        wire::request_to_json(&JobRequest::SolvePieri {
            m: 4,
            p: 4,
            q: 2,
            seed: 7,
            certify: false,
        }),
        wire::request_to_json(&JobRequest::SolvePieri {
            m: 2,
            p: 2,
            q: 0,
            seed: 8,
            certify: false,
        }),
    ]);
    let body = minijson::object([("jobs", jobs)]);
    let (status, response) = client.post("/v1/batch", &body).expect("batch");
    assert_eq!(status, 200);
    let results = response.get("results").and_then(Value::as_array).unwrap();
    assert_eq!(results.len(), 3);
    let first = wire::result_from_json(&results[0]).expect("first is a result");
    assert_eq!(first.solutions, 2);
    let second = wire::error_from_json(&results[1]).expect("second is an error");
    assert_eq!(second.kind(), "too_large");
    let third = wire::result_from_json(&results[2]).expect("third is a result");
    assert_eq!(third.solutions, 2);
    assert!(third.cache_hit, "batch shares the shape bundle");

    server.engine().shutdown();
    server.shutdown();
}

#[test]
fn certified_satellite_placement_over_http() {
    let (server, client) = boot();
    let sat = pieri_control::satellite_plant(1.0);
    let mut rng = seeded_rng(32);
    let poles = pieri_control::conjugate_pole_set(5, &mut rng);
    let req = JobRequest::PlacePoles {
        a: sat.a.clone(),
        b: sat.b.clone(),
        c: sat.c.clone(),
        q: 1,
        poles: poles.clone(),
        seed: 2027,
        certify: true,
    };

    let res = client.solve(&req).expect("certified request");
    assert_eq!(res.solutions, 8, "d(2,2,1) = 8");
    assert_eq!(res.certificates.len(), 8, "one certificate per solution");
    for (i, cert) in res.certificates.iter().enumerate() {
        assert!(cert.is_certified(), "solution {i}: {cert:?}");
        assert!(cert.refined, "solution {i} must be double-double refined");
        assert!(
            cert.residual() <= 1e-13,
            "solution {i} refined residual {:e}",
            cert.residual()
        );
        let pr = cert.pole_residual.expect("pole residual present");
        assert!(pr < 1e-6, "solution {i} pole residual {pr:.2e}");
    }

    // The stats counters saw the certified traffic.
    let (status, stats) = client.get("/v1/stats").expect("stats");
    assert_eq!(status, 200);
    let certify = stats.get("certify").expect("certify block");
    assert_eq!(
        certify.get("certified").and_then(Value::as_usize),
        Some(8),
        "{}",
        stats.serialize()
    );
    assert_eq!(certify.get("refined").and_then(Value::as_usize), Some(8));
    assert_eq!(certify.get("failed").and_then(Value::as_usize), Some(0));

    server.engine().shutdown();
    server.shutdown();
}

#[test]
fn near_singular_certified_job_fails_structurally_never_panics() {
    // A repeated prescribed pole duplicates an interpolation condition:
    // at t = 1 two rows of the target system coincide, so the Jacobian
    // is singular AT the endpoints — the classic near-singular path.
    // With certify: true the job must exercise the bounded re-track
    // policy and come back as a structured `uncertified` wire error (or,
    // at worst, solutions stripped of `Certified` verdicts) — never a
    // panic, and the server must survive.
    let (server, client) = boot();
    let sat = pieri_control::satellite_plant(1.0);
    let mut rng = seeded_rng(33);
    let mut poles = pieri_control::conjugate_pole_set(5, &mut rng);
    poles[1] = poles[0];

    let req = JobRequest::PlacePoles {
        a: sat.a.clone(),
        b: sat.b.clone(),
        c: sat.c.clone(),
        q: 1,
        poles,
        seed: 2028,
        certify: true,
    };
    let job_failed = match client.solve(&req) {
        Err(e) => {
            assert_eq!(e.kind(), "uncertified", "{e}");
            true
        }
        Ok(res) => {
            // If tracking happened to limp through, certification must
            // have flagged every surviving endpoint as not certified.
            assert!(
                res.certificates.iter().all(|c| !c.is_certified()),
                "near-singular endpoints must not certify: {:?}",
                res.certificates
            );
            false
        }
    };

    // When paths actually failed, the bounded retries must have run
    // (failed-after-retrack implies retrack attempts — the policy is
    // enabled for certified jobs); the counter is numerics-dependent in
    // the limp-through case, so it is only asserted on the Err branch.
    let (_, stats) = client.get("/v1/stats").expect("stats");
    let retracked = stats
        .get("certify")
        .and_then(|c| c.get("retracked"))
        .and_then(Value::as_usize)
        .unwrap_or(0);
    if job_failed {
        assert!(retracked > 0, "{}", stats.serialize());
    }
    assert!(client.health(), "server survived the near-singular job");

    // And the engine still answers an ordinary certified job cleanly.
    let mut rng = seeded_rng(34);
    let good = JobRequest::PlacePoles {
        a: sat.a.clone(),
        b: sat.b.clone(),
        c: sat.c.clone(),
        q: 1,
        poles: pieri_control::conjugate_pole_set(5, &mut rng),
        seed: 2029,
        certify: true,
    };
    let res = client.solve(&good).expect("healthy certified request");
    assert!(res.certificates.iter().all(|c| c.is_certified()));

    server.engine().shutdown();
    server.shutdown();
}

#[test]
fn keep_alive_reuses_one_connection() {
    let (server, client) = boot();
    // 20 sequential requests on one pooled connection: all must answer,
    // and the pool must see the reuse (no per-request handler churn is
    // directly observable here, so assert on correctness + stats).
    for seed in 0..20u64 {
        let res = client
            .solve(&JobRequest::SolvePieri {
                m: 2,
                p: 2,
                q: 0,
                seed,
                certify: false,
            })
            .expect("keep-alive request");
        assert_eq!(res.solutions, 2);
    }
    let (status, stats) = client.get("/v1/stats").expect("stats over same conn");
    assert_eq!(status, 200);
    assert_eq!(
        stats.get("completed").and_then(Value::as_usize),
        Some(20),
        "{}",
        stats.serialize()
    );
    server.engine().shutdown();
    server.shutdown();
}

#[test]
fn http_error_surface() {
    let (server, client) = boot();

    // Unknown endpoint.
    let (status, body) = client.get("/nope").unwrap();
    assert_eq!(status, 404);
    assert!(body.get("error").is_some());

    // Wrong method.
    let (status, _) = client.get("/v1/solve").unwrap();
    assert_eq!(status, 405);

    // Malformed JSON body.
    let (status, body) = client
        .post("/v1/solve", &Value::String("not a job".into()))
        .unwrap();
    assert_eq!(status, 400, "{}", body.serialize());

    // Structurally valid JSON, invalid job.
    let bad = minijson::parse(r#"{"type":"solve_pieri","m":0,"p":1,"q":0,"seed":1}"#).unwrap();
    let (status, body) = client.post("/v1/solve", &bad).unwrap();
    assert_eq!(status, 400);
    let err = wire::error_from_json(&body).unwrap();
    assert_eq!(err.kind(), "invalid_request");

    // The server survived all of it.
    assert!(client.health());
    server.engine().shutdown();
    server.shutdown();
}
