//! Engine-level integration tests: cache determinism and concurrent
//! submission stress. CI runs this file under both `PIERI_NUM_THREADS`
//! unset and `=1`, so every scenario is exercised with a full pool and
//! a single-thread pool.

use pieri_num::seeded_rng;
use pieri_service::{BuildMode, Engine, EngineConfig, JobRequest};
use std::sync::Arc;

fn engine(workers: usize, capacity: usize, mode: BuildMode) -> Engine {
    Engine::start(EngineConfig {
        workers,
        queue_capacity: capacity,
        build_mode: mode,
        ..EngineConfig::default()
    })
}

fn satellite_place(seed: u64) -> JobRequest {
    let sat = pieri_control::satellite_plant(1.0);
    let mut rng = seeded_rng(9);
    JobRequest::PlacePoles {
        a: sat.a.clone(),
        b: sat.b.clone(),
        c: sat.c.clone(),
        q: 1,
        poles: pieri_control::conjugate_pole_set(5, &mut rng),
        seed,
        certify: false,
    }
}

/// Same seed + shape twice: the second run must report a cache hit and
/// produce bitwise-identical compensators.
#[test]
fn cache_determinism_bitwise() {
    let engine = engine(2, 16, BuildMode::TreeParallel);
    let cold = engine.run(satellite_place(1234)).unwrap();
    let warm = engine.run(satellite_place(1234)).unwrap();

    assert!(!cold.cache_hit, "first request builds the bundle");
    assert!(warm.cache_hit, "second request hits the shape cache");
    assert_eq!(cold.solutions, 8, "d(2,2,1) = 8 compensators");
    assert_eq!(warm.solutions, 8);
    assert_eq!(warm.coeffs, cold.coeffs, "raw coefficients bitwise equal");
    assert_eq!(warm.compensators.len(), cold.compensators.len());
    for (a, b) in cold.compensators.iter().zip(&warm.compensators) {
        for (ua, ub) in a.u_coeffs.iter().zip(&b.u_coeffs) {
            for i in 0..ua.rows() {
                for j in 0..ua.cols() {
                    assert_eq!(ua[(i, j)], ub[(i, j)], "U coeff ({i},{j})");
                }
            }
        }
        for (va, vb) in a.v_coeffs.iter().zip(&b.v_coeffs) {
            for i in 0..va.rows() {
                for j in 0..va.cols() {
                    assert_eq!(va[(i, j)], vb[(i, j)], "V coeff ({i},{j})");
                }
            }
        }
    }
    assert!(
        cold.max_residual < 1e-6,
        "poles placed: {:.2e}",
        cold.max_residual
    );
    engine.shutdown();
}

/// The warm path must track only the d(m,p,q) continuation paths — the
/// measured point of the cache.
#[test]
fn warm_path_tracks_only_root_paths() {
    let engine = engine(1, 8, BuildMode::Sequential);
    let _ = engine.run(satellite_place(5)).unwrap();
    let warm = engine.run(satellite_place(6)).unwrap();
    assert!(warm.cache_hit);
    assert_eq!(warm.track.total(), 8, "8 continuation paths, no tree");
    assert!(warm.bundle_build.is_zero());
    engine.shutdown();
}

/// Many clients, jobs ≫ workers: everything completes, the shape is
/// built exactly once, all remaining requests hit.
#[test]
fn stress_more_jobs_than_workers() {
    let engine = Arc::new(engine(2, 64, BuildMode::Sequential));
    let clients = 8;
    let per_client = 4;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                (0..per_client)
                    .map(|i| {
                        let req = JobRequest::SolvePieri {
                            m: 2,
                            p: 2,
                            q: 0,
                            seed: (c * per_client + i) as u64,
                            certify: false,
                        };
                        engine.run(req).unwrap()
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut total = 0;
    for h in handles {
        for res in h.join().expect("client thread") {
            assert_eq!(res.solutions, 2);
            assert!(res.max_residual < 1e-7);
            total += 1;
        }
    }
    assert_eq!(total, clients * per_client);
    let stats = engine.stats();
    assert_eq!(stats.completed, total);
    assert_eq!(stats.cache.misses, 1, "one shape, one build");
    assert_eq!(stats.cache.hits, total - 1);
    engine.shutdown();
}

/// Workers ≫ jobs across several shapes at once: concurrent cold builds
/// of *different* shapes must not interfere (each is built once).
#[test]
fn stress_more_workers_than_jobs() {
    let engine = Arc::new(engine(8, 64, BuildMode::Sequential));
    let shapes = [(2usize, 2usize, 0usize), (3, 2, 0), (2, 1, 1)];
    let handles: Vec<_> = shapes
        .iter()
        .map(|&(m, p, q)| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                engine
                    .run(JobRequest::SolvePieri {
                        m,
                        p,
                        q,
                        seed: 3,
                        certify: false,
                    })
                    .unwrap()
            })
        })
        .collect();
    for h in handles {
        let res = h.join().expect("client thread");
        assert!(res.solutions >= 1);
        assert!(res.max_residual < 1e-7);
    }
    let stats = engine.stats();
    assert_eq!(stats.cache.shapes, shapes.len());
    assert_eq!(stats.cache.misses, shapes.len());
    engine.shutdown();
}

/// Concurrent requests for the *same* cold shape: exactly one build, the
/// rest share it, and all answers for the same seed are identical.
#[test]
fn stress_same_cold_shape_races() {
    let engine = Arc::new(engine(6, 64, BuildMode::Sequential));
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                engine
                    .run(JobRequest::SolvePieri {
                        m: 2,
                        p: 2,
                        q: 0,
                        seed: 42,
                        certify: false,
                    })
                    .unwrap()
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &results[1..] {
        assert_eq!(r.coeffs, results[0].coeffs, "same seed, same answer");
    }
    let stats = engine.stats();
    assert_eq!(stats.cache.misses, 1, "the race produced exactly one build");
    assert_eq!(stats.cache.hits, 5);
    engine.shutdown();
}
