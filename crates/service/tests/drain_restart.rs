//! Zero-downtime restart and idle-sweep end-to-end tests (no chaos
//! feature needed): a drain hands the port to a replacement server via
//! `SO_REUSEPORT` with zero failed non-shed requests mid-swarm, and
//! the reactor's idle sweep enforces the per-server budgets from
//! [`ServerOptions`] while exempting connections with work in flight.

use pieri_service::{
    BuildMode, Client, Engine, EngineConfig, JobRequest, RetryPolicy, Server, ServerOptions,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn engine_config(dir: Option<std::path::PathBuf>) -> EngineConfig {
    EngineConfig {
        workers: 2,
        queue_capacity: 64,
        build_mode: BuildMode::Sequential,
        bundle_store: dir,
        ..EngineConfig::default()
    }
}

fn solve_req(seed: u64) -> JobRequest {
    JobRequest::SolvePieri {
        m: 2,
        p: 2,
        q: 0,
        seed,
        certify: false,
    }
}

// ---- zero-downtime restart ---------------------------------------------

/// Restart mid-swarm: server A (bound with `SO_REUSEPORT`) serves a
/// swarm of retrying clients; server B starts on the *same* port and
/// A drains. Every request in the swarm must succeed — no failed
/// non-shed requests across the handoff — with bit-identical results
/// whichever server answered, and the two engines' ledgers must
/// account for every answer exactly once.
#[test]
fn zero_downtime_restart_mid_swarm() {
    let dir = std::env::temp_dir().join(format!("pieri-drain-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let reuse = || ServerOptions {
        reuseport: true,
        ..ServerOptions::default()
    };

    let engine_a = Arc::new(Engine::start(engine_config(Some(dir.clone()))));
    let server_a = Server::start_with("127.0.0.1:0", Arc::clone(&engine_a), reuse())
        .expect("bind A with SO_REUSEPORT");
    let addr = server_a.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let next_seed = Arc::new(AtomicU64::new(0));
    let answers: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let stop = Arc::clone(&stop);
                let next_seed = Arc::clone(&next_seed);
                scope.spawn(move || {
                    let client =
                        Client::with_retry(addr, Duration::from_secs(30), RetryPolicy::attempts(6))
                            .expect("client");
                    let mut answers = Vec::new();
                    while !stop.load(Ordering::SeqCst) {
                        let seed = next_seed.fetch_add(1, Ordering::SeqCst) % 3;
                        let result = client
                            .solve(&solve_req(seed))
                            .expect("zero failed non-shed requests across the restart");
                        answers.push((seed, result.coeffs));
                    }
                    answers
                })
            })
            .collect();

        // Mid-swarm: start the replacement on the same port, then
        // drain the old server under a generous deadline.
        std::thread::sleep(Duration::from_millis(150));
        let engine_b = Arc::new(Engine::start(engine_config(Some(dir.clone()))));
        let server_b = Server::start_with(&addr.to_string(), Arc::clone(&engine_b), reuse())
            .expect("bind B on the same port while A still serves");
        let drained = server_a.drain(Duration::from_secs(30));
        assert!(drained, "every connection of A drained before the deadline");

        // The swarm keeps hammering B alone for a while, then stops.
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::SeqCst);
        let answers: Vec<_> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("swarm thread"))
            .collect();

        // Exactly-once ledger: every client success is one completed
        // job on exactly one of the two engines, and nothing was lost.
        let stats_a = engine_a.stats();
        let stats_b = engine_b.stats();
        assert_eq!(stats_a.completed, stats_a.submitted, "A drained clean");
        assert_eq!(
            stats_a.completed + stats_b.completed,
            answers.len(),
            "A={stats_a:?}\nB={stats_b:?}"
        );
        assert!(
            stats_b.completed >= 1,
            "the replacement server took over the swarm: {stats_b:?}"
        );

        server_b.shutdown();
        engine_b.shutdown();
        answers
    });
    engine_a.shutdown();

    assert!(
        answers.len() >= 8,
        "the swarm made progress through the restart: {} answers",
        answers.len()
    );
    // Bit-identical results regardless of which server answered.
    for seed in 0..3u64 {
        let mut per_seed = answers.iter().filter(|(s, _)| *s == seed);
        if let Some((_, first)) = per_seed.next() {
            for (_, coeffs) in per_seed {
                assert_eq!(coeffs, first, "seed {seed} differed across the restart");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A drain on a quiescent server completes immediately and reports
/// clean; afterwards the port is free for an exclusive bind.
#[test]
fn drain_of_quiescent_server_is_clean() {
    let engine = Arc::new(Engine::start(engine_config(None)));
    let server = Server::start_with(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerOptions {
            reuseport: true,
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    let client = Client::new(addr).expect("client");
    assert!(client.health());
    drop(client); // release the kept-alive connection before draining
    std::thread::sleep(Duration::from_millis(50));
    assert!(server.drain(Duration::from_secs(10)), "nothing to drain");
    // The port is released: a plain exclusive bind now succeeds.
    let rebound = std::net::TcpListener::bind(addr);
    assert!(rebound.is_ok(), "port still held after drain: {rebound:?}");
    engine.shutdown();
}

// ---- idle sweep --------------------------------------------------------

/// Reads until EOF (or panics on timeout), returning how long it took.
fn read_to_eof(stream: &mut TcpStream, budget: Duration) -> Duration {
    stream.set_read_timeout(Some(budget)).expect("timeout");
    let started = Instant::now();
    let mut sink = [0u8; 4096];
    loop {
        match stream.read(&mut sink) {
            Ok(0) => return started.elapsed(),
            Ok(_) => continue,
            Err(e) => panic!("expected server-side close, got {e}"),
        }
    }
}

/// A quiescent kept-alive connection is closed once it outlives the
/// server's `keep_alive_idle` budget.
#[test]
fn idle_keep_alive_connection_is_swept() {
    let engine = Arc::new(Engine::start(engine_config(None)));
    let server = Server::start_with(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerOptions {
            keep_alive_idle: Duration::from_millis(200),
            ..ServerOptions::default()
        },
    )
    .expect("bind");

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n")
        .expect("send");
    // One answered request, then silence: the sweep must close us.
    let elapsed = read_to_eof(&mut stream, Duration::from_secs(10));
    assert!(
        elapsed >= Duration::from_millis(150),
        "closed before the idle budget could have lapsed: {elapsed:?}"
    );
    server.engine().shutdown();
    server.shutdown();
}

/// A stalled transfer — half a request head, then nothing — is closed
/// once it outlives the server's `io_timeout` budget.
#[test]
fn stalled_partial_request_is_swept() {
    let engine = Arc::new(Engine::start(engine_config(None)));
    let server = Server::start_with(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerOptions {
            keep_alive_idle: Duration::from_secs(10),
            io_timeout: Duration::from_millis(300),
            ..ServerOptions::default()
        },
    )
    .expect("bind");

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.write_all(b"GET /healthz HT").expect("partial head");
    let elapsed = read_to_eof(&mut stream, Duration::from_secs(10));
    assert!(
        elapsed >= Duration::from_millis(250),
        "closed before the stall budget could have lapsed: {elapsed:?}"
    );
    server.engine().shutdown();
    server.shutdown();
}

/// A connection whose request is queued behind a busy worker is exempt
/// from the sweep: the engine's deadlines govern job latency, not the
/// transport's idle budgets.
#[test]
fn connection_with_queued_job_outlives_the_sweep_budgets() {
    let engine = Arc::new(Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: 16,
        build_mode: BuildMode::Sequential,
        ..EngineConfig::default()
    }));
    // Occupy the single worker with cold, distinct-shape builds so the
    // HTTP request below waits well past the tiny sweep budgets.
    let busy: Vec<_> = [(3usize, 2usize), (4, 2)]
        .iter()
        .map(|&(m, p)| {
            engine
                .submit(JobRequest::SolvePieri {
                    m,
                    p,
                    q: 0,
                    seed: 1,
                    certify: false,
                })
                .expect("admit busy job")
        })
        .collect();
    let server = Server::start_with(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerOptions {
            keep_alive_idle: Duration::from_millis(100),
            io_timeout: Duration::from_millis(200),
            ..ServerOptions::default()
        },
    )
    .expect("bind");

    let client = Client::new(server.addr()).expect("client");
    let result = client
        .solve(&solve_req(7))
        .expect("queued request answered, not swept");
    assert_eq!(result.solutions, 2);
    for ticket in busy {
        ticket.wait().expect("busy job");
    }
    server.engine().shutdown();
    server.shutdown();
}
