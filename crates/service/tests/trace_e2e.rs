//! Gated end-to-end trace test (`cargo test -p pieri-service --test
//! trace_e2e --features trace`): boots the server with tracing
//! installed, sends a solve carrying an explicit `x-trace-id`, and
//! resolves that id through `/v1/trace/<id>` to a span tree covering
//! queue → track → render. Also validates `/v1/metrics` as Prometheus
//! text exposition with the trace crate's own parser.
//!
//! Raw sockets instead of [`pieri_service::Client`]: the assertions
//! are about exact response *headers* (`x-trace-id`), which the
//! blocking client deliberately does not expose.

use minijson::Value;
use pieri_service::pieri_trace::{self, TraceConfig};
use pieri_service::{BuildMode, Engine, EngineConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn boot() -> (Server, SocketAddr) {
    let engine = Arc::new(Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 16,
        build_mode: BuildMode::Sequential,
        ..EngineConfig::default()
    }));
    let server = Server::start("127.0.0.1:0", engine).expect("bind ephemeral port");
    let addr = server.addr();
    (server, addr)
}

/// One raw HTTP/1.1 exchange on a fresh connection; returns the status
/// code, the response headers (lower-cased names), and the body.
fn exchange(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n");
    for (name, value) in extra_headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, payload) = text.split_once("\r\n\r\n").expect("header terminator");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(n, v)| (n.to_ascii_lowercase(), v.to_string()))
        .collect();
    (status, headers, payload.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn trace_id_resolves_to_span_tree() {
    pieri_trace::install(TraceConfig::default());
    let (server, addr) = boot();

    // A client-minted trace id rides the request and comes back
    // normalized on the response.
    let job = r#"{"type":"solve_pieri","m":2,"p":2,"q":0,"seed":7,"certify":false}"#;
    let (status, headers, body) =
        exchange(addr, "POST", "/v1/solve", &[("x-trace-id", "abc123")], job);
    assert_eq!(status, 200, "solve failed: {body}");
    assert_eq!(
        header(&headers, "x-trace-id"),
        Some("0000000000abc123"),
        "client trace id is honoured and echoed zero-padded"
    );

    // The id resolves to the recorded span tree. The solve's spans are
    // recorded before its response bytes are written, so by the time
    // this second request runs they are queryable.
    let (status, _, body) = exchange(addr, "GET", "/v1/trace/abc123", &[], "");
    assert_eq!(status, 200, "trace lookup failed: {body}");
    let v = minijson::parse(&body).expect("trace JSON");
    assert_eq!(
        v.get("trace_id").and_then(Value::as_str),
        Some("0000000000abc123")
    );
    let spans = v
        .get("spans")
        .and_then(Value::as_array)
        .expect("spans array");
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Value::as_str))
        .collect();
    for expected in ["queue.wait", "track", "render", "request"] {
        assert!(
            names.contains(&expected),
            "span tree missing {expected:?}: {names:?}"
        );
    }
    for span in spans {
        let dur = span.get("dur_us").and_then(Value::as_u64);
        assert!(dur.is_some(), "every span carries a duration: {body}");
    }

    // Unknown and malformed ids answer structured 404s.
    let (status, _, _) = exchange(addr, "GET", "/v1/trace/ffffffffffffffff", &[], "");
    assert_eq!(status, 404);
    let (status, _, _) = exchange(addr, "GET", "/v1/trace/not-hex", &[], "");
    assert_eq!(status, 404);
    // And the endpoint rejects non-GET methods like its peers.
    let (status, _, _) = exchange(addr, "POST", "/v1/trace/abc123", &[], "");
    assert_eq!(status, 405);

    server.shutdown();
}

#[test]
fn server_mints_ids_when_absent() {
    pieri_trace::install(TraceConfig::default());
    let (server, addr) = boot();

    let (status, headers, _) = exchange(addr, "GET", "/healthz", &[], "");
    assert_eq!(status, 200);
    let minted = header(&headers, "x-trace-id").expect("server-minted trace id");
    assert_eq!(minted.len(), 16, "zero-padded 64-bit hex");
    assert!(minted.chars().all(|c| c.is_ascii_hexdigit()));
    assert_ne!(minted, "0000000000000000");

    // A malformed inbound id is treated as absent, never a 400.
    let (status, headers, _) = exchange(addr, "GET", "/healthz", &[("x-trace-id", "zzzz-bad")], "");
    assert_eq!(status, 200);
    let fresh = header(&headers, "x-trace-id").expect("fresh id for malformed header");
    assert_ne!(fresh, "zzzz-bad");

    server.shutdown();
}

#[test]
fn metrics_exposition_is_valid_and_coherent_with_stats() {
    pieri_trace::install(TraceConfig::default());
    let (server, addr) = boot();

    let job = r#"{"type":"solve_pieri","m":2,"p":2,"q":0,"seed":9,"certify":false}"#;
    let (status, _, _) = exchange(addr, "POST", "/v1/solve", &[], job);
    assert_eq!(status, 200);

    let (status, headers, text) = exchange(addr, "GET", "/v1/metrics", &[], "");
    assert_eq!(status, 200);
    assert!(
        header(&headers, "content-type")
            .is_some_and(|ct| ct.starts_with("text/plain; version=0.0.4")),
        "Prometheus exposition content type"
    );
    let series = pieri_trace::validate_exposition(&text).expect("valid exposition");
    assert!(series > 0, "exposition carries series");
    assert!(text.contains("pieri_jobs_submitted_total"));
    assert!(text.contains("pieri_job_solve_us_bucket"));
    assert!(text.contains("pieri_http_requests_total{path=\"/v1/solve\"}"));

    // `/v1/stats` and `/v1/metrics` read the same registry: the
    // completed count agrees (no more traffic between the reads can
    // decrement it, so >= is the stable assertion).
    let (_, _, stats) = exchange(addr, "GET", "/v1/stats", &[], "");
    let v = minijson::parse(&stats).expect("stats JSON");
    let completed = v.get("completed").and_then(Value::as_usize).unwrap_or(0);
    assert!(completed >= 1, "solve counted as completed");

    server.shutdown();
}
