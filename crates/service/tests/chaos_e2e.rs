//! Chaos suite (`--features chaos`): the service under a deterministic
//! fault plan must answer every request exactly once, with the same
//! bits a fault-free run produces, and its stats must agree with what
//! the clients observed.
//!
//! The fault registry is process-global, so every test takes the
//! [`ChaosGuard`]: a static mutex serialising the tests plus an
//! install-on-entry / clear-on-drop of the test's plan (clearing also
//! happens when the test panics, so one failure cannot leak faults
//! into the next test).

use pieri_service::pieri_chaos::{self, FaultPlan};
use pieri_service::{
    BuildMode, Client, Engine, EngineConfig, JobRequest, RetryPolicy, Server, SupervisorConfig,
};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Serialises chaos tests and scopes their fault plan.
struct ChaosGuard {
    _lock: MutexGuard<'static, ()>,
    plan: Arc<FaultPlan>,
}

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

impl ChaosGuard {
    fn install(spec: &str) -> ChaosGuard {
        let lock = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let plan = Arc::new(FaultPlan::parse(spec).expect("fault plan"));
        pieri_chaos::install(Arc::clone(&plan));
        ChaosGuard { _lock: lock, plan }
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        pieri_chaos::clear();
    }
}

/// A supervisor tuned for tests: wedges detected in ~150 ms instead of
/// the production 30 s.
fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        tick: Duration::from_millis(25),
        stall_timeout: Duration::from_millis(150),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
    }
}

fn engine_with(workers: usize, supervisor: SupervisorConfig) -> Engine {
    Engine::start(EngineConfig {
        workers,
        queue_capacity: 32,
        build_mode: BuildMode::Sequential,
        supervisor,
        ..EngineConfig::default()
    })
}

fn solve_req(seed: u64) -> JobRequest {
    JobRequest::SolvePieri {
        m: 2,
        p: 2,
        q: 0,
        seed,
        certify: false,
    }
}

/// Watchdog: runs `f` on a helper thread and fails the test if it
/// exceeds `timeout` — a chaos bug that wedges a wait must fail
/// loudly, not hang the suite.
fn within<T: Send + 'static>(timeout: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(timeout)
        .expect("watchdog: operation wedged")
}

// ---- supervised workers ------------------------------------------------

/// A worker panicking *while holding the queue lock* poisons the
/// engine's central mutex. Concurrent submitters must sail through the
/// poison (lock_recover), the supervisor must restart the dead worker,
/// and every job must still be answered — with the same bits a clean
/// engine produces.
#[test]
fn queue_lock_panic_recovers_under_concurrent_load() {
    let guard = ChaosGuard::install("worker.panic@1");
    let eng = Arc::new(engine_with(2, fast_supervisor()));
    let chaotic: Vec<_> = within(Duration::from_secs(60), {
        let eng = Arc::clone(&eng);
        move || {
            // Submit everything up front so admissions race the panic,
            // then collect: every ticket must resolve successfully.
            let tickets: Vec<_> = (0..8)
                .map(|seed| eng.submit(solve_req(seed)).expect("admitted"))
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait().expect("answered despite the panic"))
                .collect()
        }
    });
    let stats = eng.stats();
    assert!(
        stats.workers_restarted >= 1,
        "the panicked worker was restarted: {stats:?}"
    );
    assert_eq!(stats.completed, 8, "every job answered exactly once");
    assert_eq!(guard.plan.fired("worker.panic"), 1);
    eng.shutdown();
    drop(guard);

    // Bitwise determinism: a fault-free engine answers identically.
    let clean_eng = Arc::new(engine_with(2, fast_supervisor()));
    for (seed, chaotic_result) in chaotic.iter().enumerate() {
        let clean = clean_eng.run(solve_req(seed as u64)).expect("clean run");
        assert_eq!(
            clean.coeffs, chaotic_result.coeffs,
            "seed {seed}: chaos must not change the answer"
        );
    }
    clean_eng.shutdown();
}

/// A worker panicking *after claiming a job* (solver not yet invoked)
/// dies with the claim in its slot. The supervisor must requeue that
/// claim replay-safely — the client still gets exactly one successful
/// answer — and count it in `jobs_recovered`.
#[test]
fn claimed_job_is_requeued_replay_safely() {
    let guard = ChaosGuard::install("worker.panic.job@1");
    let eng = Arc::new(engine_with(1, fast_supervisor()));
    let result = within(Duration::from_secs(60), {
        let eng = Arc::clone(&eng);
        move || eng.run(solve_req(5)).expect("recovered and answered")
    });
    assert_eq!(result.solutions, 2);
    let stats = eng.stats();
    assert_eq!(stats.jobs_recovered, 1, "the claim was requeued: {stats:?}");
    assert!(stats.workers_restarted >= 1);
    assert_eq!(stats.completed, 1, "exactly one answer");
    assert_eq!(guard.plan.fired("worker.panic.job"), 1);
    eng.shutdown();
}

/// A wedged worker (stalled pre-solve, far past the stall timeout) is
/// failed over: the supervisor detaches it, requeues its claim, and a
/// replacement answers. The wedged thread, waking later, must notice
/// its generation is stale and touch nothing.
#[test]
fn wedged_worker_is_failed_over() {
    let guard = ChaosGuard::install("worker.wedge@1:ms=3000");
    let eng = Arc::new(engine_with(1, fast_supervisor()));
    let result = within(Duration::from_secs(60), {
        let eng = Arc::clone(&eng);
        move || eng.run(solve_req(9)).expect("failed over and answered")
    });
    assert_eq!(result.solutions, 2);
    let stats = eng.stats();
    assert!(stats.workers_restarted >= 1, "{stats:?}");
    assert!(stats.jobs_recovered >= 1, "{stats:?}");
    assert_eq!(guard.plan.fired("worker.wedge"), 1);
    eng.shutdown();
}

// ---- socket storms -----------------------------------------------------

/// A swarm against a server whose sockets misbehave on a seeded
/// schedule — spurious wakeups, EAGAIN storms, short reads and writes.
/// Every request must be answered exactly once with a bit-identical
/// result, and the server's stats must agree with the client count.
#[test]
fn socket_fault_storm_answers_every_request_exactly_once() {
    let guard = ChaosGuard::install(
        "seed=11; poll.spurious/5; sock.read.eagain%0.2; sock.read.short/3:n=7; \
         sock.write.eagain%0.2; sock.write.short/2:n=9",
    );
    let engine = Arc::new(engine_with(2, fast_supervisor()));
    let server = Server::start("127.0.0.1:0", engine).expect("bind");
    let addr = server.addr();

    let threads = 4usize;
    let per_thread = 5usize;
    let answers: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let client =
                        Client::with_retry(addr, Duration::from_secs(30), RetryPolicy::attempts(4))
                            .expect("client");
                    (0..per_thread)
                        .map(|i| {
                            let seed = (t * per_thread + i) as u64 % 3;
                            let result = client.solve(&solve_req(seed)).expect("answered");
                            (seed, result.coeffs)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("join"))
            .collect()
    });
    assert_eq!(answers.len(), threads * per_thread);

    // Bitwise determinism under chaos: every solve of a seed matches
    // every other solve of that seed, across threads and retries.
    for seed in 0..3u64 {
        let mut per_seed = answers.iter().filter(|(s, _)| *s == seed);
        let first = per_seed.next().expect("seed present").1.clone();
        for (_, coeffs) in per_seed {
            assert_eq!(*coeffs, first, "seed {seed} answered differently");
        }
    }

    // Stats agree with the swarm: one execution per request, nothing
    // lost, nothing doubled.
    let stats = server.engine().stats();
    assert_eq!(stats.submitted, threads * per_thread, "{stats:?}");
    assert_eq!(stats.completed, stats.submitted, "{stats:?}");

    // The storm actually stormed.
    assert!(guard.plan.fired("poll.spurious") >= 1);
    assert!(guard.plan.fired("sock.read.eagain") >= 1);
    assert!(guard.plan.fired("sock.write.short") >= 1);
    server.engine().shutdown();
    server.shutdown();
}

/// Accepted connections dropped on the floor are the client's
/// replay-safe retry case: a retrying client must get through once the
/// scheduled failures are spent.
#[test]
fn dropped_accepts_are_survived_by_retry() {
    let guard = ChaosGuard::install("sock.accept.fail@1..2");
    let engine = Arc::new(engine_with(1, fast_supervisor()));
    let server = Server::start("127.0.0.1:0", engine).expect("bind");
    let client = Client::with_retry(
        server.addr(),
        Duration::from_secs(10),
        RetryPolicy::attempts(5),
    )
    .expect("client");
    let (status, body) = client.get("/healthz").expect("retries get through");
    assert_eq!(status, 200, "{}", body.serialize());
    assert_eq!(guard.plan.fired("sock.accept.fail"), 2);
    server.engine().shutdown();
    server.shutdown();
}

// ---- store faults ------------------------------------------------------

/// A torn bundle write (simulated crash mid-save) must leave nothing
/// behind that a restarted engine trusts: the next lifetime rebuilds
/// cold and lands on bit-identical coefficients.
#[test]
fn torn_store_write_rebuilds_bitwise_identically() {
    let dir = std::env::temp_dir().join(format!("pieri-chaos-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || EngineConfig {
        workers: 1,
        queue_capacity: 8,
        build_mode: BuildMode::Sequential,
        bundle_store: Some(dir.clone()),
        ..EngineConfig::default()
    };

    let guard = ChaosGuard::install("store.write.torn@1");
    let eng = Engine::start(config());
    let cold = eng.run(solve_req(3)).expect("cold solve");
    assert!(!cold.cache_hit);
    eng.shutdown();
    assert_eq!(guard.plan.fired("store.write.torn"), 1);
    drop(guard); // chaos off for the restart

    let eng = Engine::start(config());
    let rebuilt = eng.run(solve_req(3)).expect("post-crash solve");
    assert!(
        !rebuilt.cache_hit,
        "the torn save must not have produced a loadable bundle"
    );
    assert_eq!(rebuilt.coeffs, cold.coeffs, "rebuild is bit-identical");
    let stats = eng.stats();
    assert_eq!(stats.cache.restored, 0);
    assert_eq!(stats.cache.store_recovered, 0);
    eng.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A full disk (injected ENOSPC) must degrade persistence, not
/// service: the solve still answers, and the next lifetime simply
/// rebuilds.
#[test]
fn enospc_on_save_degrades_to_no_persistence() {
    let dir = std::env::temp_dir().join(format!("pieri-chaos-enospc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let guard = ChaosGuard::install("store.write.enospc@1");
    let eng = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: 8,
        build_mode: BuildMode::Sequential,
        bundle_store: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let result = eng.run(solve_req(4)).expect("solve unaffected by ENOSPC");
    assert_eq!(result.solutions, 2);
    assert_eq!(guard.plan.fired("store.write.enospc"), 1);
    eng.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
