//! Property tests: the JSON wire format round-trips every value it can
//! carry, bitwise. Complex numbers ride on shortest-exact `f64`
//! formatting, so `encode → serialize → parse → decode` must reproduce
//! the input bits, not just something close.

use pieri_linalg::CMat;
use pieri_num::Complex64;
use pieri_service::wire::{
    complex_from_json, complex_to_json, mat_from_json, mat_to_json, request_from_json,
    request_to_json, result_from_json, result_to_json,
};
use pieri_service::{CompensatorAnswer, JobRequest, JobResult};
use proptest::prelude::*;

fn any_f64() -> impl Strategy<Value = f64> {
    // Mix magnitudes: wire format must not lose tiny or huge finite
    // components.
    (-1e12f64..1e12, -30i32..30).prop_map(|(mantissa, exp)| mantissa * 10f64.powi(exp))
}

fn any_complex() -> impl Strategy<Value = Complex64> {
    (any_f64(), any_f64()).prop_map(|(re, im)| Complex64::new(re, im))
}

fn bits(z: Complex64) -> (u64, u64) {
    (z.re.to_bits(), z.im.to_bits())
}

/// Up-to-3×3 matrix as rows: dimensions and an entry pool drawn
/// together (the vendored proptest has no `prop_flat_map`).
fn any_mat() -> impl Strategy<Value = Vec<Vec<Complex64>>> {
    (
        1usize..=3,
        1usize..=3,
        proptest::collection::vec(any_complex(), 9..10),
    )
        .prop_map(|(r, c, pool)| {
            (0..r)
                .map(|i| (0..c).map(|j| pool[i * 3 + j]).collect())
                .collect()
        })
}

fn any_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|x| x == 1)
}

fn to_cmat(rows: &[Vec<Complex64>]) -> CMat {
    CMat::from_rows(rows)
}

fn assert_mat_bits(a: &CMat, b: &CMat) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_eq!(bits(a[(i, j)]), bits(b[(i, j)]), "entry ({i},{j})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn complex_round_trips_bitwise(z in any_complex()) {
        let text = complex_to_json(z).serialize();
        let back = complex_from_json(&minijson::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(bits(back), bits(z));
    }

    #[test]
    fn matrix_round_trips_bitwise(rows in any_mat()) {
        let m = to_cmat(&rows);
        let text = mat_to_json(&m).serialize();
        let back = mat_from_json(&minijson::parse(&text).unwrap()).unwrap();
        assert_mat_bits(&m, &back);
    }

    #[test]
    fn solve_request_round_trips(m in 1usize..4, p in 1usize..4, q in 0usize..3, (seed, certify) in (0u64..(1 << 53), 0u8..2)) {
        let certify = certify == 1;
        let req = JobRequest::SolvePieri { m, p, q, seed, certify };
        let text = request_to_json(&req).serialize();
        let back = request_from_json(&minijson::parse(&text).unwrap()).unwrap();
        match back {
            JobRequest::SolvePieri { m: m2, p: p2, q: q2, seed: s2, certify: c2 } => {
                prop_assert_eq!((m, p, q, seed, certify), (m2, p2, q2, s2, c2));
            }
            _ => prop_assert!(false, "kind changed"),
        }
    }

    #[test]
    fn place_request_round_trips(
        a_rows in any_mat(),
        q in 0usize..3,
        poles in proptest::collection::vec(any_complex(), 1..6),
        seed in 0u64..(1 << 53),
    ) {
        // Dimensional consistency is the validator's business, not the
        // codec's: arbitrary rectangular matrices must survive transit.
        let a = to_cmat(&a_rows);
        let req = JobRequest::PlacePoles {
            a: a.clone(),
            b: a.clone(),
            c: a.clone(),
            q,
            poles: poles.clone(),
            seed,
            certify: true,
        };
        let text = request_to_json(&req).serialize();
        let back = request_from_json(&minijson::parse(&text).unwrap()).unwrap();
        match back {
            JobRequest::PlacePoles { a: a2, poles: p2, seed: s2, certify: c2, .. } => {
                prop_assert!(c2, "certify flag survives transit");
                assert_mat_bits(&a, &a2);
                prop_assert_eq!(poles.len(), p2.len());
                for (x, y) in poles.iter().zip(&p2) {
                    prop_assert_eq!(bits(*x), bits(*y));
                }
                prop_assert_eq!(seed, s2);
            }
            _ => prop_assert!(false, "kind changed"),
        }
    }

    #[test]
    fn result_round_trips(
        coeffs in proptest::collection::vec(proptest::collection::vec(any_complex(), 1..5), 0..4),
        u_rows in any_mat(),
        residual in 0f64..1.0,
        cache_hit in any_bool(),
        improper in 0usize..3,
    ) {
        let u = to_cmat(&u_rows);
        let result = JobResult {
            solutions: coeffs.len(),
            expected: (coeffs.len() + improper) as u128,
            improper,
            failed: 0,
            coeffs: coeffs.clone(),
            compensators: vec![CompensatorAnswer {
                u_coeffs: vec![u.clone(), u.clone()],
                v_coeffs: vec![u.clone()],
                residual,
                proper: true,
            }],
            certificates: vec![
                pieri_certify::Certificate {
                    verdict: pieri_certify::Verdict::Certified {
                        residual,
                        newton_contraction: 0.01,
                    },
                    alpha: 0.01,
                    beta: 1e-12,
                    gamma: 1e10,
                    refined: true,
                    refine_iters: 2,
                    pole_residual: Some(residual),
                },
                pieri_certify::Certificate {
                    verdict: pieri_certify::Verdict::Suspect {
                        residual,
                        reason: "slow Newton contraction (3.00e-1)".into(),
                    },
                    alpha: 0.3,
                    beta: 1e-7,
                    gamma: f64::INFINITY,
                    refined: false,
                    refine_iters: 0,
                    pole_residual: None,
                },
                pieri_certify::Certificate::failed("Newton does not contract"),
            ],
            max_residual: residual,
            cache_hit,
            bundle_build: std::time::Duration::from_micros(1500),
            queue_wait: std::time::Duration::from_micros(10),
            solve_time: std::time::Duration::from_micros(900),
            track: pieri_tracker::TrackStats {
                converged: coeffs.len(),
                diverged: improper,
                failed: 0,
                retracked: 1,
                retrack_attempts: 2,
                total_steps: 17,
                total_newton_iters: 34,
                total_time: std::time::Duration::from_micros(800),
                max_path_time: std::time::Duration::from_micros(300),
                path_times: Vec::new(),
            },
        };
        let text = result_to_json(&result).serialize();
        let back = result_from_json(&minijson::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back.solutions, result.solutions);
        prop_assert_eq!(back.expected, result.expected);
        prop_assert_eq!(back.improper, result.improper);
        prop_assert_eq!(back.cache_hit, result.cache_hit);
        prop_assert_eq!(back.coeffs.len(), result.coeffs.len());
        for (x, y) in result.coeffs.iter().flatten().zip(back.coeffs.iter().flatten()) {
            prop_assert_eq!(bits(*x), bits(*y));
        }
        prop_assert_eq!(back.compensators.len(), 1);
        assert_mat_bits(&back.compensators[0].u_coeffs[0], &u);
        prop_assert_eq!(back.compensators[0].residual.to_bits(), residual.to_bits());
        prop_assert_eq!(back.max_residual.to_bits(), result.max_residual.to_bits());
        prop_assert_eq!(back.track.converged, result.track.converged);
        prop_assert_eq!(back.track.total_steps, result.track.total_steps);
        prop_assert_eq!(back.track.retracked, 1);
        prop_assert_eq!(back.track.retrack_attempts, 2);
        // Certificates survive transit: verdict kinds, estimates, the
        // refinement record and the optional pole residual.
        prop_assert_eq!(back.certificates.len(), 3);
        prop_assert_eq!(&back.certificates[0], &result.certificates[0]);
        prop_assert_eq!(&back.certificates[1], &result.certificates[1]);
        prop_assert_eq!(back.certificates[2].verdict.kind(), "failed");
        prop_assert!(back.certificates[2].residual().is_infinite());
    }
}
