//! Property-based tests: approximate field axioms of `Complex64` and
//! distributional properties of the random helpers.

use pieri_num::{random_complex, seeded_rng, unit_complex, Complex64};
use proptest::prelude::*;

fn small_complex() -> impl Strategy<Value = Complex64> {
    (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex64::new(re, im))
}

fn nonzero_complex() -> impl Strategy<Value = Complex64> {
    small_complex().prop_filter("nonzero", |z| z.norm() > 1e-6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn addition_commutes_and_associates(a in small_complex(), b in small_complex(), c in small_complex()) {
        prop_assert!((a + b).dist(b + a) < 1e-9);
        let scale = 1.0 + a.norm() + b.norm() + c.norm();
        prop_assert!(((a + b) + c).dist(a + (b + c)) < 1e-9 * scale);
    }

    #[test]
    fn multiplication_commutes_and_associates(a in small_complex(), b in small_complex(), c in small_complex()) {
        prop_assert!((a * b).dist(b * a) < 1e-9 * (1.0 + (a * b).norm()));
        let scale = 1.0 + (a * b * c).norm();
        prop_assert!(((a * b) * c).dist(a * (b * c)) < 1e-8 * scale);
    }

    #[test]
    fn distributivity(a in small_complex(), b in small_complex(), c in small_complex()) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!(lhs.dist(rhs) < 1e-8 * (1.0 + lhs.norm()));
    }

    #[test]
    fn multiplicative_inverse(a in nonzero_complex()) {
        prop_assert!((a * a.inv()).dist(Complex64::ONE) < 1e-9);
        prop_assert!((a / a).dist(Complex64::ONE) < 1e-9);
    }

    #[test]
    fn division_inverts_multiplication(a in small_complex(), b in nonzero_complex()) {
        prop_assert!(((a * b) / b).dist(a) < 1e-8 * (1.0 + a.norm()));
    }

    #[test]
    fn norm_is_multiplicative(a in small_complex(), b in small_complex()) {
        let lhs = (a * b).norm();
        let rhs = a.norm() * b.norm();
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + rhs));
    }

    #[test]
    fn triangle_inequality(a in small_complex(), b in small_complex()) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn conjugation_is_a_ring_homomorphism(a in small_complex(), b in small_complex()) {
        prop_assert!((a * b).conj().dist(a.conj() * b.conj()) < 1e-8 * (1.0 + (a*b).norm()));
        prop_assert!((a + b).conj().dist(a.conj() + b.conj()) < 1e-9 * (1.0 + (a+b).norm()));
    }

    #[test]
    fn sqrt_squares_back(a in small_complex()) {
        let s = a.sqrt();
        prop_assert!((s * s).dist(a) < 1e-8 * (1.0 + a.norm()));
        prop_assert!(s.re >= -1e-12, "principal branch");
    }

    #[test]
    fn powi_adds_exponents(a in nonzero_complex(), m in 0i32..6, n in 0i32..6) {
        let lhs = a.powi(m + n);
        let rhs = a.powi(m) * a.powi(n);
        prop_assert!(lhs.dist(rhs) < 1e-7 * (1.0 + lhs.norm().max(rhs.norm())));
    }

    #[test]
    fn division_roundtrips_across_the_exponent_range(
        a in small_complex(),
        b in nonzero_complex(),
        ea in -140i32..140,
        eb in -140i32..140,
    ) {
        // The robust Baudin–Smith division must invert multiplication
        // even when operands sit hundreds of decades apart — the regime
        // where the naive formula over- or underflows.
        let x = a.scale(10f64.powi(ea));
        let y = b.scale(10f64.powi(eb));
        let q = (x * y) / y;
        prop_assert!(
            q.dist(x) < 1e-8 * (1e-300 + x.norm()),
            "({ea},{eb}): {q:?} vs {x:?}"
        );
    }

    #[test]
    fn unit_complex_is_unit(seed in 0u64..10_000) {
        let mut rng = seeded_rng(seed);
        let g = unit_complex(&mut rng);
        prop_assert!((g.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_complex_in_box(seed in 0u64..10_000) {
        let mut rng = seeded_rng(seed);
        let z = random_complex(&mut rng);
        prop_assert!(z.re.abs() <= 1.0 && z.im.abs() <= 1.0);
    }
}
