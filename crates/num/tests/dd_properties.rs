//! Property tests for the double-double layer: the error-free transforms
//! really are error-free, `Dd` round-trips `f64`, and ordering is
//! consistent with (and finer than) `f64` ordering.
//!
//! Exactness of `two_sum` is checked against 128-bit integer arithmetic:
//! operands are generated on a dyadic grid (`mantissa · 2^exp` with
//! bounded mantissas and exponents) so every intermediate value — the
//! operands, their exact sum, the rounded sum and its error term — lies
//! on a common grid that fits in `i128`. Exactness of `two_prod` is
//! checked against `f64::mul_add`, whose single-rounding contract makes
//! `fma(a, b, -fl(a·b))` the exact product error.

use pieri_num::{quick_two_sum, two_prod, two_sum, Complex64, Dd, DdComplex};
use proptest::prelude::*;

/// Grid scale: every generated operand is `m · 2^e` with `e ≥ -GRID`.
const GRID: i32 = 20;

/// Exact value of `x` in grid units (`x · 2^GRID`), which is integral
/// and small enough to convert exactly.
fn to_grid_units(x: f64) -> i128 {
    let scaled = x * 2f64.powi(GRID);
    assert_eq!(scaled.fract(), 0.0, "{x} not on the 2^-{GRID} grid");
    scaled as i128
}

/// A dyadic double on the test grid: |value| ≤ 2^60.
fn dyadic() -> impl Strategy<Value = f64> {
    ((-(1i64 << 40)..(1i64 << 40)), (-GRID..GRID)).prop_map(|(m, e)| m as f64 * 2f64.powi(e))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn two_sum_is_error_free(a in dyadic(), b in dyadic()) {
        let (s, e) = two_sum(a, b);
        prop_assert_eq!(s, a + b, "s is the rounded sum");
        prop_assert_eq!(
            to_grid_units(s) + to_grid_units(e),
            to_grid_units(a) + to_grid_units(b),
            "s + e reconstructs a + b exactly"
        );
    }

    #[test]
    fn quick_two_sum_matches_two_sum_when_ordered(a in dyadic(), b in dyadic()) {
        let (big, small) = if a.abs() >= b.abs() { (a, b) } else { (b, a) };
        let (s1, e1) = quick_two_sum(big, small);
        let (s2, e2) = two_sum(big, small);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn two_prod_is_error_free(a in -1e150f64..1e150, b in -1e150f64..1e150) {
        let (p, e) = two_prod(a, b);
        prop_assert_eq!(p, a * b, "p is the rounded product");
        prop_assert_eq!(e, a.mul_add(b, -p), "e is the exact product error");
    }

    #[test]
    fn dd_roundtrips_f64(x in -1e300f64..1e300) {
        prop_assert_eq!(Dd::from_f64(x).to_f64(), x);
        let z = Complex64::new(x, -x / 3.0);
        prop_assert_eq!(DdComplex::from_c64(z).to_c64(), z);
    }

    #[test]
    fn dd_sum_rounds_to_f64_sum(a in dyadic(), b in dyadic()) {
        // On the dyadic grid the double-double sum is exact, so its
        // f64 rounding must be the f64 sum exactly.
        let s = Dd::from_f64(a) + Dd::from_f64(b);
        prop_assert_eq!(s.to_f64(), a + b);
        // And subtracting one operand back recovers the other exactly.
        prop_assert_eq!((s - Dd::from_f64(b)).to_f64(), a);
    }

    #[test]
    fn dd_product_beats_f64(a in dyadic(), b in dyadic()) {
        // a·b is exactly representable in double-double (106 ≥ 41+41
        // mantissa bits); the Dd product must carry the full error term.
        let p = Dd::from_f64(a) * Dd::from_f64(b);
        let (hi, lo) = two_prod(a, b);
        prop_assert_eq!(p.hi(), hi);
        prop_assert_eq!(p.lo(), lo);
    }

    #[test]
    fn dd_ordering_is_consistent_with_f64(a in dyadic(), b in dyadic()) {
        let (da, db) = (Dd::from_f64(a), Dd::from_f64(b));
        prop_assert_eq!(da.partial_cmp(&db), a.partial_cmp(&b));
    }

    #[test]
    fn dd_ordering_resolves_sub_ulp_tails(x in 1.0f64..1e10) {
        // A tail far below ulp(x) is invisible to f64 but must order.
        let tail = Dd::from_f64(x * 2f64.powi(-80));
        let bigger = Dd::from_f64(x) + tail;
        prop_assert_eq!(bigger.to_f64(), x, "tail below f64 resolution");
        prop_assert!(Dd::from_f64(x) < bigger);
        prop_assert!(bigger - tail == Dd::from_f64(x));
    }

    #[test]
    fn dd_complex_division_inverts_multiplication(
        (ar, ai, br, bi) in (-1e3f64..1e3, -1e3f64..1e3, -1e3f64..1e3, -1e3f64..1e3),
    ) {
        prop_assume!(br.abs() + bi.abs() > 1e-3);
        let a = DdComplex::from_c64(Complex64::new(ar, ai));
        let b = DdComplex::from_c64(Complex64::new(br, bi));
        let q = (a * b) / b;
        let scale = a.norm().max(1.0);
        prop_assert!((q - a).norm() < 1e-28 * scale, "err {:e}", (q - a).norm());
    }
}
