//! Random complex constants for homotopy continuation.
//!
//! Homotopy methods rely on the *gamma trick*: multiplying the start system
//! by a random unit-modulus complex constant makes the solution paths of
//! `H(x,t) = γ(1−t)G(x) + tF(x)` regular for all `t ∈ [0,1)` with
//! probability one. All randomness in the workspace flows through the
//! seeded helpers below so every experiment is reproducible.

use crate::complex::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Returns a deterministic RNG for the given seed.
///
/// Tests and benches always construct their RNGs through this function so a
/// failure can be replayed from the seed alone.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws a uniformly random point on the complex unit circle.
pub fn unit_complex<R: Rng + ?Sized>(rng: &mut R) -> Complex64 {
    let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    Complex64::from_polar(1.0, theta)
}

/// Draws the homotopy constant `γ`.
///
/// Identical to [`unit_complex`]; the separate name documents intent at the
/// call sites that implement the gamma trick.
pub fn random_gamma<R: Rng + ?Sized>(rng: &mut R) -> Complex64 {
    unit_complex(rng)
}

/// Draws a complex number with both components uniform in `[-1, 1]`.
///
/// Used for generic problem data (planes, interpolation points, polynomial
/// coefficients). The box distribution keeps magnitudes O(1) so residual
/// tolerances are meaningful without rescaling.
pub fn random_complex<R: Rng + ?Sized>(rng: &mut R) -> Complex64 {
    Complex64::new(rng.gen_range(-1.0..=1.0), rng.gen_range(-1.0..=1.0))
}

/// Draws a real number uniform in `[lo, hi]`, as a complex scalar.
pub fn random_real_in<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> Complex64 {
    Complex64::real(rng.gen_range(lo..=hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a: Vec<Complex64> = {
            let mut r = seeded_rng(42);
            (0..8).map(|_| random_complex(&mut r)).collect()
        };
        let b: Vec<Complex64> = {
            let mut r = seeded_rng(42);
            (0..8).map(|_| random_complex(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn unit_complex_has_unit_modulus() {
        let mut rng = seeded_rng(7);
        for _ in 0..100 {
            let g = unit_complex(&mut rng);
            assert!((g.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_complex_covers_the_circle() {
        // Crude uniformity check: all four quadrants get hit.
        let mut rng = seeded_rng(11);
        let mut quadrants = [false; 4];
        for _ in 0..200 {
            let g = unit_complex(&mut rng);
            let q = match (g.re >= 0.0, g.im >= 0.0) {
                (true, true) => 0,
                (false, true) => 1,
                (false, false) => 2,
                (true, false) => 3,
            };
            quadrants[q] = true;
        }
        assert!(quadrants.iter().all(|&b| b));
    }

    #[test]
    fn random_complex_stays_in_box() {
        let mut rng = seeded_rng(3);
        for _ in 0..100 {
            let z = random_complex(&mut rng);
            assert!(z.re.abs() <= 1.0 && z.im.abs() <= 1.0);
        }
    }

    #[test]
    fn random_real_in_respects_bounds() {
        let mut rng = seeded_rng(5);
        for _ in 0..100 {
            let z = random_real_in(&mut rng, -3.0, -1.0);
            assert_eq!(z.im, 0.0);
            assert!((-3.0..=-1.0).contains(&z.re));
        }
    }
}
