//! Double-double arithmetic: ~106-bit significands from pairs of `f64`s.
//!
//! A [`Dd`] value represents the exact, unevaluated sum `hi + lo` of two
//! doubles with `|lo| ≤ ulp(hi)/2`, giving roughly twice the precision of
//! `f64` at a handful of flops per operation. The building blocks are the
//! classical *error-free transforms*: Knuth's `two_sum` (the rounded sum
//! and its exact rounding error) and Dekker's `two_prod` (the rounded
//! product and its exact error via 27-bit splitting). The composite
//! add/mul/div follow the accurate variants of the QD library
//! (Hida–Li–Bailey).
//!
//! [`DdComplex`] pairs two [`Dd`]s into a double-double complex number —
//! the scalar the a-posteriori refinement layer (`pieri-certify`)
//! iterates in when polishing tracked endpoints beyond `f64`.
//!
//! Range caveat: the Dekker split scales by `2²⁷ + 1`, so `two_prod`
//! overflows for inputs above ~`2⁹⁹⁶`. Endpoint refinement operates on
//! solution-scale data, far inside that range.

use crate::complex::Complex64;
use crate::scalar::Scalar;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Knuth's two-sum: returns `(s, e)` with `s = fl(a + b)` and
/// `s + e = a + b` **exactly** (no assumption on the magnitudes).
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Fast two-sum, valid when `|a| ≥ |b|` (or either is zero): same
/// contract as [`two_sum`] in three flops.
#[inline]
pub fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Dekker's splitting constant `2²⁷ + 1`.
const SPLITTER: f64 = 134_217_729.0;

/// Splits `a` into a 26-bit high part and a 26-bit low part with
/// `a = hi + lo` exactly.
#[inline]
fn split(a: f64) -> (f64, f64) {
    let t = SPLITTER * a;
    let hi = t - (t - a);
    (hi, a - hi)
}

/// Dekker's two-product: returns `(p, e)` with `p = fl(a · b)` and
/// `p + e = a · b` **exactly** (for inputs below ~`2⁹⁹⁶`).
#[inline]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let e = ((ahi * bhi - p) + ahi * blo + alo * bhi) + alo * blo;
    (p, e)
}

/// A double-double real number: the unevaluated sum `hi + lo`.
///
/// The representation is kept *normalised* (`|lo| ≤ ulp(hi)/2`) by every
/// constructor and operation, so `hi` alone is the correctly rounded
/// `f64` value and comparisons can proceed lexicographically.
#[derive(Clone, Copy, Default, PartialEq)]
pub struct Dd {
    hi: f64,
    lo: f64,
}

impl Dd {
    /// Zero.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };
    /// One.
    pub const ONE: Dd = Dd { hi: 1.0, lo: 0.0 };

    /// Lifts an `f64` (exact).
    #[inline]
    pub const fn from_f64(x: f64) -> Dd {
        Dd { hi: x, lo: 0.0 }
    }

    /// Builds from an (already rounded) high part and an error term,
    /// renormalising.
    #[inline]
    pub fn from_parts(hi: f64, lo: f64) -> Dd {
        let (s, e) = two_sum(hi, lo);
        Dd { hi: s, lo: e }
    }

    /// The high (leading) component — the correctly rounded `f64` value.
    #[inline]
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// The low (error) component.
    #[inline]
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Rounds to `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.hi + self.lo
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Dd {
        if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            -self
        } else {
            self
        }
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.hi.is_finite() && self.lo.is_finite()
    }
}

impl fmt::Debug for Dd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dd({:e} + {:e})", self.hi, self.lo)
    }
}

impl fmt::Display for Dd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl From<f64> for Dd {
    #[inline]
    fn from(x: f64) -> Dd {
        Dd::from_f64(x)
    }
}

impl PartialOrd for Dd {
    fn partial_cmp(&self, other: &Dd) -> Option<std::cmp::Ordering> {
        // Normalised representation: lexicographic on (hi, lo).
        match self.hi.partial_cmp(&other.hi) {
            Some(std::cmp::Ordering::Equal) => self.lo.partial_cmp(&other.lo),
            ord => ord,
        }
    }
}

impl Add for Dd {
    type Output = Dd;
    /// Accurate (IEEE-style) double-double addition.
    fn add(self, b: Dd) -> Dd {
        let (s1, s2) = two_sum(self.hi, b.hi);
        let (t1, t2) = two_sum(self.lo, b.lo);
        let s2 = s2 + t1;
        let (s1, s2) = quick_two_sum(s1, s2);
        let s2 = s2 + t2;
        let (s1, s2) = quick_two_sum(s1, s2);
        Dd { hi: s1, lo: s2 }
    }
}

impl Neg for Dd {
    type Output = Dd;
    #[inline]
    fn neg(self) -> Dd {
        Dd {
            hi: -self.hi,
            lo: -self.lo,
        }
    }
}

impl Sub for Dd {
    type Output = Dd;
    #[inline]
    fn sub(self, b: Dd) -> Dd {
        self + (-b)
    }
}

impl Mul for Dd {
    type Output = Dd;
    fn mul(self, b: Dd) -> Dd {
        let (p1, p2) = two_prod(self.hi, b.hi);
        let p2 = p2 + self.hi * b.lo + self.lo * b.hi;
        let (p1, p2) = quick_two_sum(p1, p2);
        Dd { hi: p1, lo: p2 }
    }
}

impl Div for Dd {
    type Output = Dd;
    /// Long division: three quotient digits with exact remainders.
    fn div(self, b: Dd) -> Dd {
        let q1 = self.hi / b.hi;
        let r = self - b * Dd::from_f64(q1);
        let q2 = r.hi / b.hi;
        let r = r - b * Dd::from_f64(q2);
        let q3 = r.hi / b.hi;
        let (s, e) = quick_two_sum(q1, q2);
        Dd { hi: s, lo: e } + Dd::from_f64(q3)
    }
}

impl AddAssign for Dd {
    #[inline]
    fn add_assign(&mut self, rhs: Dd) {
        *self = *self + rhs;
    }
}

impl SubAssign for Dd {
    #[inline]
    fn sub_assign(&mut self, rhs: Dd) {
        *self = *self - rhs;
    }
}

impl MulAssign for Dd {
    #[inline]
    fn mul_assign(&mut self, rhs: Dd) {
        *self = *self * rhs;
    }
}

/// A double-double complex number: [`Dd`] real and imaginary parts.
///
/// Division clears the denominator with the conjugate — no Smith
/// scaling; refinement operates at solution scale where the plain
/// formula is safe (and twice-precise).
#[derive(Clone, Copy, Default, PartialEq)]
pub struct DdComplex {
    /// Real part.
    pub re: Dd,
    /// Imaginary part.
    pub im: Dd,
}

impl DdComplex {
    /// Zero.
    pub const ZERO: DdComplex = DdComplex {
        re: Dd::ZERO,
        im: Dd::ZERO,
    };
    /// One.
    pub const ONE: DdComplex = DdComplex {
        re: Dd::ONE,
        im: Dd::ZERO,
    };

    /// Builds from double-double components.
    #[inline]
    pub const fn new(re: Dd, im: Dd) -> DdComplex {
        DdComplex { re, im }
    }

    /// Lifts a [`Complex64`] (exact).
    #[inline]
    pub fn from_c64(z: Complex64) -> DdComplex {
        DdComplex {
            re: Dd::from_f64(z.re),
            im: Dd::from_f64(z.im),
        }
    }

    /// Rounds to [`Complex64`].
    #[inline]
    pub fn to_c64(self) -> Complex64 {
        Complex64::new(self.re.to_f64(), self.im.to_f64())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> DdComplex {
        DdComplex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus in double-double.
    #[inline]
    pub fn norm_sqr(self) -> Dd {
        self.re * self.re + self.im * self.im
    }

    /// Modulus rounded to `f64` (precise enough for norms and pivoting).
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().to_f64().sqrt()
    }

    /// True when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for DdComplex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}+{:?}i)", self.re, self.im)
    }
}

impl Add for DdComplex {
    type Output = DdComplex;
    #[inline]
    fn add(self, b: DdComplex) -> DdComplex {
        DdComplex {
            re: self.re + b.re,
            im: self.im + b.im,
        }
    }
}

impl Sub for DdComplex {
    type Output = DdComplex;
    #[inline]
    fn sub(self, b: DdComplex) -> DdComplex {
        DdComplex {
            re: self.re - b.re,
            im: self.im - b.im,
        }
    }
}

impl Neg for DdComplex {
    type Output = DdComplex;
    #[inline]
    fn neg(self) -> DdComplex {
        DdComplex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul for DdComplex {
    type Output = DdComplex;
    #[inline]
    fn mul(self, b: DdComplex) -> DdComplex {
        DdComplex {
            re: self.re * b.re - self.im * b.im,
            im: self.re * b.im + self.im * b.re,
        }
    }
}

impl Div for DdComplex {
    type Output = DdComplex;
    fn div(self, b: DdComplex) -> DdComplex {
        let n = b.norm_sqr();
        let t = self * b.conj();
        DdComplex {
            re: t.re / n,
            im: t.im / n,
        }
    }
}

impl AddAssign for DdComplex {
    #[inline]
    fn add_assign(&mut self, rhs: DdComplex) {
        *self = *self + rhs;
    }
}

impl SubAssign for DdComplex {
    #[inline]
    fn sub_assign(&mut self, rhs: DdComplex) {
        *self = *self - rhs;
    }
}

impl MulAssign for DdComplex {
    #[inline]
    fn mul_assign(&mut self, rhs: DdComplex) {
        *self = *self * rhs;
    }
}

impl Scalar for DdComplex {
    #[inline]
    fn zero() -> Self {
        DdComplex::ZERO
    }
    #[inline]
    fn one() -> Self {
        DdComplex::ONE
    }
    #[inline]
    fn from_c64(z: Complex64) -> Self {
        DdComplex::from_c64(z)
    }
    #[inline]
    fn to_c64(self) -> Complex64 {
        DdComplex::to_c64(self)
    }
    #[inline]
    fn mag_sqr(self) -> f64 {
        self.norm_sqr().to_f64()
    }
    #[inline]
    fn is_finite(self) -> bool {
        DdComplex::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_error_free_on_cancellation() {
        // 1 + 2^-60 loses the tail in f64; two_sum keeps it in e.
        let a = 1.0;
        let b = 2f64.powi(-60);
        let (s, e) = two_sum(a, b);
        assert_eq!(s, 1.0);
        assert_eq!(e, b);
    }

    #[test]
    fn two_prod_error_matches_fma() {
        let a = 1.1e10;
        let b = 3.7e-3;
        let (p, e) = two_prod(a, b);
        assert_eq!(p, a * b);
        assert_eq!(e, a.mul_add(b, -p), "exact product error");
    }

    #[test]
    fn dd_keeps_106_bit_tails() {
        let x = Dd::ONE;
        let eps = Dd::from_f64(2f64.powi(-80));
        let y = x + eps;
        assert_eq!(y.to_f64(), 1.0, "tail invisible at f64");
        let back = y - x;
        assert_eq!(back, eps, "tail recovered exactly");
        assert!(x < y, "ordering sees the tail");
    }

    #[test]
    fn dd_division_inverts_multiplication_to_dd_precision() {
        let a = Dd::from_f64(std::f64::consts::PI);
        let b = Dd::from_f64(std::f64::consts::E);
        let q = (a * b) / b;
        let err = (q - a).abs();
        assert!(err.to_f64() < 1e-30, "err {:?}", err);
    }

    #[test]
    fn dd_complex_roundtrip_and_field_ops() {
        let a = DdComplex::from_c64(Complex64::new(1.25, -0.5));
        let b = DdComplex::from_c64(Complex64::new(-0.75, 2.0));
        assert_eq!((a + b).to_c64(), Complex64::new(0.5, 1.5));
        let q = (a * b) / b;
        assert!((q - a).norm() < 1e-30);
        assert_eq!(a.conj().to_c64(), Complex64::new(1.25, 0.5));
    }

    #[test]
    fn dd_complex_mul_matches_f64_to_roundoff() {
        let za = Complex64::new(0.3, -1.7);
        let zb = Complex64::new(-2.1, 0.9);
        let dd = DdComplex::from_c64(za) * DdComplex::from_c64(zb);
        assert!(dd.to_c64().dist(za * zb) < 1e-15);
    }
}
