//! Generic complex-scalar abstraction over precision levels.
//!
//! Numeric kernels that must run in more than one precision — the
//! generic determinant in `pieri-linalg`, the endpoint refiner in
//! `pieri-certify`, the double-double condition evaluator in
//! `pieri-core` — are written once over this trait and instantiated
//! with [`Complex64`] (working precision) or
//! [`DdComplex`](crate::DdComplex) (~106-bit refinement precision).

use crate::complex::Complex64;
use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex field scalar usable by the generic numeric kernels.
///
/// Implementations must form a field under the arithmetic operators and
/// convert losslessly *from* `Complex64` ([`Scalar::from_c64`] embeds
/// working-precision data exactly; [`Scalar::to_c64`] rounds back).
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Exact embedding of a working-precision complex number.
    fn from_c64(z: Complex64) -> Self;
    /// Rounds to working precision.
    fn to_c64(self) -> Complex64;
    /// Approximate squared magnitude in `f64` — for pivot selection and
    /// norms, where working precision is plenty.
    fn mag_sqr(self) -> f64;
    /// True when every component is finite.
    fn is_finite(self) -> bool;
    /// True when exactly zero.
    fn is_zero(self) -> bool {
        self.mag_sqr() == 0.0
    }
}

impl Scalar for Complex64 {
    #[inline]
    fn zero() -> Self {
        Complex64::ZERO
    }
    #[inline]
    fn one() -> Self {
        Complex64::ONE
    }
    #[inline]
    fn from_c64(z: Complex64) -> Self {
        z
    }
    #[inline]
    fn to_c64(self) -> Complex64 {
        self
    }
    #[inline]
    fn mag_sqr(self) -> f64 {
        self.norm_sqr()
    }
    #[inline]
    fn is_finite(self) -> bool {
        Complex64::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DdComplex;

    fn generic_sum<S: Scalar>(zs: &[Complex64]) -> Complex64 {
        let mut acc = S::zero();
        for &z in zs {
            acc = acc + S::from_c64(z);
        }
        acc.to_c64()
    }

    #[test]
    fn complex64_and_dd_agree_through_the_trait() {
        let zs = [
            Complex64::new(1.0, 2.0),
            Complex64::new(-0.5, 0.25),
            Complex64::new(3.5, -1.0),
        ];
        let a = generic_sum::<Complex64>(&zs);
        let b = generic_sum::<DdComplex>(&zs);
        assert!(a.dist(b) < 1e-15);
    }
}
