//! Double-precision complex numbers.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// This is a from-scratch replacement for the complex type PHCpack obtains
/// from Ada's `Generic_Complex_Numbers`; no external crate is used.
///
/// The type is `Copy` and 16 bytes, so it moves through the linear-algebra
/// kernels without allocation. Division uses the robust Baudin–Smith
/// algorithm (Smith's scaling plus exact power-of-two pre-scaling) to stay
/// finite and accurate for badly scaled operands, which matters once paths
/// are tracked close to infinity.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a real number (zero imaginary part).
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus (Euclidean norm). Uses `hypot` for overflow safety.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse, using Smith's scaling to avoid overflow.
    #[inline]
    pub fn inv(self) -> Self {
        Complex64::ONE / self
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Complex64::ZERO;
        }
        let r = self.norm();
        // Branch on the sign of re for numerical stability.
        if self.re >= 0.0 {
            let t = (0.5 * (r + self.re)).sqrt();
            Complex64::new(t, 0.5 * self.im / t)
        } else {
            let t = (0.5 * (r - self.re)).sqrt();
            let sign = if self.im >= 0.0 { 1.0 } else { -1.0 };
            Complex64::new(0.5 * self.im.abs() / t, sign * t)
        }
    }

    /// Complex exponential `e^{re}·(cos im + i sin im)`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Integer power by repeated squaring; `z.powi(0) == 1` including `z == 0`.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Complex64::ONE;
        }
        let mut base = if n < 0 { self.inv() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Complex64::ONE;
        let mut e = n as u32;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `|a - b|`, the modulus of the difference.
    #[inline]
    pub fn dist(self, other: Complex64) -> f64 {
        (self - other).norm()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6e}{:+.6e}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(x: f64) -> Self {
        Complex64::real(x)
    }
}

impl From<i32> for Complex64 {
    #[inline]
    fn from(x: i32) -> Self {
        Complex64::real(x as f64)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// Core of Smith's division `(a + bi) / (c + di)` assuming `|d| <= |c|`,
/// with the Baudin–Smith underflow refinements: whenever a ratio or a
/// cross product (`d/c`, `b·r`, `a·r`) underflows to zero, that term is
/// re-associated (`d·(b/c)` instead of `b·(d/c)`, `(b·t)·r` instead of
/// `(b·r)·t`, …) so no representable contribution is silently dropped.
#[inline]
fn smith_core(a: f64, b: f64, c: f64, d: f64) -> (f64, f64) {
    let r = d / c;
    let t = 1.0 / (c + d * r);
    if r != 0.0 {
        let br = b * r;
        let e = if br != 0.0 {
            (a + br) * t
        } else {
            a * t + (b * t) * r
        };
        let ar = a * r;
        let f = if ar != 0.0 {
            (b - ar) * t
        } else {
            b * t - (a * t) * r
        };
        (e, f)
    } else {
        ((a + d * (b / c)) * t, (b - d * (a / c)) * t)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    /// Robust complex division: Smith's algorithm with the scaling and
    /// underflow refinements of Baudin & Smith (*A Robust Complex
    /// Division in Scilab*, 2012).
    ///
    /// The naive `(ac + bd)/(c² + d²)` formula overflows to `inf`/`NaN`
    /// once the divisor's components approach `1e155` (their squares
    /// exceed `f64::MAX`) and underflows to zero-divides for tiny ones —
    /// exactly the magnitudes the tracker's divergence checks feed in as
    /// paths escape to infinity. Plain Smith fixes those but still loses
    /// the answer when the component ratio itself under- or overflows;
    /// the pre-scaling by powers of two (exact in binary floating point)
    /// and the re-associated cross terms in [`smith_core`] keep every
    /// representable quotient finite and accurate.
    fn div(self, rhs: Complex64) -> Complex64 {
        if rhs.re == 0.0 && rhs.im == 0.0 {
            // IEEE semantics: finite/0 diverges, 0/0 and NaN/0 are NaN.
            return Complex64::new(self.re / 0.0, self.im / 0.0);
        }
        let (mut a, mut b, mut c, mut d) = (self.re, self.im, rhs.re, rhs.im);
        let ab = a.abs().max(b.abs());
        let cd = c.abs().max(d.abs());
        // Result = computed · s; all four scale factors are powers of
        // two, so the scaling is exact.
        let mut s = 1.0f64;
        let half_max = 0.5 * f64::MAX;
        let tiny = f64::MIN_POSITIVE * 2.0 / f64::EPSILON;
        let big = 2.0 / (f64::EPSILON * f64::EPSILON);
        if ab >= half_max {
            a *= 0.5;
            b *= 0.5;
            s *= 2.0;
        }
        if cd >= half_max {
            c *= 0.5;
            d *= 0.5;
            s *= 0.5;
        }
        if ab <= tiny {
            a *= big;
            b *= big;
            s /= big;
        }
        if cd <= tiny {
            c *= big;
            d *= big;
            s *= big;
        }
        let (e, f) = if d.abs() <= c.abs() {
            smith_core(a, b, c, d)
        } else {
            let (e, f) = smith_core(b, a, d, c);
            (e, -f)
        };
        Complex64::new(e * s, f * s)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, k: f64) -> Complex64 {
        self.scale(k)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, k: f64) -> Complex64 {
        Complex64::new(self.re / k, self.im / k)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, z: Complex64) -> Complex64 {
        z.scale(self)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl Product for Complex64 {
    fn product<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq_tol;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn basic_arithmetic() {
        let a = c(1.0, 2.0);
        let b = c(3.0, -1.0);
        assert_eq!(a + b, c(4.0, 1.0));
        assert_eq!(a - b, c(-2.0, 3.0));
        assert_eq!(a * b, c(5.0, 5.0));
        assert_eq!(-a, c(-1.0, -2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = c(1.5, -2.25);
        let b = c(-0.5, 4.0);
        let q = (a * b) / b;
        assert!(approx_eq_tol(q.re, a.re, 1e-12) && approx_eq_tol(q.im, a.im, 1e-12));
    }

    #[test]
    fn division_by_zero_is_nonfinite() {
        let z = c(1.0, 1.0) / Complex64::ZERO;
        assert!(!z.is_finite());
    }

    #[test]
    fn smith_division_avoids_overflow() {
        // Naive (a*c+b*d)/(c^2+d^2) overflows because c^2 = 1e400; Smith's
        // algorithm stays finite.
        let huge = c(1e200, 1e200);
        let q = c(1e200, 0.0) / huge;
        assert!(q.is_finite(), "naive division would overflow: {q:?}");
        assert!((q.re - 0.5).abs() < 1e-12 && (q.im + 0.5).abs() < 1e-12);
    }

    #[test]
    fn division_survives_1e155_components() {
        // The tracker's divergence checks divide by values whose squares
        // exceed f64::MAX (1e155² = 1e310): the naive formula returns
        // inf/inf = NaN here.
        let z = c(1e155, 1e155);
        assert_eq!(z / z, Complex64::ONE);
        let q = c(2e155, 1e155) / c(1e155, 1e155);
        // (2+i)/(1+i) = 1.5 - 0.5i
        assert!((q.re - 1.5).abs() < 1e-12 && (q.im + 0.5).abs() < 1e-12);
    }

    #[test]
    fn division_survives_tiny_components() {
        // Naive denominators underflow to 0 (1e-155² = 1e-310 per term is
        // representable, but 1e-200² is not), turning the quotient into
        // inf; endgame iterates shrink into exactly this regime.
        let z = c(1e-155, 1e-155);
        assert_eq!(z / z, Complex64::ONE);
        let w = c(1e-200, -1e-200);
        let q = c(2e-200, 0.0) / w;
        // 2/(1-i) = 1 + i
        assert!((q.re - 1.0).abs() < 1e-12 && (q.im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn division_handles_extreme_component_ratios() {
        // Baudin & Smith's hard case: the divisor's component ratio
        // d/c = 1e-410 underflows to zero, so plain Smith silently drops
        // the a·d cross term and returns im = 0 instead of ~ -1e-308.
        let q = c(1e307, 1e-307) / c(1e205, 1e-205);
        assert!((q.re / 1e102 - 1.0).abs() < 1e-12, "re: {:e}", q.re);
        assert!((q.im / -1e-308 - 1.0).abs() < 1e-6, "im: {:e}", q.im);
    }

    #[test]
    fn division_keeps_underflowing_cross_terms() {
        // b·r = 1e-170·1e-160 underflows to zero, so Smith's fast path
        // would return re = 0; the re-associated a·t + (b·t)·r recovers
        // the representable true value 1e-230 (and its mirror for im).
        let q = c(0.0, 1e-170) / c(1e-100, 1e-260);
        assert!((q.re / 1e-230 - 1.0).abs() < 1e-12, "re: {:e}", q.re);
        assert!((q.im / 1e-70 - 1.0).abs() < 1e-12, "im: {:e}", q.im);
        let q = c(1e-170, 0.0) / c(1e-100, 1e-260);
        assert!((q.re / 1e-70 - 1.0).abs() < 1e-12, "re: {:e}", q.re);
        assert!((q.im / -1e-230 - 1.0).abs() < 1e-12, "im: {:e}", q.im);
    }

    #[test]
    fn inverse_of_near_max_magnitude() {
        // Plain Smith overflows its own denominator (c + d·r = 2e308)
        // and returns 0; the power-of-two pre-scaling keeps the exact
        // subnormal answer 5e-309·(1 - i).
        let q = c(1e308, 1e308).inv();
        assert!(q.norm() > 0.0, "inverse must not flush to zero");
        assert!((q.re / 5e-309 - 1.0).abs() < 1e-9, "re: {:e}", q.re);
        assert!((q.im / -5e-309 - 1.0).abs() < 1e-9, "im: {:e}", q.im);
    }

    #[test]
    fn division_scaled_roundtrip_across_exponent_range() {
        // (x·y)/y ≈ x for operands spread across ±150 decades.
        for &(ex, ey) in &[(0, 0), (140, -140), (-140, 140), (150, 150), (-150, -150)] {
            let x = c(1.5 * 10f64.powi(ex), -0.3 * 10f64.powi(ex));
            let y = c(-0.7 * 10f64.powi(ey), 1.1 * 10f64.powi(ey));
            let q = (x * y) / y;
            assert!(
                q.dist(x) < 1e-10 * x.norm(),
                "exponents ({ex},{ey}): {q:?} vs {x:?}"
            );
        }
    }

    #[test]
    fn conjugate_properties() {
        let a = c(3.0, 4.0);
        assert_eq!(a.conj().conj(), a);
        assert!((a * a.conj()).im.abs() < 1e-15);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let a = c(3.0, 4.0);
        assert!((a.norm() - 5.0).abs() < 1e-15);
        assert!((a.norm_sqr() - 25.0).abs() < 1e-12);
        assert!((Complex64::I.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[
            c(4.0, 0.0),
            c(-4.0, 0.0),
            c(1.0, 1.0),
            c(-3.0, -7.0),
            c(0.0, 2.0),
        ] {
            let s = z.sqrt();
            assert!(
                (s * s).dist(z) < 1e-12 * (1.0 + z.norm()),
                "sqrt({z:?})={s:?}"
            );
        }
        assert_eq!(Complex64::ZERO.sqrt(), Complex64::ZERO);
    }

    #[test]
    fn sqrt_principal_branch() {
        // Principal square root has non-negative real part.
        for &z in &[c(-1.0, 0.5), c(-2.0, -0.5), c(5.0, -3.0)] {
            assert!(z.sqrt().re >= 0.0);
        }
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = c(0.7, -0.3);
        let mut acc = Complex64::ONE;
        for k in 0..=8 {
            assert!(z.powi(k).dist(acc) < 1e-12, "k={k}");
            acc *= z;
        }
        // Negative exponents.
        assert!(z.powi(-3).dist((z * z * z).inv()) < 1e-12);
        // 0^0 == 1 by convention.
        assert_eq!(Complex64::ZERO.powi(0), Complex64::ONE);
    }

    #[test]
    fn exp_of_imaginary_is_on_unit_circle() {
        let z = Complex64::new(0.0, 1.234).exp();
        assert!((z.norm() - 1.0).abs() < 1e-14);
        assert!((z.re - 1.234f64.cos()).abs() < 1e-14);
    }

    #[test]
    fn from_polar_roundtrip() {
        let z = Complex64::from_polar(2.5, 0.9);
        assert!((z.norm() - 2.5).abs() < 1e-14);
        assert!((z.arg() - 0.9).abs() < 1e-14);
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs = [c(1.0, 0.0), c(0.0, 1.0), c(2.0, 2.0)];
        let s: Complex64 = xs.iter().copied().sum();
        assert_eq!(s, c(3.0, 3.0));
        let p: Complex64 = xs.iter().copied().product();
        assert_eq!(p, c(0.0, 1.0) * c(2.0, 2.0));
    }
}
