//! Approximate comparison helpers shared by tests and verification code.

use crate::complex::Complex64;

/// Default absolute/relative tolerance used across the workspace when a
/// caller does not specify one. Residual checks for solved systems use
/// tighter, context-specific tolerances.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Mixed absolute/relative comparison of two reals:
/// `|a−b| ≤ tol·max(1, |a|, |b|)`.
pub fn approx_eq_tol(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * 1.0f64.max(a.abs()).max(b.abs())
}

/// [`approx_eq_tol`] with [`DEFAULT_TOL`].
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_tol(a, b, DEFAULT_TOL)
}

/// Types comparable up to a numerical tolerance.
pub trait ApproxEq {
    /// True when `self` and `other` agree to within `tol` (mixed
    /// absolute/relative, like [`approx_eq_tol`]).
    fn approx_eq_tol(&self, other: &Self, tol: f64) -> bool;

    /// [`ApproxEq::approx_eq_tol`] with [`DEFAULT_TOL`].
    fn approx_eq(&self, other: &Self) -> bool {
        self.approx_eq_tol(other, DEFAULT_TOL)
    }
}

impl ApproxEq for f64 {
    fn approx_eq_tol(&self, other: &Self, tol: f64) -> bool {
        approx_eq_tol(*self, *other, tol)
    }
}

impl ApproxEq for Complex64 {
    fn approx_eq_tol(&self, other: &Self, tol: f64) -> bool {
        self.dist(*other) <= tol * 1.0f64.max(self.norm()).max(other.norm())
    }
}

impl<T: ApproxEq> ApproxEq for [T] {
    fn approx_eq_tol(&self, other: &Self, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .zip(other.iter())
                .all(|(a, b)| a.approx_eq_tol(b, tol))
    }
}

impl<T: ApproxEq> ApproxEq for Vec<T> {
    fn approx_eq_tol(&self, other: &Self, tol: f64) -> bool {
        self.as_slice().approx_eq_tol(other.as_slice(), tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_branch_near_zero() {
        assert!(approx_eq(1e-12, 0.0));
        assert!(!approx_eq(1e-6, 0.0));
    }

    #[test]
    fn relative_branch_for_large_values() {
        assert!(approx_eq(1e12, 1e12 + 1.0));
        assert!(!approx_eq(1e12, 1.0001e12));
    }

    #[test]
    fn complex_approx() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(1.0 + 1e-12, 2.0 - 1e-12);
        assert!(a.approx_eq(&b));
        assert!(!a.approx_eq(&Complex64::new(1.1, 2.0)));
    }

    #[test]
    fn slices_compare_elementwise_and_by_length() {
        let a = vec![1.0, 2.0];
        let b = vec![1.0, 2.0 + 1e-12];
        let c = vec![1.0];
        assert!(a.approx_eq(&b));
        assert!(!a.approx_eq(&c));
    }
}
