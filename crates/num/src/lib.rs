//! Complex scalar arithmetic for numerical Schubert calculus.
//!
//! PHCpack carries its own multiprecision and double-precision complex
//! arithmetic; this crate is the Rust equivalent of that bottom layer.
//! Everything above (linear algebra, polynomials, path trackers, Pieri
//! homotopies) is built on [`Complex64`].
//!
//! The crate also hosts the random-constant helpers used by homotopy
//! continuation: the *gamma trick* draws a uniformly random point on the
//! complex unit circle, which with probability one avoids the discriminant
//! variety and keeps every solution path regular for `t ∈ [0,1)`.
//!
//! For a-posteriori certification the crate additionally provides
//! double-double arithmetic ([`Dd`], [`DdComplex`]: ~106-bit significands
//! from error-free [`two_sum`]/[`two_prod`] transforms) and the [`Scalar`]
//! trait that lets numeric kernels run generically over both precisions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approx;
mod complex;
mod dd;
mod random;
mod scalar;

pub use approx::{approx_eq, approx_eq_tol, ApproxEq, DEFAULT_TOL};
pub use complex::Complex64;
pub use dd::{quick_two_sum, two_prod, two_sum, Dd, DdComplex};
pub use random::{random_complex, random_gamma, random_real_in, seeded_rng, unit_complex};
pub use scalar::Scalar;
