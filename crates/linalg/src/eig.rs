//! Complex eigenvalues via Hessenberg reduction and the shifted QR
//! iteration.
//!
//! The control layer uses this to *verify* pole placement: assemble the
//! closed-loop state matrix from plant + computed compensator and check
//! that its spectrum matches the prescribed poles. PHCpack delegates the
//! equivalent check to its own eigenvalue code; we implement the standard
//! explicit single-shift complex QR algorithm with Wilkinson shifts, which
//! is entirely adequate for the small (≤ a few dozen states) systems in
//! the paper's experiments.

use crate::matrix::CMat;
use pieri_num::Complex64;

/// Failure of the QR iteration to deflate within the iteration budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EigError {
    /// Index of the eigenvalue block that failed to converge.
    pub stuck_at: usize,
}

impl std::fmt::Display for EigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QR iteration failed to converge (block {})",
            self.stuck_at
        )
    }
}

impl std::error::Error for EigError {}

/// Reduces `A` to upper Hessenberg form by unitary similarity
/// (Householder reflectors). Eigenvalues are preserved.
///
/// # Panics
/// Panics for non-square input.
pub fn hessenberg(a: &CMat) -> CMat {
    assert!(a.is_square(), "hessenberg of non-square matrix");
    let n = a.rows();
    let mut h = a.clone();
    if n < 3 {
        return h;
    }
    for k in 0..n - 2 {
        // Annihilate column k below the first subdiagonal.
        let mut xnorm_sq = 0.0;
        for i in k + 1..n {
            xnorm_sq += h[(i, k)].norm_sqr();
        }
        let xnorm = xnorm_sq.sqrt();
        if xnorm == 0.0 {
            continue;
        }
        let x0 = h[(k + 1, k)];
        let phase = if x0.norm() == 0.0 {
            Complex64::ONE
        } else {
            x0 / x0.norm()
        };
        let alpha = -phase.scale(xnorm);
        let mut v = vec![Complex64::ZERO; n - k - 1];
        for i in k + 1..n {
            v[i - k - 1] = h[(i, k)];
        }
        v[0] -= alpha;
        let vnorm_sq: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        if vnorm_sq == 0.0 {
            continue;
        }
        let beta = 2.0 / vnorm_sq;

        // H ← P·H with P = I − β v vᴴ acting on rows k+1.. .
        for j in k..n {
            let mut s = Complex64::ZERO;
            for i in k + 1..n {
                s += v[i - k - 1].conj() * h[(i, j)];
            }
            s = s.scale(beta);
            for i in k + 1..n {
                let vi = v[i - k - 1];
                h[(i, j)] -= vi * s;
            }
        }
        // H ← H·P acting on columns k+1.. .
        for i in 0..n {
            let mut s = Complex64::ZERO;
            for j in k + 1..n {
                s += h[(i, j)] * v[j - k - 1];
            }
            s = s.scale(beta);
            for j in k + 1..n {
                let vj = v[j - k - 1].conj();
                h[(i, j)] -= s * vj;
            }
        }
        // Zero out the annihilated entries explicitly.
        h[(k + 1, k)] = alpha;
        for i in k + 2..n {
            h[(i, k)] = Complex64::ZERO;
        }
    }
    h
}

/// Eigenvalues of the 2×2 block `[[a, b], [c, d]]` via the quadratic
/// formula; returns `(λ₁, λ₂)`.
fn eig2(a: Complex64, b: Complex64, c: Complex64, d: Complex64) -> (Complex64, Complex64) {
    let half_tr = (a + d).scale(0.5);
    let det = a * d - b * c;
    let disc = (half_tr * half_tr - det).sqrt();
    (half_tr + disc, half_tr - disc)
}

/// All `n` eigenvalues of a complex square matrix, unordered.
///
/// Uses Hessenberg reduction, then the explicit single-shift QR iteration
/// with Wilkinson shifts (plus exceptional shifts to break cycles).
pub fn eigenvalues(a: &CMat) -> Result<Vec<Complex64>, EigError> {
    assert!(a.is_square(), "eigenvalues of non-square matrix");
    let n = a.rows();
    let mut h = hessenberg(a);
    let mut eigs = Vec::with_capacity(n);
    let mut hi = n; // active block is rows/cols [0, hi)
    let mut iters_on_block = 0usize;
    const MAX_ITERS_PER_EIG: usize = 120;

    while hi > 0 {
        if hi == 1 {
            eigs.push(h[(0, 0)]);
            break;
        }
        // Find deflation point: scan subdiagonal upward from hi−1.
        let mut lo = hi - 1;
        while lo > 0 {
            let sub = h[(lo, lo - 1)].norm();
            let scale = h[(lo - 1, lo - 1)].norm() + h[(lo, lo)].norm();
            if sub <= f64::EPSILON * scale.max(f64::MIN_POSITIVE) {
                h[(lo, lo - 1)] = Complex64::ZERO;
                break;
            }
            lo -= 1;
        }

        if lo == hi - 1 {
            // 1×1 block deflated.
            eigs.push(h[(hi - 1, hi - 1)]);
            hi -= 1;
            iters_on_block = 0;
            continue;
        }
        if lo == hi - 2 {
            // 2×2 block deflated: closed form.
            let (l1, l2) = eig2(
                h[(hi - 2, hi - 2)],
                h[(hi - 2, hi - 1)],
                h[(hi - 1, hi - 2)],
                h[(hi - 1, hi - 1)],
            );
            eigs.push(l1);
            eigs.push(l2);
            hi -= 2;
            iters_on_block = 0;
            continue;
        }

        iters_on_block += 1;
        if iters_on_block > MAX_ITERS_PER_EIG {
            return Err(EigError { stuck_at: hi - 1 });
        }

        // Wilkinson shift from the trailing 2×2 of the active block, with an
        // exceptional random-ish shift every 20 iterations to break cycles.
        let shift = if iters_on_block.is_multiple_of(20) {
            h[(hi - 1, hi - 2)].scale(1.5) + h[(hi - 1, hi - 1)]
        } else {
            let (l1, l2) = eig2(
                h[(hi - 2, hi - 2)],
                h[(hi - 2, hi - 1)],
                h[(hi - 1, hi - 2)],
                h[(hi - 1, hi - 1)],
            );
            let d = h[(hi - 1, hi - 1)];
            if (l1 - d).norm() <= (l2 - d).norm() {
                l1
            } else {
                l2
            }
        };

        qr_step(&mut h, lo, hi, shift);
    }
    Ok(eigs)
}

/// One explicit-shift QR step on the active Hessenberg block `[lo, hi)`:
/// factor `H − σI = Q·R` with Givens rotations, then form `R·Q + σI`.
fn qr_step(h: &mut CMat, lo: usize, hi: usize, sigma: Complex64) {
    let m = hi - lo;
    if m < 2 {
        return;
    }
    // Shift the diagonal.
    for i in lo..hi {
        h[(i, i)] -= sigma;
    }
    // Forward sweep: Givens rotations zeroing the subdiagonal.
    let mut rot: Vec<(Complex64, Complex64)> = Vec::with_capacity(m - 1);
    for k in lo..hi - 1 {
        let a = h[(k, k)];
        let b = h[(k + 1, k)];
        let r = (a.norm_sqr() + b.norm_sqr()).sqrt();
        let (c, s) = if r == 0.0 {
            (Complex64::ONE, Complex64::ZERO)
        } else {
            (a.conj().scale(1.0 / r), b.conj().scale(1.0 / r))
        };
        rot.push((c, s));
        // Apply G = [[c, s], [−s̄, c̄]] to rows k, k+1 (columns k..hi).
        for j in k..hi {
            let x = h[(k, j)];
            let y = h[(k + 1, j)];
            h[(k, j)] = c * x + s * y;
            h[(k + 1, j)] = -s.conj() * x + c.conj() * y;
        }
    }
    // Backward sweep: multiply R by the adjoints on the right, R·Gᴴ.
    for (idx, &(c, s)) in rot.iter().enumerate() {
        let k = lo + idx;
        // Apply Gᴴ to columns k, k+1 (rows lo..=k+1).
        let top = hi.min(k + 2);
        for i in lo..top {
            let x = h[(i, k)];
            let y = h[(i, k + 1)];
            h[(i, k)] = x * c.conj() + y * s.conj();
            h[(i, k + 1)] = -(x * s) + y * c;
        }
    }
    // Unshift.
    for i in lo..hi {
        h[(i, i)] += sigma;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_num::{random_complex, seeded_rng};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    /// Greedily matches two eigenvalue multisets; returns max pairing error.
    fn multiset_dist(mut a: Vec<Complex64>, b: &[Complex64]) -> f64 {
        let mut worst = 0.0f64;
        for &bv in b {
            let (idx, d) = a
                .iter()
                .enumerate()
                .map(|(i, av)| (i, av.dist(bv)))
                .min_by(|x, y| x.1.total_cmp(&y.1))
                .expect("non-empty");
            worst = worst.max(d);
            a.swap_remove(idx);
        }
        worst
    }

    #[test]
    fn hessenberg_zeroes_below_subdiagonal_and_keeps_trace() {
        let mut rng = seeded_rng(40);
        let a = CMat::random(6, 6, &mut rng, random_complex);
        let h = hessenberg(&a);
        for i in 2..6 {
            for j in 0..i - 1 {
                assert!(h[(i, j)].norm() < 1e-12, "H[{i},{j}] = {:?}", h[(i, j)]);
            }
        }
        assert!(h.trace().dist(a.trace()) < 1e-10);
    }

    #[test]
    fn eigenvalues_of_diagonal() {
        let d = CMat::from_fn(4, 4, |i, j| {
            if i == j {
                c(i as f64, -(i as f64))
            } else {
                Complex64::ZERO
            }
        });
        let eigs = eigenvalues(&d).unwrap();
        let expect: Vec<Complex64> = (0..4).map(|i| c(i as f64, -(i as f64))).collect();
        assert!(multiset_dist(eigs, &expect) < 1e-10);
    }

    #[test]
    fn eigenvalues_of_triangular_read_off_diagonal() {
        let mut rng = seeded_rng(41);
        let mut t = CMat::random(5, 5, &mut rng, random_complex);
        for i in 0..5 {
            for j in 0..i {
                t[(i, j)] = Complex64::ZERO;
            }
        }
        let expect: Vec<Complex64> = (0..5).map(|i| t[(i, i)]).collect();
        let eigs = eigenvalues(&t).unwrap();
        assert!(multiset_dist(eigs, &expect) < 1e-8);
    }

    #[test]
    fn companion_matrix_recovers_roots() {
        // x³ − 6x² + 11x − 6 = (x−1)(x−2)(x−3).
        let a = CMat::from_rows(&[
            vec![c(6.0, 0.0), c(-11.0, 0.0), c(6.0, 0.0)],
            vec![c(1.0, 0.0), c(0.0, 0.0), c(0.0, 0.0)],
            vec![c(0.0, 0.0), c(1.0, 0.0), c(0.0, 0.0)],
        ]);
        let eigs = eigenvalues(&a).unwrap();
        let expect = vec![c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0)];
        assert!(multiset_dist(eigs, &expect) < 1e-8);
    }

    #[test]
    fn eigenvalue_sum_matches_trace_random() {
        let mut rng = seeded_rng(42);
        for n in 2..=10 {
            let a = CMat::random(n, n, &mut rng, random_complex);
            let eigs = eigenvalues(&a).unwrap();
            assert_eq!(eigs.len(), n);
            let sum: Complex64 = eigs.iter().copied().sum();
            assert!(
                sum.dist(a.trace()) < 1e-8 * (1.0 + a.trace().norm()),
                "n={n}: Σλ={sum:?} tr={:?}",
                a.trace()
            );
        }
    }

    #[test]
    fn eigenvalue_product_matches_determinant() {
        let mut rng = seeded_rng(43);
        let a = CMat::random(6, 6, &mut rng, random_complex);
        let eigs = eigenvalues(&a).unwrap();
        let prod: Complex64 = eigs.iter().copied().product();
        let d = crate::lu::det(&a);
        assert!(prod.dist(d) < 1e-7 * (1.0 + d.norm()));
    }

    #[test]
    fn similarity_invariance() {
        let mut rng = seeded_rng(44);
        let a = CMat::random(5, 5, &mut rng, random_complex);
        let s = CMat::random(5, 5, &mut rng, random_complex);
        let sinv = crate::lu::Lu::factor(&s).unwrap().inverse();
        let b = &(&s * &a) * &sinv;
        let ea = eigenvalues(&a).unwrap();
        let eb = eigenvalues(&b).unwrap();
        assert!(multiset_dist(ea, &eb) < 1e-6);
    }

    #[test]
    fn small_sizes() {
        assert!(eigenvalues(&CMat::zeros(0, 0)).unwrap().is_empty());
        let one = CMat::from_rows(&[vec![c(2.0, 3.0)]]);
        assert_eq!(eigenvalues(&one).unwrap(), vec![c(2.0, 3.0)]);
        let two = CMat::from_rows(&[
            vec![c(0.0, 0.0), c(1.0, 0.0)],
            vec![c(-1.0, 0.0), c(0.0, 0.0)],
        ]);
        let eigs = eigenvalues(&two).unwrap();
        let expect = vec![Complex64::I, -Complex64::I];
        assert!(multiset_dist(eigs, &expect) < 1e-10);
    }

    #[test]
    fn repeated_eigenvalues_jordan_block() {
        // Jordan block with eigenvalue 2 (defective): QR must still deliver
        // both eigenvalues near 2 (they split by ~sqrt(eps)).
        let j = CMat::from_rows(&[
            vec![c(2.0, 0.0), c(1.0, 0.0)],
            vec![c(0.0, 0.0), c(2.0, 0.0)],
        ]);
        let eigs = eigenvalues(&j).unwrap();
        for e in eigs {
            assert!(e.dist(c(2.0, 0.0)) < 1e-6);
        }
    }
}
