//! Householder QR factorisation.

use crate::matrix::CMat;
use pieri_num::Complex64;

/// Householder QR factorisation `A = Q·R` of an `m × n` matrix with
/// `m ≥ n`.
///
/// `Q` is `m × m` unitary and `R` is `m × n` upper triangular. Used for
/// least-squares solves (path refinement in overdetermined verification
/// systems) and for extracting orthonormal bases of planes when
/// conditioning input data.
#[derive(Debug, Clone)]
pub struct Qr {
    q: CMat,
    r: CMat,
}

impl Qr {
    /// Factors `A` (requires `rows ≥ cols`).
    ///
    /// # Panics
    /// Panics when `rows < cols`.
    pub fn factor(a: &CMat) -> Qr {
        let m = a.rows();
        let n = a.cols();
        assert!(m >= n, "QR requires rows ≥ cols");
        let mut r = a.clone();
        let mut q = CMat::identity(m);

        for k in 0..n.min(m.saturating_sub(1)) {
            // Build the Householder reflector for column k.
            let mut xnorm_sq = 0.0;
            for i in k..m {
                xnorm_sq += r[(i, k)].norm_sqr();
            }
            let xnorm = xnorm_sq.sqrt();
            if xnorm == 0.0 {
                continue;
            }
            let x0 = r[(k, k)];
            // alpha = -e^{i·arg(x0)}·‖x‖ avoids cancellation.
            let phase = if x0.norm() == 0.0 {
                Complex64::ONE
            } else {
                x0 / x0.norm()
            };
            let alpha = -phase.scale(xnorm);
            // v = x − α·e₁ , H = I − 2 v vᴴ / ‖v‖².
            let mut v = vec![Complex64::ZERO; m - k];
            for i in k..m {
                v[i - k] = r[(i, k)];
            }
            v[0] -= alpha;
            let vnorm_sq: f64 = v.iter().map(|z| z.norm_sqr()).sum();
            if vnorm_sq == 0.0 {
                continue;
            }
            let beta = 2.0 / vnorm_sq;

            // R ← H·R (only columns k.. change).
            for j in k..n {
                let mut s = Complex64::ZERO;
                for i in k..m {
                    s += v[i - k].conj() * r[(i, j)];
                }
                s = s.scale(beta);
                for i in k..m {
                    let vi = v[i - k];
                    r[(i, j)] -= vi * s;
                }
            }
            // Q ← Q·H (accumulate on the right; H is Hermitian).
            for i in 0..m {
                let mut s = Complex64::ZERO;
                for j in k..m {
                    s += q[(i, j)] * v[j - k];
                }
                s = s.scale(beta);
                for j in k..m {
                    let vj = v[j - k].conj();
                    q[(i, j)] -= s * vj;
                }
            }
            // Clean the annihilated entries explicitly.
            r[(k, k)] = alpha;
            for i in k + 1..m {
                r[(i, k)] = Complex64::ZERO;
            }
        }
        Qr { q, r }
    }

    /// The unitary factor `Q` (`m × m`).
    pub fn q(&self) -> &CMat {
        &self.q
    }

    /// The triangular factor `R` (`m × n`).
    pub fn r(&self) -> &CMat {
        &self.r
    }

    /// Least-squares solution of `min ‖A·x − b‖₂` via `R x = Qᴴ b`.
    ///
    /// # Panics
    /// Panics when `b.len() != rows`, or when `R` has a zero diagonal entry
    /// (rank-deficient `A`).
    pub fn solve_least_squares(&self, b: &[Complex64]) -> Vec<Complex64> {
        let m = self.q.rows();
        let n = self.r.cols();
        assert_eq!(b.len(), m, "least squares: rhs length mismatch");
        // y = Qᴴ·b
        let mut y = vec![Complex64::ZERO; m];
        for i in 0..m {
            let mut acc = Complex64::ZERO;
            for k in 0..m {
                acc += self.q[(k, i)].conj() * b[k];
            }
            y[i] = acc;
        }
        // Back substitution on the top n×n block of R.
        let mut x = vec![Complex64::ZERO; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in i + 1..n {
                acc -= self.r[(i, j)] * x[j];
            }
            let d = self.r[(i, i)];
            assert!(d.norm() > 0.0, "rank-deficient least-squares system");
            x[i] = acc / d;
        }
        x
    }

    /// Orthonormal basis of the column span of the factored matrix: the
    /// first `n` columns of `Q`.
    pub fn thin_q(&self) -> CMat {
        self.q.submatrix(0, 0, self.q.rows(), self.r.cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_num::{random_complex, seeded_rng};

    #[test]
    fn reconstruction_qr_equals_a() {
        let mut rng = seeded_rng(30);
        for &(m, n) in &[(3usize, 3usize), (5, 3), (6, 6), (7, 2)] {
            let a = CMat::random(m, n, &mut rng, random_complex);
            let qr = Qr::factor(&a);
            let back = qr.q() * qr.r();
            assert!((&back - &a).fro_norm() < 1e-10, "shape {m}x{n}");
        }
    }

    #[test]
    fn q_is_unitary() {
        let mut rng = seeded_rng(31);
        let a = CMat::random(6, 4, &mut rng, random_complex);
        let qr = Qr::factor(&a);
        let qhq = &qr.q().conj_transpose() * qr.q();
        assert!((&qhq - &CMat::identity(6)).fro_norm() < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = seeded_rng(32);
        let a = CMat::random(5, 5, &mut rng, random_complex);
        let qr = Qr::factor(&a);
        for i in 0..5 {
            for j in 0..i {
                assert!(qr.r()[(i, j)].norm() < 1e-12, "R[{i},{j}] not zero");
            }
        }
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        let mut rng = seeded_rng(33);
        let a = CMat::random(6, 3, &mut rng, random_complex);
        let x: Vec<Complex64> = (0..3).map(|_| random_complex(&mut rng)).collect();
        let b = a.mul_vec(&x);
        let xs = Qr::factor(&a).solve_least_squares(&b);
        for i in 0..3 {
            assert!(xs[i].dist(x[i]) < 1e-9);
        }
    }

    #[test]
    fn least_squares_residual_is_orthogonal() {
        let mut rng = seeded_rng(34);
        let a = CMat::random(5, 2, &mut rng, random_complex);
        let b: Vec<Complex64> = (0..5).map(|_| random_complex(&mut rng)).collect();
        let x = Qr::factor(&a).solve_least_squares(&b);
        let ax = a.mul_vec(&x);
        let r: Vec<Complex64> = (0..5).map(|i| b[i] - ax[i]).collect();
        // Residual ⟂ column span: Aᴴ r = 0.
        let atr = a.conj_transpose().mul_vec(&r);
        for v in atr {
            assert!(v.norm() < 1e-9);
        }
    }

    #[test]
    fn thin_q_spans_columns() {
        let mut rng = seeded_rng(35);
        let a = CMat::random(6, 3, &mut rng, random_complex);
        let qr = Qr::factor(&a);
        let qt = qr.thin_q();
        // Projector onto span(Q₁) must fix A: Q₁ Q₁ᴴ A = A.
        let proj = &(&qt * &qt.conj_transpose()) * &a;
        assert!((&proj - &a).fro_norm() < 1e-9);
    }
}
