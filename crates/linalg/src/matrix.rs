//! Dense row-major complex matrices.

use pieri_num::Complex64;
use rand::Rng;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense complex matrix stored in row-major order.
///
/// Indexing is zero-based: `m[(i, j)]` is the entry in row `i`, column `j`.
/// All shape mismatches panic — in this workspace shapes are static
/// properties of the algorithms (a condition matrix is always
/// `(m+p) × (m+p)`), so a mismatch is a programming error, not an input
/// error.
#[derive(Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix from a function of the index pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        CMat { rows, cols, data }
    }

    /// Builds a matrix from rows given as nested slices (for tests/examples).
    ///
    /// # Panics
    /// Panics when the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<Complex64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        CMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix with independent entries drawn by `gen`.
    pub fn random<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        rng: &mut R,
        mut gen: impl FnMut(&mut R) -> Complex64,
    ) -> Self {
        CMat::from_fn(rows, cols, |_, _| gen(rng))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True for `n × n` matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the backing storage (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the backing storage (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[Complex64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a vector.
    pub fn col(&self, j: usize) -> Vec<Complex64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Writes `v` into column `j`.
    ///
    /// # Panics
    /// Panics when `v.len() != self.rows()`.
    pub fn set_col(&mut self, j: usize, v: &[Complex64]) {
        assert_eq!(v.len(), self.rows, "column length mismatch");
        for i in 0..self.rows {
            self[(i, j)] = v[i];
        }
    }

    /// Overwrites `self` with the entries of `src` without reallocating.
    ///
    /// # Panics
    /// Panics when the shapes differ.
    #[inline]
    pub fn copy_from(&mut self, src: &CMat) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows, src.cols),
            "copy_from: shape mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose `Aᴴ`.
    pub fn conj_transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// This is the workhorse of intersection conditions: the Pieri condition
    /// on a `p`-plane `X` and an `m`-plane `L` is `det [X | L] = 0`.
    ///
    /// # Panics
    /// Panics when row counts differ.
    pub fn hstack(&self, other: &CMat) -> CMat {
        assert_eq!(self.rows, other.rows, "hstack: row mismatch");
        CMat::from_fn(self.rows, self.cols + other.cols, |i, j| {
            if j < self.cols {
                self[(i, j)]
            } else {
                other[(i, j - self.cols)]
            }
        })
    }

    /// Horizontal concatenation `[self | other]` into an existing matrix,
    /// reusing `out`'s storage — the zero-allocation form of
    /// [`CMat::hstack`] used by the fused determinantal kernels.
    ///
    /// # Panics
    /// Panics when the row counts differ or `out` has the wrong shape.
    pub fn hstack_into(&self, other: &CMat, out: &mut CMat) {
        assert_eq!(self.rows, other.rows, "hstack_into: row mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, self.cols + other.cols),
            "hstack_into: output shape mismatch"
        );
        for i in 0..self.rows {
            let dst = &mut out.data[i * out.cols..(i + 1) * out.cols];
            dst[..self.cols].copy_from_slice(self.row(i));
            dst[self.cols..].copy_from_slice(other.row(i));
        }
    }

    /// Vertical concatenation of `self` on top of `other`.
    ///
    /// # Panics
    /// Panics when column counts differ.
    pub fn vstack(&self, other: &CMat) -> CMat {
        assert_eq!(self.cols, other.cols, "vstack: column mismatch");
        CMat::from_fn(self.rows + other.rows, self.cols, |i, j| {
            if i < self.rows {
                self[(i, j)]
            } else {
                other[(i - self.rows, j)]
            }
        })
    }

    /// Copies the contiguous block with top-left corner `(r0, c0)` and the
    /// given shape.
    pub fn submatrix(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> CMat {
        assert!(
            r0 + rows <= self.rows && c0 + cols <= self.cols,
            "submatrix out of range"
        );
        CMat::from_fn(rows, cols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// The `(n−1) × (n−1)` minor obtained by deleting row `r` and column `c`.
    pub fn minor(&self, r: usize, c: usize) -> CMat {
        assert!(self.rows > 0 && self.cols > 0);
        let mut out = CMat::zeros(self.rows - 1, self.cols - 1);
        self.minor_into(r, c, &mut out);
        out
    }

    /// [`CMat::minor`] into an existing `(n−1) × (n−1)` matrix — the
    /// zero-allocation form used by the near-singular cofactor fallback.
    ///
    /// # Panics
    /// Panics when `out` has the wrong shape.
    pub fn minor_into(&self, r: usize, c: usize, out: &mut CMat) {
        assert!(self.rows > 0 && self.cols > 0);
        assert_eq!(
            (out.rows, out.cols),
            (self.rows - 1, self.cols - 1),
            "minor_into: output shape mismatch"
        );
        for i in 0..self.rows - 1 {
            let ii = if i < r { i } else { i + 1 };
            for j in 0..self.cols - 1 {
                let jj = if j < c { j } else { j + 1 };
                out[(i, j)] = self[(ii, jj)];
            }
        }
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics when `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = Complex64::ZERO;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += *a * *b;
            }
            y[i] = acc;
        }
        y
    }

    /// Scales every entry by `k`.
    pub fn scale(&self, k: Complex64) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| *z * k).collect(),
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Max-row-sum (infinity) norm.
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|z| z.norm()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Largest entry modulus.
    pub fn max_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm()).fold(0.0, f64::max)
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|z| z.is_finite())
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    /// Panics for non-square matrices.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Swaps rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add: shape mismatch"
        );
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub: shape mismatch"
        );
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CMat {
    type Output = CMat;
    fn neg(self) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| -*a).collect(),
        }
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "mul: inner dimension mismatch");
        let mut out = CMat::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `rhs`
        // and `out` (row-major), which the optimizer vectorises well.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, r) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * *r;
                }
            }
        }
        out
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_num::{random_complex, seeded_rng};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let mut rng = seeded_rng(1);
        let a = CMat::random(4, 4, &mut rng, random_complex);
        let i = CMat::identity(4);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn mul_known_values() {
        let a = CMat::from_rows(&[
            vec![c(1.0, 0.0), c(2.0, 0.0)],
            vec![c(0.0, 1.0), c(0.0, 0.0)],
        ]);
        let b = CMat::from_rows(&[
            vec![c(1.0, 0.0), c(0.0, 0.0)],
            vec![c(0.0, 0.0), c(3.0, 0.0)],
        ]);
        let ab = &a * &b;
        assert_eq!(ab[(0, 0)], c(1.0, 0.0));
        assert_eq!(ab[(0, 1)], c(6.0, 0.0));
        assert_eq!(ab[(1, 0)], c(0.0, 1.0));
        assert_eq!(ab[(1, 1)], c(0.0, 0.0));
    }

    #[test]
    fn transpose_involution_and_conj() {
        let mut rng = seeded_rng(2);
        let a = CMat::random(3, 5, &mut rng, random_complex);
        assert_eq!(a.transpose().transpose(), a);
        let h = a.conj_transpose();
        assert_eq!(h.rows(), 5);
        assert_eq!(h[(2, 1)], a[(1, 2)].conj());
    }

    #[test]
    fn hstack_vstack_shapes_and_content() {
        let a = CMat::identity(2);
        let b = CMat::zeros(2, 3);
        let h = a.hstack(&b);
        assert_eq!((h.rows(), h.cols()), (2, 5));
        assert_eq!(h[(1, 1)], Complex64::ONE);
        assert_eq!(h[(1, 4)], Complex64::ZERO);
        let v = a.vstack(&CMat::identity(2));
        assert_eq!((v.rows(), v.cols()), (4, 2));
        assert_eq!(v[(3, 1)], Complex64::ONE);
    }

    #[test]
    fn minor_removes_row_and_col() {
        let a = CMat::from_fn(3, 3, |i, j| c((3 * i + j) as f64, 0.0));
        let m = a.minor(1, 0);
        assert_eq!(m[(0, 0)], c(1.0, 0.0)); // was (0,1)
        assert_eq!(m[(1, 1)], c(8.0, 0.0)); // was (2,2)
    }

    #[test]
    fn mul_vec_matches_matrix_mul() {
        let mut rng = seeded_rng(3);
        let a = CMat::random(4, 3, &mut rng, random_complex);
        let x: Vec<Complex64> = (0..3).map(|_| random_complex(&mut rng)).collect();
        let y = a.mul_vec(&x);
        let xm = CMat::from_fn(3, 1, |i, _| x[i]);
        let ym = &a * &xm;
        for i in 0..4 {
            assert!(y[i].dist(ym[(i, 0)]) < 1e-12);
        }
    }

    #[test]
    fn norms_are_consistent() {
        let a = CMat::from_rows(&[vec![c(3.0, 4.0)]]);
        assert!((a.fro_norm() - 5.0).abs() < 1e-12);
        assert!((a.inf_norm() - 5.0).abs() < 1e-12);
        assert!((a.max_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn trace_sums_diagonal() {
        let a = CMat::from_fn(3, 3, |i, j| {
            if i == j {
                c(i as f64 + 1.0, 1.0)
            } else {
                c(9.0, 9.0)
            }
        });
        assert_eq!(a.trace(), c(6.0, 3.0));
    }

    #[test]
    fn swap_rows_swaps() {
        let mut a = CMat::from_fn(3, 2, |i, _| c(i as f64, 0.0));
        a.swap_rows(0, 2);
        assert_eq!(a[(0, 0)], c(2.0, 0.0));
        assert_eq!(a[(2, 1)], c(0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "hstack")]
    fn hstack_mismatch_panics() {
        let _ = CMat::zeros(2, 2).hstack(&CMat::zeros(3, 2));
    }

    #[test]
    fn copy_from_and_hstack_into_match_allocating_forms() {
        let mut rng = seeded_rng(4);
        let a = CMat::random(3, 2, &mut rng, random_complex);
        let b = CMat::random(3, 4, &mut rng, random_complex);
        let mut out = CMat::zeros(3, 6);
        a.hstack_into(&b, &mut out);
        assert_eq!(out, a.hstack(&b));
        let mut copy = CMat::zeros(3, 6);
        copy.copy_from(&out);
        assert_eq!(copy, out);
    }

    #[test]
    fn minor_into_matches_minor() {
        let mut rng = seeded_rng(5);
        let a = CMat::random(5, 5, &mut rng, random_complex);
        let mut out = CMat::zeros(4, 4);
        for r in 0..5 {
            for c in 0..5 {
                a.minor_into(r, c, &mut out);
                assert_eq!(out, a.minor(r, c), "minor ({r},{c})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "copy_from")]
    fn copy_from_shape_mismatch_panics() {
        let mut a = CMat::zeros(2, 2);
        a.copy_from(&CMat::zeros(3, 2));
    }

    #[test]
    fn set_col_roundtrip() {
        let mut a = CMat::zeros(3, 2);
        let v = vec![c(1.0, 1.0), c(2.0, 2.0), c(3.0, 3.0)];
        a.set_col(1, &v);
        assert_eq!(a.col(1), v);
        assert_eq!(a.col(0), vec![Complex64::ZERO; 3]);
    }
}
