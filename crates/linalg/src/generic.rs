//! Scalar-generic dense kernels: the same Gaussian elimination at any
//! precision.
//!
//! The fused [`crate::DetCofactor`] engine is the `Complex64` fast path
//! of the homotopy evaluators; this module is its precision-agnostic
//! sibling, written over [`pieri_num::Scalar`] so the a-posteriori
//! refinement layer can evaluate determinantal conditions in
//! double-double ([`pieri_num::DdComplex`]) without duplicating the
//! elimination logic. Matrices stay small (condition matrices are at
//! most a few dozen rows), so a straightforward partial-pivot
//! elimination is both robust and fast enough.

use pieri_num::Scalar;

/// Determinant of the `n × n` row-major matrix in `a`, by Gaussian
/// elimination with partial pivoting (largest `mag_sqr` in the column).
/// `a` is destroyed.
///
/// Returns the exact zero of `S` when the matrix is singular to the
/// working precision of `S`.
///
/// # Panics
/// Panics when `a.len() != n * n`.
pub fn det_generic<S: Scalar>(a: &mut [S], n: usize) -> S {
    assert_eq!(a.len(), n * n, "det_generic: matrix must be n×n");
    let mut det = S::one();
    for k in 0..n {
        // Pivot search in column k.
        let mut piv = k;
        let mut best = a[k * n + k].mag_sqr();
        for r in (k + 1)..n {
            let m = a[r * n + k].mag_sqr();
            if m > best {
                best = m;
                piv = r;
            }
        }
        if best == 0.0 {
            return S::zero();
        }
        if piv != k {
            for c in k..n {
                a.swap(k * n + c, piv * n + c);
            }
            det = -det;
        }
        let pivot = a[k * n + k];
        det = det * pivot;
        for r in (k + 1)..n {
            let factor = a[r * n + k] / pivot;
            if factor.is_zero() {
                continue;
            }
            for c in (k + 1)..n {
                let sub = factor * a[k * n + c];
                a[r * n + c] = a[r * n + c] - sub;
            }
        }
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{det, CMat};
    use pieri_num::{random_complex, seeded_rng, Complex64, DdComplex};

    fn flatten<S: Scalar>(m: &CMat) -> Vec<S> {
        let mut out = Vec::with_capacity(m.rows() * m.cols());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                out.push(S::from_c64(m[(i, j)]));
            }
        }
        out
    }

    #[test]
    fn generic_det_matches_lu_det_both_scalars() {
        let mut rng = seeded_rng(910);
        for n in 1..=6 {
            let m = CMat::random(n, n, &mut rng, random_complex);
            let reference = det(&m);
            let d64 = det_generic(&mut flatten::<Complex64>(&m), n);
            let ddd = det_generic(&mut flatten::<DdComplex>(&m), n).to_c64();
            assert!(
                d64.dist(reference) < 1e-10 * (1.0 + reference.norm()),
                "n={n} f64"
            );
            assert!(
                ddd.dist(reference) < 1e-10 * (1.0 + reference.norm()),
                "n={n} dd"
            );
        }
    }

    #[test]
    fn singular_matrix_gives_zero() {
        // Rank-1 matrix.
        let m = CMat::from_fn(3, 3, |i, j| {
            Complex64::real((i + 1) as f64 * (j + 1) as f64)
        });
        let d = det_generic(&mut flatten::<DdComplex>(&m), 3);
        assert!(d.mag_sqr() < 1e-20, "{d:?}");
    }

    #[test]
    fn dd_det_resolves_near_cancellation_better_than_f64() {
        // A 2×2 with determinant 2^-60·(1 + small): ad − bc cancels
        // catastrophically in f64 entries but the generic elimination in
        // Dd keeps the full cross-term error.
        let eps = 2f64.powi(-30);
        let m = CMat::from_rows(&[
            vec![Complex64::real(1.0 + eps), Complex64::real(1.0)],
            vec![Complex64::real(1.0), Complex64::real(1.0 - eps)],
        ]);
        // Exact determinant: (1+eps)(1−eps) − 1 = −eps².
        let exact = -(eps * eps);
        let dd = det_generic(&mut flatten::<DdComplex>(&m), 2).to_c64();
        assert!(
            (dd.re - exact).abs() < 1e-12 * eps * eps,
            "dd {:e} vs {exact:e}",
            dd.re
        );
    }
}
