//! Complex vector helpers.
//!
//! Vectors are plain `Vec<Complex64>` / `&[Complex64]`; these free functions
//! provide the handful of BLAS-1 style kernels the trackers need without
//! introducing a wrapper type.

use pieri_num::Complex64;

/// Convenience alias used across the workspace for solution vectors.
pub type CVec = Vec<Complex64>;

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[Complex64]) -> f64 {
    x.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Max modulus `‖x‖∞`.
pub fn inf_norm(x: &[Complex64]) -> f64 {
    x.iter().map(|z| z.norm()).fold(0.0, f64::max)
}

/// Unconjugated dot product `Σ xᵢ yᵢ` (bilinear, as used in polynomial
/// evaluation).
pub fn dot(x: &[Complex64], y: &[Complex64]) -> Complex64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).map(|(a, b)| *a * *b).sum()
}

/// Hermitian inner product `Σ conj(xᵢ) yᵢ`.
pub fn dot_conj(x: &[Complex64], y: &[Complex64]) -> Complex64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).map(|(a, b)| a.conj() * *b).sum()
}

/// `y ← y + a·x`.
pub fn axpy(a: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * *xi;
    }
}

/// `out ← x − y`.
pub fn sub_into(x: &[Complex64], y: &[Complex64], out: &mut [Complex64]) {
    debug_assert!(x.len() == y.len() && y.len() == out.len());
    for i in 0..x.len() {
        out[i] = x[i] - y[i];
    }
}

/// `x ← k·x`.
pub fn scale_in_place(x: &mut [Complex64], k: Complex64) {
    for xi in x.iter_mut() {
        *xi *= k;
    }
}

/// Scales `x` to unit Euclidean norm; leaves the zero vector unchanged.
pub fn normalize(x: &mut [Complex64]) {
    let n = norm2(x);
    if n > 0.0 {
        scale_in_place(x, Complex64::real(1.0 / n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_num::{random_complex, seeded_rng};

    #[test]
    fn norms_on_unit_vectors() {
        let e = vec![Complex64::ONE, Complex64::ZERO];
        assert!((norm2(&e) - 1.0).abs() < 1e-15);
        assert!((inf_norm(&e) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn dot_is_bilinear_not_hermitian() {
        let x = vec![Complex64::I];
        assert!(dot(&x, &x).dist(Complex64::real(-1.0)) < 1e-15);
        assert!(dot_conj(&x, &x).dist(Complex64::ONE) < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![Complex64::ONE, Complex64::I];
        let mut y = vec![Complex64::ZERO, Complex64::ONE];
        axpy(Complex64::real(2.0), &x, &mut y);
        assert_eq!(y[0], Complex64::real(2.0));
        assert_eq!(y[1], Complex64::new(1.0, 2.0));
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut rng = seeded_rng(9);
        let mut x: Vec<Complex64> = (0..5).map(|_| random_complex(&mut rng)).collect();
        normalize(&mut x);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
        let mut z = vec![Complex64::ZERO; 3];
        normalize(&mut z);
        assert!(z.iter().all(|v| *v == Complex64::ZERO));
    }

    #[test]
    fn sub_into_subtracts() {
        let x = vec![Complex64::real(3.0)];
        let y = vec![Complex64::real(1.0)];
        let mut out = vec![Complex64::ZERO];
        sub_into(&x, &y, &mut out);
        assert_eq!(out[0], Complex64::real(2.0));
    }
}
