//! LU factorisation with partial pivoting.
//!
//! lint:hot-path — `factor_into`/`solve_in_place` run inside every
//! Newton iteration; steady state reuses caller buffers, and the
//! allocating constructors/wrappers below are individually justified.

use crate::matrix::CMat;
use pieri_num::Complex64;

/// Failure modes of [`Lu::factor`] and its solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare,
    /// A pivot column was numerically zero: the matrix is singular to
    /// working precision.
    Singular {
        /// Elimination step at which no acceptable pivot was found.
        step: usize,
    },
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::NotSquare => write!(f, "LU factorisation requires a square matrix"),
            LuError::Singular { step } => {
                write!(f, "matrix is singular to working precision (step {step})")
            }
        }
    }
}

impl std::error::Error for LuError {}

/// Compact LU factorisation `P·A = L·U` with partial (row) pivoting.
///
/// `L` (unit lower triangular) and `U` are packed into a single matrix;
/// `ipiv` records the row swapped at each elimination step (LAPACK-style
/// swap replay, so permutations apply in place without a gather buffer)
/// and `sign` the permutation parity, so the determinant comes out of
/// [`Lu::det`] for free. The storage is reusable: [`Lu::factor_into`]
/// refactors a new matrix into an existing `Lu` without allocating.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: CMat,
    ipiv: Vec<usize>,
    sign: f64,
    /// Largest pivot modulus observed (for condition diagnostics).
    max_pivot: f64,
    /// Smallest pivot modulus observed.
    min_pivot: f64,
}

impl Default for Lu {
    /// An empty (0 × 0) factorisation slot for [`Lu::factor_into`] reuse.
    fn default() -> Self {
        Lu {
            lu: CMat::zeros(0, 0),
            // lint:allow(hot-path-alloc) — empty-capacity constructor in
            // a one-time Default impl; nothing is allocated until use.
            ipiv: Vec::new(),
            sign: 1.0,
            max_pivot: 0.0,
            min_pivot: f64::INFINITY,
        }
    }
}

impl Lu {
    /// Factors `A`; fails on non-square or exactly/numerically singular input.
    ///
    /// Singularity is detected against a threshold scaled by the largest
    /// entry of `A`, so the result does not depend on the overall scale of
    /// the matrix.
    pub fn factor(a: &CMat) -> Result<Lu, LuError> {
        let mut out = Lu::default();
        Lu::factor_into(a, &mut out)?;
        Ok(out)
    }

    /// Factors `A` into `into`, reusing its storage (no allocation once
    /// the slot has seen a matrix of this size).
    ///
    /// On error the contents of `into` are unspecified and must not be
    /// used for solves.
    pub fn factor_into(a: &CMat, into: &mut Lu) -> Result<(), LuError> {
        let n = a.rows();
        if !a.is_square() {
            return Err(LuError::NotSquare);
        }
        if (into.lu.rows(), into.lu.cols()) == (n, n) {
            into.lu.copy_from(a);
        } else {
            // lint:allow(hot-path-alloc) — cold branch: first use (or a
            // dimension change) grows the slot; steady state copies.
            into.lu = a.clone();
        }
        into.ipiv.clear();
        into.ipiv.resize(n, 0);
        into.sign = 1.0;
        into.max_pivot = 0.0;
        into.min_pivot = f64::INFINITY;
        let lu = &mut into.lu;
        // Scale for the singularity threshold: one sqrt over the whole
        // matrix instead of `hypot` per entry; fall back to the
        // overflow/underflow-safe per-entry form when squaring leaves
        // the finite range.
        let scale_sq = lu
            .as_slice()
            .iter()
            .map(|z| z.norm_sqr())
            .fold(0.0f64, f64::max);
        let scale = if scale_sq > 0.0 && scale_sq.is_finite() {
            scale_sq.sqrt()
        } else {
            lu.max_norm().max(f64::MIN_POSITIVE)
        };
        let tol = scale * 1e-14 * n as f64;

        for k in 0..n {
            // Partial pivoting: pick the largest modulus in column k.
            // Squared moduli avoid a `hypot` per candidate; the sqrt-
            // based scan below handles the under/overflow regime where
            // squares leave the finite nonzero range.
            let mut best = k;
            let mut best_sq = lu[(k, k)].norm_sqr();
            for i in k + 1..n {
                let v = lu[(i, k)].norm_sqr();
                if v > best_sq {
                    best = i;
                    best_sq = v;
                }
            }
            let mut best_norm = best_sq.sqrt();
            if best_sq == 0.0 || !best_sq.is_finite() {
                best = k;
                best_norm = lu[(k, k)].norm();
                for i in k + 1..n {
                    let v = lu[(i, k)].norm();
                    if v > best_norm {
                        best = i;
                        best_norm = v;
                    }
                }
            }
            if best_norm <= tol {
                return Err(LuError::Singular { step: k });
            }
            into.ipiv[k] = best;
            if best != k {
                lu.swap_rows(k, best);
                into.sign = -into.sign;
            }
            into.max_pivot = into.max_pivot.max(best_norm);
            into.min_pivot = into.min_pivot.min(best_norm);
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == Complex64::ZERO {
                    continue;
                }
                for j in k + 1..n {
                    let u = lu[(k, j)];
                    lu[(i, j)] -= m * u;
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> Complex64 {
        let mut d = Complex64::real(self.sign);
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Ratio of largest to smallest pivot — a cheap (crude) growth-factor
    /// proxy used by the tracker to notice ill-conditioned Jacobians.
    pub fn pivot_ratio(&self) -> f64 {
        if self.min_pivot == 0.0 {
            f64::INFINITY
        } else {
            self.max_pivot / self.min_pivot
        }
    }

    /// Solves `A·x = b`, overwriting and returning `x`.
    ///
    /// # Panics
    /// Panics when `b.len() != self.dim()`.
    pub fn solve(&self, b: &[Complex64]) -> Vec<Complex64> {
        // lint:allow(hot-path-alloc) — allocating convenience wrapper;
        // hot callers use `solve_in_place` on their own buffer.
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `A·x = b` in place: `b` enters as the right-hand side and
    /// leaves as the solution. No heap allocation.
    ///
    /// # Panics
    /// Panics when `b.len() != self.dim()`.
    pub fn solve_in_place(&self, b: &mut [Complex64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_in_place: rhs length mismatch");
        // Apply the permutation by replaying the elimination-step swaps.
        for k in 0..n {
            let p = self.ipiv[k];
            if p != k {
                b.swap(k, p);
            }
        }
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * b[j];
            }
            b[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = b[i];
            for j in i + 1..n {
                acc -= self.lu[(i, j)] * b[j];
            }
            b[i] = acc / self.lu[(i, i)];
        }
    }

    /// Solves the transposed system `Aᵀ·y = b` in place (no conjugation).
    ///
    /// With `P·A = L·U` this is `Uᵀ·Lᵀ·P·y = b`: one forward sweep with
    /// `Uᵀ` (lower triangular), one backward sweep with `Lᵀ` (unit upper
    /// triangular), then the swap replay in reverse. This is the
    /// "adjugate row extraction" primitive of the fused determinantal
    /// kernels: column `c` of the cofactor matrix is
    /// `det(A) · (Aᵀ)⁻¹·e_c`.
    ///
    /// # Panics
    /// Panics when `b.len() != self.dim()`.
    pub fn solve_transpose_in_place(&self, b: &mut [Complex64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_transpose_in_place: length mismatch");
        // Forward substitution with Uᵀ (diagonal division).
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.lu[(j, i)] * b[j];
            }
            b[i] = acc / self.lu[(i, i)];
        }
        // Back substitution with Lᵀ (unit diagonal).
        for i in (0..n).rev() {
            let mut acc = b[i];
            for j in i + 1..n {
                acc -= self.lu[(j, i)] * b[j];
            }
            b[i] = acc;
        }
        // y = Pᵀ·w: replay the swaps in reverse order.
        for k in (0..n).rev() {
            let p = self.ipiv[k];
            if p != k {
                b.swap(k, p);
            }
        }
    }

    /// Solves `A·X = B` column by column, operating in place on the
    /// output's strided columns (no per-column gather/scatter buffers).
    pub fn solve_mat(&self, b: &CMat) -> CMat {
        let n = self.dim();
        assert_eq!(b.rows(), n, "solve_mat: shape mismatch");
        // lint:allow(hot-path-alloc) — allocating convenience wrapper:
        // the result matrix is the output; hot paths solve column-wise
        // in place.
        let mut out = b.clone();
        for j in 0..out.cols() {
            // The same permutation + substitution sweeps as
            // `solve_in_place`, indexing one column of `out` directly.
            for k in 0..n {
                let p = self.ipiv[k];
                if p != k {
                    let (a, b) = (out[(k, j)], out[(p, j)]);
                    out[(k, j)] = b;
                    out[(p, j)] = a;
                }
            }
            for i in 1..n {
                let mut acc = out[(i, j)];
                for r in 0..i {
                    acc -= self.lu[(i, r)] * out[(r, j)];
                }
                out[(i, j)] = acc;
            }
            for i in (0..n).rev() {
                let mut acc = out[(i, j)];
                for r in i + 1..n {
                    acc -= self.lu[(i, r)] * out[(r, j)];
                }
                out[(i, j)] = acc / self.lu[(i, i)];
            }
        }
        out
    }

    /// Inverse of the original matrix.
    pub fn inverse(&self) -> CMat {
        self.solve_mat(&CMat::identity(self.dim()))
    }
}

/// Fallible determinant of `A` via LU, returning zero for singular input
/// and `Err(LuError::NotSquare)` for non-square input.
///
/// Intersection-condition *residuals* use the singular-is-zero form: at a
/// solution the condition matrix is exactly singular and the residual is
/// zero, which `Lu::factor`'s error path would otherwise obscure. Long-
/// running callers (the batch service) use this entry point so a
/// malformed matrix surfaces as a recoverable error instead of taking
/// the process down.
pub fn try_det(a: &CMat) -> Result<Complex64, LuError> {
    match Lu::factor(a) {
        Ok(lu) => Ok(lu.det()),
        Err(LuError::Singular { .. }) => Ok(Complex64::ZERO),
        Err(e @ LuError::NotSquare) => Err(e),
    }
}

/// Convenience: determinant of `A` via LU, returning zero for singular input.
///
/// # Panics
/// Panics when `A` is not square — the hot numeric kernels construct
/// their condition matrices square by shape arithmetic, so this is a
/// programming error there. Code that takes matrices across a trust
/// boundary must use [`try_det`] instead.
pub fn det(a: &CMat) -> Complex64 {
    try_det(a).expect("det of non-square matrix (use try_det at trust boundaries)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_num::{random_complex, seeded_rng, unit_complex};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn solve_roundtrip_random() {
        let mut rng = seeded_rng(10);
        for n in 1..=8 {
            let a = CMat::random(n, n, &mut rng, random_complex);
            let x: Vec<Complex64> = (0..n).map(|_| random_complex(&mut rng)).collect();
            let b = a.mul_vec(&x);
            let lu = Lu::factor(&a).expect("generic matrix is nonsingular");
            let xs = lu.solve(&b);
            for i in 0..n {
                assert!(xs[i].dist(x[i]) < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn det_of_identity_and_permutation() {
        assert!(det(&CMat::identity(5)).dist(Complex64::ONE) < 1e-14);
        // Swapping two rows of I flips the sign.
        let mut p = CMat::identity(4);
        p.swap_rows(0, 3);
        assert!(det(&p).dist(Complex64::real(-1.0)) < 1e-14);
    }

    #[test]
    fn det_of_diagonal() {
        let d = CMat::from_fn(3, 3, |i, j| {
            if i == j {
                c(i as f64 + 1.0, 1.0)
            } else {
                Complex64::ZERO
            }
        });
        let expect = c(1.0, 1.0) * c(2.0, 1.0) * c(3.0, 1.0);
        assert!(det(&d).dist(expect) < 1e-12);
    }

    #[test]
    fn det_is_multiplicative() {
        let mut rng = seeded_rng(11);
        let a = CMat::random(5, 5, &mut rng, random_complex);
        let b = CMat::random(5, 5, &mut rng, random_complex);
        let lhs = det(&(&a * &b));
        let rhs = det(&a) * det(&b);
        assert!(lhs.dist(rhs) < 1e-9 * (1.0 + rhs.norm()));
    }

    #[test]
    fn singular_matrix_detected() {
        // Rank-1 matrix.
        let a = CMat::from_fn(3, 3, |i, j| c((i + 1) as f64 * (j + 1) as f64, 0.0));
        match Lu::factor(&a) {
            Err(LuError::Singular { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
        assert_eq!(det(&a), Complex64::ZERO);
    }

    #[test]
    fn not_square_is_an_error() {
        assert_eq!(
            Lu::factor(&CMat::zeros(2, 3)).unwrap_err(),
            LuError::NotSquare
        );
    }

    #[test]
    fn try_det_reports_non_square_without_panicking() {
        assert_eq!(try_det(&CMat::zeros(2, 3)), Err(LuError::NotSquare));
        let mut rng = seeded_rng(14);
        let a = CMat::random(4, 4, &mut rng, random_complex);
        assert_eq!(try_det(&a), Ok(det(&a)));
        // Singular input is a zero determinant, not an error.
        let s = CMat::from_fn(3, 3, |i, j| c((i + 1) as f64 * (j + 1) as f64, 0.0));
        assert_eq!(try_det(&s), Ok(Complex64::ZERO));
    }

    #[test]
    fn inverse_multiplies_to_identity() {
        let mut rng = seeded_rng(12);
        let a = CMat::random(6, 6, &mut rng, unit_complex);
        let inv = Lu::factor(&a).unwrap().inverse();
        let prod = &a * &inv;
        let err = (&prod - &CMat::identity(6)).fro_norm();
        assert!(err < 1e-9, "‖A·A⁻¹ − I‖ = {err}");
    }

    #[test]
    fn solve_mat_matches_solve() {
        let mut rng = seeded_rng(13);
        let a = CMat::random(4, 4, &mut rng, random_complex);
        let b = CMat::random(4, 2, &mut rng, random_complex);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve_mat(&b);
        for j in 0..2 {
            let xj = lu.solve(&b.col(j));
            for i in 0..4 {
                assert!(x[(i, j)].dist(xj[i]) < 1e-12);
            }
        }
    }

    #[test]
    fn factor_into_reuses_storage_and_matches_factor() {
        let mut rng = seeded_rng(15);
        let mut slot = Lu::default();
        for n in [3usize, 5, 5, 2, 6] {
            let a = CMat::random(n, n, &mut rng, random_complex);
            Lu::factor_into(&a, &mut slot).expect("generic matrix factors");
            let fresh = Lu::factor(&a).unwrap();
            assert_eq!(slot.det(), fresh.det(), "n={n}: bitwise same det");
            let b: Vec<Complex64> = (0..n).map(|_| random_complex(&mut rng)).collect();
            assert_eq!(slot.solve(&b), fresh.solve(&b), "n={n}: bitwise same solve");
        }
    }

    #[test]
    fn solve_in_place_matches_solve() {
        let mut rng = seeded_rng(16);
        for n in 1..=7 {
            let a = CMat::random(n, n, &mut rng, random_complex);
            let b: Vec<Complex64> = (0..n).map(|_| random_complex(&mut rng)).collect();
            let lu = Lu::factor(&a).unwrap();
            let x = lu.solve(&b);
            let mut y = b.clone();
            lu.solve_in_place(&mut y);
            assert_eq!(x, y, "n={n}: identical bits");
        }
    }

    #[test]
    fn solve_transpose_solves_the_transposed_system() {
        let mut rng = seeded_rng(17);
        for n in 1..=7 {
            let a = CMat::random(n, n, &mut rng, random_complex);
            let x: Vec<Complex64> = (0..n).map(|_| random_complex(&mut rng)).collect();
            let b = a.transpose().mul_vec(&x);
            let lu = Lu::factor(&a).unwrap();
            let mut y = b.clone();
            lu.solve_transpose_in_place(&mut y);
            for i in 0..n {
                assert!(y[i].dist(x[i]) < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn scale_invariant_singularity_threshold() {
        // A tiny but perfectly conditioned matrix must factor.
        let a = CMat::identity(3).scale(c(1e-200, 0.0));
        assert!(Lu::factor(&a).is_ok());
    }
}
