//! LU factorisation with partial pivoting.

use crate::matrix::CMat;
use pieri_num::Complex64;

/// Failure modes of [`Lu::factor`] and its solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare,
    /// A pivot column was numerically zero: the matrix is singular to
    /// working precision.
    Singular {
        /// Elimination step at which no acceptable pivot was found.
        step: usize,
    },
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::NotSquare => write!(f, "LU factorisation requires a square matrix"),
            LuError::Singular { step } => {
                write!(f, "matrix is singular to working precision (step {step})")
            }
        }
    }
}

impl std::error::Error for LuError {}

/// Compact LU factorisation `P·A = L·U` with partial (row) pivoting.
///
/// `L` (unit lower triangular) and `U` are packed into a single matrix;
/// `perm` records row exchanges and `sign` the permutation parity, so the
/// determinant comes out of [`Lu::det`] for free.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: CMat,
    perm: Vec<usize>,
    sign: f64,
    /// Largest pivot modulus observed (for condition diagnostics).
    max_pivot: f64,
    /// Smallest pivot modulus observed.
    min_pivot: f64,
}

impl Lu {
    /// Factors `A`; fails on non-square or exactly/numerically singular input.
    ///
    /// Singularity is detected against a threshold scaled by the largest
    /// entry of `A`, so the result does not depend on the overall scale of
    /// the matrix.
    pub fn factor(a: &CMat) -> Result<Lu, LuError> {
        let n = a.rows();
        if !a.is_square() {
            return Err(LuError::NotSquare);
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = lu.max_norm().max(f64::MIN_POSITIVE);
        let tol = scale * 1e-14 * n as f64;
        let mut max_pivot: f64 = 0.0;
        let mut min_pivot = f64::INFINITY;

        for k in 0..n {
            // Partial pivoting: pick the largest modulus in column k.
            let mut best = k;
            let mut best_norm = lu[(k, k)].norm();
            for i in k + 1..n {
                let v = lu[(i, k)].norm();
                if v > best_norm {
                    best = i;
                    best_norm = v;
                }
            }
            if best_norm <= tol {
                return Err(LuError::Singular { step: k });
            }
            if best != k {
                lu.swap_rows(k, best);
                perm.swap(k, best);
                sign = -sign;
            }
            max_pivot = max_pivot.max(best_norm);
            min_pivot = min_pivot.min(best_norm);
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == Complex64::ZERO {
                    continue;
                }
                for j in k + 1..n {
                    let u = lu[(k, j)];
                    lu[(i, j)] -= m * u;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            sign,
            max_pivot,
            min_pivot,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> Complex64 {
        let mut d = Complex64::real(self.sign);
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Ratio of largest to smallest pivot — a cheap (crude) growth-factor
    /// proxy used by the tracker to notice ill-conditioned Jacobians.
    pub fn pivot_ratio(&self) -> f64 {
        if self.min_pivot == 0.0 {
            f64::INFINITY
        } else {
            self.max_pivot / self.min_pivot
        }
    }

    /// Solves `A·x = b`, overwriting and returning `x`.
    ///
    /// # Panics
    /// Panics when `b.len() != self.dim()`.
    pub fn solve(&self, b: &[Complex64]) -> Vec<Complex64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve: rhs length mismatch");
        // Apply permutation.
        let mut x: Vec<Complex64> = (0..n).map(|i| b[self.perm[i]]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        x
    }

    /// Solves `A·X = B` column by column.
    pub fn solve_mat(&self, b: &CMat) -> CMat {
        assert_eq!(b.rows(), self.dim(), "solve_mat: shape mismatch");
        let mut out = CMat::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            out.set_col(j, &self.solve(&col));
        }
        out
    }

    /// Inverse of the original matrix.
    pub fn inverse(&self) -> CMat {
        self.solve_mat(&CMat::identity(self.dim()))
    }
}

/// Fallible determinant of `A` via LU, returning zero for singular input
/// and `Err(LuError::NotSquare)` for non-square input.
///
/// Intersection-condition *residuals* use the singular-is-zero form: at a
/// solution the condition matrix is exactly singular and the residual is
/// zero, which `Lu::factor`'s error path would otherwise obscure. Long-
/// running callers (the batch service) use this entry point so a
/// malformed matrix surfaces as a recoverable error instead of taking
/// the process down.
pub fn try_det(a: &CMat) -> Result<Complex64, LuError> {
    match Lu::factor(a) {
        Ok(lu) => Ok(lu.det()),
        Err(LuError::Singular { .. }) => Ok(Complex64::ZERO),
        Err(e @ LuError::NotSquare) => Err(e),
    }
}

/// Convenience: determinant of `A` via LU, returning zero for singular input.
///
/// # Panics
/// Panics when `A` is not square — the hot numeric kernels construct
/// their condition matrices square by shape arithmetic, so this is a
/// programming error there. Code that takes matrices across a trust
/// boundary must use [`try_det`] instead.
pub fn det(a: &CMat) -> Complex64 {
    try_det(a).expect("det of non-square matrix (use try_det at trust boundaries)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_num::{random_complex, seeded_rng, unit_complex};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn solve_roundtrip_random() {
        let mut rng = seeded_rng(10);
        for n in 1..=8 {
            let a = CMat::random(n, n, &mut rng, random_complex);
            let x: Vec<Complex64> = (0..n).map(|_| random_complex(&mut rng)).collect();
            let b = a.mul_vec(&x);
            let lu = Lu::factor(&a).expect("generic matrix is nonsingular");
            let xs = lu.solve(&b);
            for i in 0..n {
                assert!(xs[i].dist(x[i]) < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn det_of_identity_and_permutation() {
        assert!(det(&CMat::identity(5)).dist(Complex64::ONE) < 1e-14);
        // Swapping two rows of I flips the sign.
        let mut p = CMat::identity(4);
        p.swap_rows(0, 3);
        assert!(det(&p).dist(Complex64::real(-1.0)) < 1e-14);
    }

    #[test]
    fn det_of_diagonal() {
        let d = CMat::from_fn(3, 3, |i, j| {
            if i == j {
                c(i as f64 + 1.0, 1.0)
            } else {
                Complex64::ZERO
            }
        });
        let expect = c(1.0, 1.0) * c(2.0, 1.0) * c(3.0, 1.0);
        assert!(det(&d).dist(expect) < 1e-12);
    }

    #[test]
    fn det_is_multiplicative() {
        let mut rng = seeded_rng(11);
        let a = CMat::random(5, 5, &mut rng, random_complex);
        let b = CMat::random(5, 5, &mut rng, random_complex);
        let lhs = det(&(&a * &b));
        let rhs = det(&a) * det(&b);
        assert!(lhs.dist(rhs) < 1e-9 * (1.0 + rhs.norm()));
    }

    #[test]
    fn singular_matrix_detected() {
        // Rank-1 matrix.
        let a = CMat::from_fn(3, 3, |i, j| c((i + 1) as f64 * (j + 1) as f64, 0.0));
        match Lu::factor(&a) {
            Err(LuError::Singular { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
        assert_eq!(det(&a), Complex64::ZERO);
    }

    #[test]
    fn not_square_is_an_error() {
        assert_eq!(
            Lu::factor(&CMat::zeros(2, 3)).unwrap_err(),
            LuError::NotSquare
        );
    }

    #[test]
    fn try_det_reports_non_square_without_panicking() {
        assert_eq!(try_det(&CMat::zeros(2, 3)), Err(LuError::NotSquare));
        let mut rng = seeded_rng(14);
        let a = CMat::random(4, 4, &mut rng, random_complex);
        assert_eq!(try_det(&a), Ok(det(&a)));
        // Singular input is a zero determinant, not an error.
        let s = CMat::from_fn(3, 3, |i, j| c((i + 1) as f64 * (j + 1) as f64, 0.0));
        assert_eq!(try_det(&s), Ok(Complex64::ZERO));
    }

    #[test]
    fn inverse_multiplies_to_identity() {
        let mut rng = seeded_rng(12);
        let a = CMat::random(6, 6, &mut rng, unit_complex);
        let inv = Lu::factor(&a).unwrap().inverse();
        let prod = &a * &inv;
        let err = (&prod - &CMat::identity(6)).fro_norm();
        assert!(err < 1e-9, "‖A·A⁻¹ − I‖ = {err}");
    }

    #[test]
    fn solve_mat_matches_solve() {
        let mut rng = seeded_rng(13);
        let a = CMat::random(4, 4, &mut rng, random_complex);
        let b = CMat::random(4, 2, &mut rng, random_complex);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve_mat(&b);
        for j in 0..2 {
            let xj = lu.solve(&b.col(j));
            for i in 0..4 {
                assert!(x[(i, j)].dist(xj[i]) < 1e-12);
            }
        }
    }

    #[test]
    fn scale_invariant_singularity_threshold() {
        // A tiny but perfectly conditioned matrix must factor.
        let a = CMat::identity(3).scale(c(1e-200, 0.0));
        assert!(Lu::factor(&a).is_ok());
    }
}
