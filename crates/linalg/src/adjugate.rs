//! Cofactor and adjugate machinery for determinantal conditions.
//!
//! lint:hot-path — evaluation/Jacobian kernels run per Newton iteration
//! on reused buffers; only the one-time constructor allocates.
//!
//! The Pieri intersection conditions are determinants `det A(x,t)` of small
//! matrices whose entries are *affine* in the unknowns. By Jacobi's formula,
//!
//! ```text
//! ∂ det A / ∂ x_k  =  Σ_{r,c}  C_{r,c} · ∂A_{r,c}/∂x_k ,
//! ```
//!
//! where `C` is the cofactor matrix. Evaluating the cofactor matrix
//! numerically therefore differentiates every intersection condition exactly
//! — no symbolic determinant expansion is ever formed.
//!
//! Near a solution the condition matrix is (by construction) nearly
//! singular, so computing `adj(A) = det(A)·A⁻¹` through an LU solve is
//! numerically treacherous exactly where we need it most. The minor-based
//! evaluation used here costs `O(n⁵)` but is unconditionally stable, and the
//! matrices are tiny (`n = m+p ≤ 8` in every experiment of the paper); the
//! `det_jacobian` criterion bench quantifies the trade-off against the
//! LU shortcut.

use crate::lu::{Lu, LuError};
use crate::matrix::CMat;
use pieri_num::Complex64;

/// Determinant computed by recursive cofactor expansion.
///
/// Exponential in `n`; intended for `n ≤ 4` cross-checks and for the bases
/// of the minor computations. Falls back to expansion along the first row.
pub fn det_via_minors(a: &CMat) -> Complex64 {
    assert!(a.is_square(), "det of non-square matrix");
    let n = a.rows();
    match n {
        0 => Complex64::ONE,
        1 => a[(0, 0)],
        2 => a[(0, 0)] * a[(1, 1)] - a[(0, 1)] * a[(1, 0)],
        3 => {
            let m = |i: usize, j: usize| a[(i, j)];
            m(0, 0) * (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1))
                - m(0, 1) * (m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0))
                + m(0, 2) * (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0))
        }
        _ => {
            let mut acc = Complex64::ZERO;
            let mut sign = 1.0;
            for j in 0..n {
                let entry = a[(0, j)];
                if entry != Complex64::ZERO {
                    acc += entry.scale(sign) * det_via_minors(&a.minor(0, j));
                }
                sign = -sign;
            }
            acc
        }
    }
}

/// Determinant of an `(n−1)`-sized minor through LU, with a cofactor-
/// expansion fallback when the minor itself is singular (then its
/// determinant is simply zero, which LU reports as an error).
fn minor_det(a: &CMat, r: usize, c: usize) -> Complex64 {
    let m = a.minor(r, c);
    if m.rows() <= 3 {
        return det_via_minors(&m);
    }
    match Lu::factor(&m) {
        Ok(lu) => lu.det(),
        Err(LuError::Singular { .. }) => Complex64::ZERO,
        Err(LuError::NotSquare) => unreachable!("minor of square matrix is square"),
    }
}

/// Single cofactor `C_{r,c} = (−1)^{r+c} · det(minor(a, r, c))`.
pub fn cofactor(a: &CMat, r: usize, c: usize) -> Complex64 {
    let sign = if (r + c).is_multiple_of(2) { 1.0 } else { -1.0 };
    minor_det(a, r, c).scale(sign)
}

/// Full cofactor matrix `C` with `C_{r,c}` in position `(r, c)`.
///
/// The adjugate is its transpose: `adj(A) = Cᵀ`, and `A·adj(A) = det(A)·I`
/// holds for *all* square matrices, including singular ones — the property
/// the homotopy Jacobians rely on.
pub fn cofactor_matrix(a: &CMat) -> CMat {
    assert!(a.is_square(), "cofactor matrix of non-square matrix");
    let n = a.rows();
    CMat::from_fn(n, n, |r, c| cofactor(a, r, c))
}

/// Adjugate `adj(A) = Cᵀ` (classical adjoint).
pub fn adjugate(a: &CMat) -> CMat {
    cofactor_matrix(a).transpose()
}

/// Gradient of `det A` with respect to the matrix entries:
/// `∂ det A / ∂ A_{r,c} = C_{r,c}`, returned as the full cofactor matrix.
///
/// This is the quantity the Pieri homotopy evaluator contracts against
/// `∂A/∂x_k` (sparse: each unknown touches exactly one entry) and against
/// `∂A/∂t` (dense in the moving column block).
pub fn det_gradient(a: &CMat) -> CMat {
    cofactor_matrix(a)
}

/// Pivot-ratio guard above which [`DetCofactor`] abandons the LU shortcut
/// for the unconditionally stable minor expansion. The LU cofactor
/// `det(A)·A⁻ᵀ` loses roughly `κ(A)·ε` relative accuracy, so beyond this
/// ratio fewer than ~4 significant digits would survive — too few for a
/// Newton Jacobian near a singular endpoint.
pub const FUSED_PIVOT_RATIO_LIMIT: f64 = 1e12;

/// Fused determinant + cofactor evaluation with reusable storage.
///
/// One LU factorisation yields the determinant (product of pivots) *and*
/// every cofactor entry: column `c` of the cofactor matrix is
/// `det(A) · y` where `Aᵀ·y = e_c`, i.e. two triangular solves per column
/// against the factorisation already in hand — `O(n³)` total versus the
/// `O(n⁵)` of [`cofactor_matrix`]'s per-entry minors. When the pivot
/// ratio signals near-singularity (the regime where `det·A⁻ᵀ` cancels
/// catastrophically — and, by construction, exactly where a Pieri
/// condition matrix sits at a solution) the engine falls back to the
/// minor expansion automatically, producing bitwise the same entries as
/// [`cofactor_matrix`]. Every buffer is owned and reused, so steady-state
/// calls perform no heap allocation.
#[derive(Debug)]
pub struct DetCofactor {
    lu: Lu,
    rhs: Vec<Complex64>,
    minor: CMat,
    minor_lu: Lu,
}

impl Default for DetCofactor {
    fn default() -> Self {
        DetCofactor::new()
    }
}

impl DetCofactor {
    /// Creates an engine with empty buffers; they grow on first use and
    /// are reused afterwards.
    pub fn new() -> Self {
        DetCofactor {
            lu: Lu::default(),
            // lint:allow(hot-path-alloc) — empty-capacity constructor;
            // the buffer grows on first use and is reused afterwards.
            rhs: Vec::new(),
            minor: CMat::zeros(0, 0),
            minor_lu: Lu::default(),
        }
    }

    /// Computes `det(a)` and writes the full cofactor matrix into `cof`.
    ///
    /// The determinant follows the [`crate::try_det`] convention:
    /// numerically singular input reports `0`. The cofactor of a singular
    /// matrix is still well-defined and nonzero for rank `n−1`, which is
    /// what the homotopy Jacobians rely on.
    ///
    /// # Panics
    /// Panics when `a` is not square or `cof` has a different shape.
    pub fn det_and_cofactor_into(&mut self, a: &CMat, cof: &mut CMat) -> Complex64 {
        self.det_and_cofactor_cols_into(a, cof, a.rows())
    }

    /// [`DetCofactor::det_and_cofactor_into`] restricted to the leading
    /// `cols` cofactor columns; the remaining columns of `cof` are left
    /// untouched. The Newton-corrector kernel only ever contracts the
    /// `p` X-block columns of a condition matrix, so it skips the
    /// plane-block extraction entirely (`jacobian_and_dt` still needs
    /// every column for the `∂A/∂t` contraction).
    ///
    /// # Panics
    /// Panics when `a` is not square, `cof` has a different shape, or
    /// `cols > a.rows()`.
    pub fn det_and_cofactor_cols_into(
        &mut self,
        a: &CMat,
        cof: &mut CMat,
        cols: usize,
    ) -> Complex64 {
        assert!(a.is_square(), "det_and_cofactor_into: non-square matrix");
        assert_eq!(
            (cof.rows(), cof.cols()),
            (a.rows(), a.cols()),
            "det_and_cofactor_into: cofactor shape mismatch"
        );
        assert!(cols <= a.rows(), "det_and_cofactor_into: column range");
        let n = a.rows();
        // Up to 4×4 the closed-form minors beat the triangular-solve
        // route for the *cofactors* (no solves, unconditionally stable)
        // — and `m + p = 4` is the most common condition-matrix size in
        // the pole-placement workload. The determinant still comes from
        // the LU pivots: near a singularity (= near a solution, where
        // residual accuracy decides whether Newton converges) the pivot
        // product is markedly more accurate than a Laplace expansion,
        // whose four large terms cancel to the tiny value. This also
        // keeps the fused residual bitwise identical to [`crate::det`].
        if n <= 4 {
            self.cofactor_via_minors(a, cof, cols);
            return match Lu::factor_into(a, &mut self.lu) {
                Ok(()) => self.lu.det(),
                Err(LuError::Singular { .. }) => Complex64::ZERO,
                Err(LuError::NotSquare) => unreachable!("squareness asserted above"),
            };
        }
        match Lu::factor_into(a, &mut self.lu) {
            Ok(()) if self.lu.pivot_ratio() <= FUSED_PIVOT_RATIO_LIMIT => {
                let d = self.lu.det();
                self.rhs.clear();
                self.rhs.resize(n, Complex64::ZERO);
                for c in 0..cols {
                    self.rhs.fill(Complex64::ZERO);
                    self.rhs[c] = Complex64::ONE;
                    self.lu.solve_transpose_in_place(&mut self.rhs);
                    for r in 0..n {
                        cof[(r, c)] = d * self.rhs[r];
                    }
                }
                d
            }
            Ok(()) => {
                // Factorisation succeeded but the pivots are too spread:
                // keep the LU determinant (the same value `det` reports)
                // but take the cofactors from the stable minor expansion.
                let d = self.lu.det();
                self.cofactor_via_minors(a, cof, cols);
                d
            }
            Err(LuError::Singular { .. }) => {
                self.cofactor_via_minors(a, cof, cols);
                Complex64::ZERO
            }
            Err(LuError::NotSquare) => unreachable!("squareness asserted above"),
        }
    }

    /// Minor-expansion fallback writing the leading `cols` columns into
    /// `cof` — the same arithmetic as [`cofactor_matrix`] (bitwise
    /// identical entries), but against the engine's reusable minor/LU
    /// scratch.
    fn cofactor_via_minors(&mut self, a: &CMat, cof: &mut CMat, cols: usize) {
        let n = a.rows();
        if n == 0 {
            return;
        }
        if (self.minor.rows(), self.minor.cols()) != (n - 1, n - 1) {
            self.minor = CMat::zeros(n - 1, n - 1);
        }
        for r in 0..n {
            for c in 0..cols {
                a.minor_into(r, c, &mut self.minor);
                let d = if n - 1 <= 3 {
                    det_via_minors(&self.minor)
                } else {
                    match Lu::factor_into(&self.minor, &mut self.minor_lu) {
                        Ok(()) => self.minor_lu.det(),
                        Err(LuError::Singular { .. }) => Complex64::ZERO,
                        Err(LuError::NotSquare) => unreachable!("minor is square"),
                    }
                };
                let sign = if (r + c).is_multiple_of(2) { 1.0 } else { -1.0 };
                cof[(r, c)] = d.scale(sign);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu;
    use pieri_num::{random_complex, seeded_rng};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn det_via_minors_matches_lu() {
        let mut rng = seeded_rng(20);
        for n in 1..=6 {
            let a = CMat::random(n, n, &mut rng, random_complex);
            let d1 = det_via_minors(&a);
            let d2 = lu::det(&a);
            assert!(d1.dist(d2) < 1e-9 * (1.0 + d1.norm()), "n={n}");
        }
    }

    #[test]
    fn adjugate_identity_nonsingular() {
        let mut rng = seeded_rng(21);
        for n in 2..=6 {
            let a = CMat::random(n, n, &mut rng, random_complex);
            let adj = adjugate(&a);
            let d = lu::det(&a);
            let prod = &a * &adj;
            let target = CMat::identity(n).scale(d);
            let err = (&prod - &target).fro_norm();
            assert!(err < 1e-8 * (1.0 + d.norm()), "n={n} err={err}");
        }
    }

    #[test]
    fn adjugate_identity_holds_for_singular_matrices() {
        // Rank n−1 matrix: adj(A) is the rank-1 matrix spanning the null
        // space; A·adj(A) must be exactly det(A)·I = 0.
        let a = CMat::from_rows(&[
            vec![c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0)],
            vec![c(4.0, 0.0), c(5.0, 0.0), c(6.0, 0.0)],
            vec![c(5.0, 0.0), c(7.0, 0.0), c(9.0, 0.0)], // row0 + row1
        ]);
        let adj = adjugate(&a);
        assert!(
            adj.fro_norm() > 1e-12,
            "adjugate of rank n−1 matrix is nonzero"
        );
        let prod = &a * &adj;
        assert!(prod.fro_norm() < 1e-10, "A·adj(A) = 0 for singular A");
    }

    #[test]
    fn cofactor_gradient_matches_finite_differences() {
        let mut rng = seeded_rng(22);
        let a = CMat::random(5, 5, &mut rng, random_complex);
        let grad = det_gradient(&a);
        let d0 = det_via_minors(&a);
        let h = 1e-7;
        for r in 0..5 {
            for cidx in 0..5 {
                let mut ap = a.clone();
                ap[(r, cidx)] += Complex64::real(h);
                let d1 = det_via_minors(&ap);
                let fd = (d1 - d0) / h;
                assert!(
                    fd.dist(grad[(r, cidx)]) < 1e-5 * (1.0 + grad[(r, cidx)].norm()),
                    "entry ({r},{cidx}): fd={fd:?} grad={:?}",
                    grad[(r, cidx)]
                );
            }
        }
    }

    #[test]
    fn adjugate_of_2x2_closed_form() {
        let a = CMat::from_rows(&[
            vec![c(1.0, 1.0), c(2.0, 0.0)],
            vec![c(0.0, 3.0), c(4.0, -1.0)],
        ]);
        let adj = adjugate(&a);
        assert!(adj[(0, 0)].dist(a[(1, 1)]) < 1e-14);
        assert!(adj[(0, 1)].dist(-a[(0, 1)]) < 1e-14);
        assert!(adj[(1, 0)].dist(-a[(1, 0)]) < 1e-14);
        assert!(adj[(1, 1)].dist(a[(0, 0)]) < 1e-14);
    }

    #[test]
    fn fused_det_cofactor_matches_minors_on_generic_matrices() {
        let mut rng = seeded_rng(23);
        let mut engine = DetCofactor::new();
        for n in 1..=8 {
            let a = CMat::random(n, n, &mut rng, random_complex);
            let mut cof = CMat::zeros(n, n);
            let d = engine.det_and_cofactor_into(&a, &mut cof);
            let d_ref = lu::det(&a);
            assert!(d.dist(d_ref) < 1e-10 * (1.0 + d_ref.norm()), "n={n} det");
            let c_ref = cofactor_matrix(&a);
            let scale = c_ref.max_norm().max(1.0);
            for r in 0..n {
                for cc in 0..n {
                    assert!(
                        cof[(r, cc)].dist(c_ref[(r, cc)]) < 1e-12 * scale,
                        "n={n} ({r},{cc}): fused={:?} minors={:?}",
                        cof[(r, cc)],
                        c_ref[(r, cc)]
                    );
                }
            }
        }
    }

    #[test]
    fn fused_engine_falls_back_on_singular_input() {
        // Rank n−1 at n = 5 (past the closed-form cutoff): LU
        // factorisation fails, the fallback must reproduce the
        // minor-based cofactor bitwise and report det = 0.
        let a = CMat::from_rows(&[
            vec![
                c(1.0, 0.0),
                c(2.0, 0.0),
                c(3.0, 0.0),
                c(0.5, 1.0),
                c(1.0, -1.0),
            ],
            vec![
                c(4.0, 0.0),
                c(5.0, 0.0),
                c(6.0, 0.0),
                c(-1.0, 0.25),
                c(0.0, 2.0),
            ],
            vec![
                c(5.0, 0.0),
                c(7.0, 0.0),
                c(9.0, 0.0),
                c(-0.5, 1.25),
                c(1.0, 1.0),
            ], // row0 + row1
            vec![
                c(0.0, 2.0),
                c(1.0, 1.0),
                c(2.0, 0.0),
                c(3.0, 0.0),
                c(-2.0, 0.5),
            ],
            vec![
                c(1.5, 0.0),
                c(0.0, -1.0),
                c(2.5, 2.0),
                c(1.0, 0.0),
                c(0.25, 0.0),
            ],
        ]);
        let mut engine = DetCofactor::new();
        let mut cof = CMat::zeros(5, 5);
        let d = engine.det_and_cofactor_into(&a, &mut cof);
        assert_eq!(d, Complex64::ZERO);
        assert_eq!(cof, cofactor_matrix(&a), "fallback is bitwise the minors");
        assert!(cof.fro_norm() > 1e-10, "rank n−1 cofactor is nonzero");
    }

    #[test]
    fn fused_engine_small_matrices_use_closed_form_minors() {
        // n ≤ 4 takes the closed-form route for the *cofactors*
        // (bitwise the minor expansion) while the determinant still
        // comes from the LU pivots — Laplace expansion loses the
        // cancellation fight near singularity. Singular input reports
        // a zero det without error.
        let mut rng = seeded_rng(25);
        let mut engine = DetCofactor::new();
        for n in 1..=4 {
            let a = CMat::random(n, n, &mut rng, random_complex);
            let mut cof = CMat::zeros(n, n);
            let d = engine.det_and_cofactor_into(&a, &mut cof);
            assert_eq!(cof, cofactor_matrix(&a), "n={n}: bitwise minors");
            let d_ref = det_via_minors(&a);
            assert!(d.dist(d_ref) < 1e-12 * (1.0 + d_ref.norm()), "n={n}");
        }
        // Singular 3×3 (rank 1).
        let s = CMat::from_fn(3, 3, |i, j| c((i + 1) as f64 * (j + 1) as f64, 0.0));
        let mut cof = CMat::zeros(3, 3);
        let d = engine.det_and_cofactor_into(&s, &mut cof);
        assert!(d.norm() < 1e-12, "singular det ≈ 0, got {d:?}");
    }

    #[test]
    fn fused_engine_falls_back_on_wild_pivot_ratio() {
        // diag(1, …, 1, 1e-13): factorisation succeeds but the pivot
        // ratio exceeds the guard, so cofactors must come from minors.
        let n = 5;
        let a = CMat::from_fn(n, n, |i, j| {
            if i != j {
                Complex64::ZERO
            } else if i == n - 1 {
                c(1e-13, 0.0)
            } else {
                Complex64::ONE
            }
        });
        let mut engine = DetCofactor::new();
        let mut cof = CMat::zeros(n, n);
        let d = engine.det_and_cofactor_into(&a, &mut cof);
        assert!(d.dist(c(1e-13, 0.0)) < 1e-25, "LU det survives");
        assert_eq!(cof, cofactor_matrix(&a), "cofactors from the fallback");
    }

    #[test]
    fn fused_engine_column_restriction_matches_full_run() {
        let mut rng = seeded_rng(26);
        let mut engine = DetCofactor::new();
        for n in 2..=7 {
            for cols in [0, 1, n / 2, n] {
                let a = CMat::random(n, n, &mut rng, random_complex);
                let mut full = CMat::zeros(n, n);
                let d_full = engine.det_and_cofactor_into(&a, &mut full);
                let mut part = CMat::zeros(n, n);
                let d_part = engine.det_and_cofactor_cols_into(&a, &mut part, cols);
                assert_eq!(d_full, d_part, "n={n} cols={cols}: same det");
                for r in 0..n {
                    for c in 0..cols {
                        assert_eq!(
                            part[(r, c)],
                            full[(r, c)],
                            "n={n} cols={cols} ({r},{c}): leading columns bitwise equal"
                        );
                    }
                    for c in cols..n {
                        assert_eq!(
                            part[(r, c)],
                            Complex64::ZERO,
                            "n={n} cols={cols}: trailing columns untouched"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_engine_storage_survives_shape_changes() {
        let mut rng = seeded_rng(24);
        let mut engine = DetCofactor::new();
        for &n in &[4usize, 6, 3, 6, 8, 4] {
            let a = CMat::random(n, n, &mut rng, random_complex);
            let mut cof = CMat::zeros(n, n);
            engine.det_and_cofactor_into(&a, &mut cof);
            let c_ref = cofactor_matrix(&a);
            let scale = c_ref.max_norm().max(1.0);
            assert!(
                (&cof - &c_ref).max_norm() < 1e-11 * scale,
                "n={n} after resize"
            );
        }
    }

    #[test]
    fn empty_and_1x1_edge_cases() {
        assert_eq!(det_via_minors(&CMat::zeros(0, 0)), Complex64::ONE);
        let a = CMat::from_rows(&[vec![c(7.0, -2.0)]]);
        assert_eq!(det_via_minors(&a), c(7.0, -2.0));
        // adj of 1x1 is [1] (empty minor has det 1).
        assert_eq!(adjugate(&a)[(0, 0)], Complex64::ONE);
    }
}
