//! Cofactor and adjugate machinery for determinantal conditions.
//!
//! The Pieri intersection conditions are determinants `det A(x,t)` of small
//! matrices whose entries are *affine* in the unknowns. By Jacobi's formula,
//!
//! ```text
//! ∂ det A / ∂ x_k  =  Σ_{r,c}  C_{r,c} · ∂A_{r,c}/∂x_k ,
//! ```
//!
//! where `C` is the cofactor matrix. Evaluating the cofactor matrix
//! numerically therefore differentiates every intersection condition exactly
//! — no symbolic determinant expansion is ever formed.
//!
//! Near a solution the condition matrix is (by construction) nearly
//! singular, so computing `adj(A) = det(A)·A⁻¹` through an LU solve is
//! numerically treacherous exactly where we need it most. The minor-based
//! evaluation used here costs `O(n⁵)` but is unconditionally stable, and the
//! matrices are tiny (`n = m+p ≤ 8` in every experiment of the paper); the
//! `det_jacobian` criterion bench quantifies the trade-off against the
//! LU shortcut.

use crate::lu::{Lu, LuError};
use crate::matrix::CMat;
use pieri_num::Complex64;

/// Determinant computed by recursive cofactor expansion.
///
/// Exponential in `n`; intended for `n ≤ 4` cross-checks and for the bases
/// of the minor computations. Falls back to expansion along the first row.
pub fn det_via_minors(a: &CMat) -> Complex64 {
    assert!(a.is_square(), "det of non-square matrix");
    let n = a.rows();
    match n {
        0 => Complex64::ONE,
        1 => a[(0, 0)],
        2 => a[(0, 0)] * a[(1, 1)] - a[(0, 1)] * a[(1, 0)],
        3 => {
            let m = |i: usize, j: usize| a[(i, j)];
            m(0, 0) * (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1))
                - m(0, 1) * (m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0))
                + m(0, 2) * (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0))
        }
        _ => {
            let mut acc = Complex64::ZERO;
            let mut sign = 1.0;
            for j in 0..n {
                let entry = a[(0, j)];
                if entry != Complex64::ZERO {
                    acc += entry.scale(sign) * det_via_minors(&a.minor(0, j));
                }
                sign = -sign;
            }
            acc
        }
    }
}

/// Determinant of an `(n−1)`-sized minor through LU, with a cofactor-
/// expansion fallback when the minor itself is singular (then its
/// determinant is simply zero, which LU reports as an error).
fn minor_det(a: &CMat, r: usize, c: usize) -> Complex64 {
    let m = a.minor(r, c);
    if m.rows() <= 3 {
        return det_via_minors(&m);
    }
    match Lu::factor(&m) {
        Ok(lu) => lu.det(),
        Err(LuError::Singular { .. }) => Complex64::ZERO,
        Err(LuError::NotSquare) => unreachable!("minor of square matrix is square"),
    }
}

/// Single cofactor `C_{r,c} = (−1)^{r+c} · det(minor(a, r, c))`.
pub fn cofactor(a: &CMat, r: usize, c: usize) -> Complex64 {
    let sign = if (r + c).is_multiple_of(2) { 1.0 } else { -1.0 };
    minor_det(a, r, c).scale(sign)
}

/// Full cofactor matrix `C` with `C_{r,c}` in position `(r, c)`.
///
/// The adjugate is its transpose: `adj(A) = Cᵀ`, and `A·adj(A) = det(A)·I`
/// holds for *all* square matrices, including singular ones — the property
/// the homotopy Jacobians rely on.
pub fn cofactor_matrix(a: &CMat) -> CMat {
    assert!(a.is_square(), "cofactor matrix of non-square matrix");
    let n = a.rows();
    CMat::from_fn(n, n, |r, c| cofactor(a, r, c))
}

/// Adjugate `adj(A) = Cᵀ` (classical adjoint).
pub fn adjugate(a: &CMat) -> CMat {
    cofactor_matrix(a).transpose()
}

/// Gradient of `det A` with respect to the matrix entries:
/// `∂ det A / ∂ A_{r,c} = C_{r,c}`, returned as the full cofactor matrix.
///
/// This is the quantity the Pieri homotopy evaluator contracts against
/// `∂A/∂x_k` (sparse: each unknown touches exactly one entry) and against
/// `∂A/∂t` (dense in the moving column block).
pub fn det_gradient(a: &CMat) -> CMat {
    cofactor_matrix(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu;
    use pieri_num::{random_complex, seeded_rng};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn det_via_minors_matches_lu() {
        let mut rng = seeded_rng(20);
        for n in 1..=6 {
            let a = CMat::random(n, n, &mut rng, random_complex);
            let d1 = det_via_minors(&a);
            let d2 = lu::det(&a);
            assert!(d1.dist(d2) < 1e-9 * (1.0 + d1.norm()), "n={n}");
        }
    }

    #[test]
    fn adjugate_identity_nonsingular() {
        let mut rng = seeded_rng(21);
        for n in 2..=6 {
            let a = CMat::random(n, n, &mut rng, random_complex);
            let adj = adjugate(&a);
            let d = lu::det(&a);
            let prod = &a * &adj;
            let target = CMat::identity(n).scale(d);
            let err = (&prod - &target).fro_norm();
            assert!(err < 1e-8 * (1.0 + d.norm()), "n={n} err={err}");
        }
    }

    #[test]
    fn adjugate_identity_holds_for_singular_matrices() {
        // Rank n−1 matrix: adj(A) is the rank-1 matrix spanning the null
        // space; A·adj(A) must be exactly det(A)·I = 0.
        let a = CMat::from_rows(&[
            vec![c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0)],
            vec![c(4.0, 0.0), c(5.0, 0.0), c(6.0, 0.0)],
            vec![c(5.0, 0.0), c(7.0, 0.0), c(9.0, 0.0)], // row0 + row1
        ]);
        let adj = adjugate(&a);
        assert!(
            adj.fro_norm() > 1e-12,
            "adjugate of rank n−1 matrix is nonzero"
        );
        let prod = &a * &adj;
        assert!(prod.fro_norm() < 1e-10, "A·adj(A) = 0 for singular A");
    }

    #[test]
    fn cofactor_gradient_matches_finite_differences() {
        let mut rng = seeded_rng(22);
        let a = CMat::random(5, 5, &mut rng, random_complex);
        let grad = det_gradient(&a);
        let d0 = det_via_minors(&a);
        let h = 1e-7;
        for r in 0..5 {
            for cidx in 0..5 {
                let mut ap = a.clone();
                ap[(r, cidx)] += Complex64::real(h);
                let d1 = det_via_minors(&ap);
                let fd = (d1 - d0) / h;
                assert!(
                    fd.dist(grad[(r, cidx)]) < 1e-5 * (1.0 + grad[(r, cidx)].norm()),
                    "entry ({r},{cidx}): fd={fd:?} grad={:?}",
                    grad[(r, cidx)]
                );
            }
        }
    }

    #[test]
    fn adjugate_of_2x2_closed_form() {
        let a = CMat::from_rows(&[
            vec![c(1.0, 1.0), c(2.0, 0.0)],
            vec![c(0.0, 3.0), c(4.0, -1.0)],
        ]);
        let adj = adjugate(&a);
        assert!(adj[(0, 0)].dist(a[(1, 1)]) < 1e-14);
        assert!(adj[(0, 1)].dist(-a[(0, 1)]) < 1e-14);
        assert!(adj[(1, 0)].dist(-a[(1, 0)]) < 1e-14);
        assert!(adj[(1, 1)].dist(a[(0, 0)]) < 1e-14);
    }

    #[test]
    fn empty_and_1x1_edge_cases() {
        assert_eq!(det_via_minors(&CMat::zeros(0, 0)), Complex64::ONE);
        let a = CMat::from_rows(&[vec![c(7.0, -2.0)]]);
        assert_eq!(det_via_minors(&a), c(7.0, -2.0));
        // adj of 1x1 is [1] (empty minor has det 1).
        assert_eq!(adjugate(&a)[(0, 0)], Complex64::ONE);
    }
}
