//! Dense complex linear algebra for numerical Schubert calculus.
//!
//! This crate replaces the linear-algebra layer that PHCpack obtains from
//! its Ada numerics library. Matrices are small (the Pieri homotopies of the
//! ICPP 2004 paper never exceed a few dozen rows), so the implementations
//! favour robustness and clarity over blocked/SIMD kernels:
//!
//! * [`CMat`] — dense row-major complex matrix with the usual constructors
//!   and arithmetic;
//! * [`Lu`] — LU factorisation with partial pivoting: linear solves,
//!   determinants, inverses;
//! * [`Qr`] — Householder QR: least-squares solves and orthonormal bases;
//! * [`eigenvalues`] — Hessenberg reduction followed by the shifted complex
//!   QR iteration (Wilkinson shifts), used to verify closed-loop pole
//!   placement;
//! * [`adjugate`]/[`det_gradient`] — cofactor machinery that differentiates
//!   determinantal intersection conditions without symbolic expansion; this
//!   is the kernel of the Pieri homotopy evaluator;
//! * [`DetCofactor`] — the fused det+cofactor engine behind the homotopy
//!   fast path: one LU factorisation per condition matrix yields the
//!   determinant and every cofactor entry (`O(n³)`), with an automatic
//!   fall-back to the stable minor expansion near singularity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over multiple arrays at once are the clearest way to
// write the dense numeric kernels here; the iterator-chain alternative
// clippy suggests obscures the index coupling.
#![allow(clippy::needless_range_loop)]

mod adjugate;
mod eig;
mod generic;
mod lu;
mod matrix;
mod qr;
mod vector;

pub use adjugate::{
    adjugate, cofactor, cofactor_matrix, det_gradient, det_via_minors, DetCofactor,
    FUSED_PIVOT_RATIO_LIMIT,
};
pub use eig::{eigenvalues, hessenberg, EigError};
pub use generic::det_generic;
pub use lu::{det, try_det, Lu, LuError};
pub use matrix::CMat;
pub use qr::Qr;
pub use vector::{axpy, dot, dot_conj, inf_norm, norm2, normalize, scale_in_place, sub_into, CVec};
