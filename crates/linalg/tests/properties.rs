//! Property-based tests of the linear-algebra kernels.

use pieri_linalg::{adjugate, det, det_via_minors, eigenvalues, CMat, Lu, Qr};
use pieri_num::{random_complex, seeded_rng, Complex64};
use proptest::prelude::*;

fn random_mat(n: usize, seed: u64) -> CMat {
    let mut rng = seeded_rng(seed);
    CMat::random(n, n, &mut rng, random_complex)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// LU solve: ‖A·x − b‖ small for generic A.
    #[test]
    fn lu_solve_residual(n in 1usize..8, seed in 0u64..10_000) {
        let a = random_mat(n, seed);
        let mut rng = seeded_rng(seed ^ 0xABCD);
        let b: Vec<Complex64> = (0..n).map(|_| random_complex(&mut rng)).collect();
        let lu = Lu::factor(&a).expect("generic matrices are nonsingular");
        let x = lu.solve(&b);
        let ax = a.mul_vec(&x);
        for i in 0..n {
            prop_assert!(ax[i].dist(b[i]) < 1e-8 * (1.0 + b[i].norm()));
        }
    }

    /// det(A·B) = det(A)·det(B).
    #[test]
    fn det_multiplicative(n in 1usize..6, seed in 0u64..10_000) {
        let a = random_mat(n, seed);
        let b = random_mat(n, seed ^ 0x1111);
        let lhs = det(&(&a * &b));
        let rhs = det(&a) * det(&b);
        prop_assert!(lhs.dist(rhs) < 1e-8 * (1.0 + rhs.norm()));
    }

    /// det(Aᵀ) = det(A) and det(Aᴴ) = conj(det(A)).
    #[test]
    fn det_transpose_conjugate(n in 1usize..6, seed in 0u64..10_000) {
        let a = random_mat(n, seed);
        let d = det(&a);
        prop_assert!(det(&a.transpose()).dist(d) < 1e-9 * (1.0 + d.norm()));
        prop_assert!(det(&a.conj_transpose()).dist(d.conj()) < 1e-9 * (1.0 + d.norm()));
    }

    /// A·adj(A) = det(A)·I for all matrices (including near-singular).
    #[test]
    fn adjugate_identity(n in 2usize..6, seed in 0u64..10_000) {
        let a = random_mat(n, seed);
        let d = det(&a);
        let prod = &a * &adjugate(&a);
        let target = CMat::identity(n).scale(d);
        prop_assert!((&prod - &target).fro_norm() < 1e-7 * (1.0 + d.norm()));
    }

    /// Cofactor expansion agrees with LU determinants.
    #[test]
    fn minor_det_agrees(n in 1usize..6, seed in 0u64..10_000) {
        let a = random_mat(n, seed);
        let d1 = det(&a);
        let d2 = det_via_minors(&a);
        prop_assert!(d1.dist(d2) < 1e-8 * (1.0 + d1.norm()));
    }

    /// QR reconstruction and unitarity.
    #[test]
    fn qr_reconstruction(rows in 2usize..7, extra in 0usize..3, seed in 0u64..10_000) {
        let cols = rows.saturating_sub(extra).max(1);
        let mut rng = seeded_rng(seed);
        let a = CMat::random(rows, cols, &mut rng, random_complex);
        let qr = Qr::factor(&a);
        prop_assert!((&(qr.q() * qr.r()) - &a).fro_norm() < 1e-9);
        let qhq = &qr.q().conj_transpose() * qr.q();
        prop_assert!((&qhq - &CMat::identity(rows)).fro_norm() < 1e-9);
    }

    /// Eigenvalue sum = trace, product = determinant.
    #[test]
    fn eigen_trace_det(n in 1usize..8, seed in 0u64..10_000) {
        let a = random_mat(n, seed);
        let eigs = eigenvalues(&a).expect("QR converges");
        prop_assert_eq!(eigs.len(), n);
        let sum: Complex64 = eigs.iter().copied().sum();
        let prod: Complex64 = eigs.iter().copied().product();
        prop_assert!(sum.dist(a.trace()) < 1e-7 * (1.0 + a.trace().norm()));
        let d = det(&a);
        prop_assert!(prod.dist(d) < 1e-6 * (1.0 + d.norm()));
    }

    /// Shifting a matrix shifts its spectrum: eig(A + cI) = eig(A) + c.
    #[test]
    fn eigen_shift(n in 1usize..6, seed in 0u64..10_000) {
        let a = random_mat(n, seed);
        let mut rng = seeded_rng(seed ^ 0x5555);
        let c = random_complex(&mut rng);
        let shifted = &a + &CMat::identity(n).scale(c);
        let mut e1: Vec<Complex64> = eigenvalues(&a).unwrap().iter().map(|&z| z + c).collect();
        let e2 = eigenvalues(&shifted).unwrap();
        // Multiset match.
        for z in e2 {
            let (idx, d) = e1
                .iter()
                .enumerate()
                .map(|(i, w)| (i, w.dist(z)))
                .min_by(|x, y| x.1.total_cmp(&y.1))
                .expect("same length");
            prop_assert!(d < 1e-6 * (1.0 + z.norm()), "eigenvalue {z:?} unmatched ({d})");
            e1.swap_remove(idx);
        }
    }
}
