//! Certification and double-double refinement of Pieri solutions.
//!
//! The solutions a Pieri solve ships are the coefficient vectors at the
//! root pattern; each must satisfy every intersection condition
//! `det [X(s_i) | L_i] = 0`. This module evaluates exactly that target
//! system at **any scalar precision** ([`TargetConditions`], generic
//! over [`pieri_num::Scalar`]) and uses it to
//!
//! 1. produce an α-theory Newton certificate per solution (through
//!    [`pieri_certify::certify_endpoint`] on the instance homotopy at
//!    `t = 1`, whose fused `DetCofactor` kernels supply residual and
//!    Jacobian in one factorisation per condition), and
//! 2. polish `Certified`/`Suspect` endpoints in double-double with the
//!    mixed-precision refiner ([`pieri_certify::refine_endpoint`]),
//!    pushing residuals well below what `f64` tracking can reach.

use crate::eval::CoeffLayout;
use crate::instance::InstanceHomotopy;
use crate::problem::PieriProblem;
use pieri_certify::{certify_endpoint, refine_endpoint, Certificate, CertifyPolicy, SystemEval};
use pieri_linalg::{det_generic, CMat};
use pieri_num::{Complex64, DdComplex, Scalar};
use pieri_tracker::TrackWorkspace;

/// The target intersection conditions of a Pieri problem at the root
/// pattern, evaluable at any scalar precision.
///
/// Condition `i` is `det [X(s_i) | L_i]` with the map evaluated at the
/// dehomogenised point `(s_i, 1)`; the plane data and interpolation
/// points embed exactly into the wider scalar (`f64 → Dd` is lossless),
/// so evaluating at [`DdComplex`] measures the true residual of the
/// shipped `f64` solution to ~32 significant digits.
pub struct TargetConditions {
    layout: CoeffLayout,
    planes: Vec<CMat>,
    points: Vec<Complex64>,
}

impl TargetConditions {
    /// Builds the evaluator for `problem`'s root pattern.
    pub fn new(problem: &PieriProblem) -> Self {
        let root = problem.shape().root();
        TargetConditions {
            layout: CoeffLayout::new(&root),
            planes: problem.planes().to_vec(),
            points: problem.points().to_vec(),
        }
    }
}

impl<S: Scalar> SystemEval<S> for TargetConditions {
    fn dim(&self) -> usize {
        self.layout.dim()
    }

    fn eval(&self, x: &[S], out: &mut [S]) {
        let shape = self.layout.pattern().shape();
        let (bn, p, m) = (shape.big_n(), shape.p(), shape.m());
        let k = self.layout.dim();
        debug_assert_eq!(x.len(), k);
        debug_assert_eq!(out.len(), self.planes.len());
        let max_deg = (0..k)
            .map(|s| self.layout.slot_degree(s))
            .max()
            .unwrap_or(0);
        let mut a = vec![S::zero(); bn * bn];
        let mut pow = vec![S::one(); max_deg + 1];
        for (i, (plane, &s)) in self.planes.iter().zip(self.points.iter()).enumerate() {
            for v in a.iter_mut() {
                *v = S::zero();
            }
            // Plane block: columns p..p+m, exact embedding of L_i.
            for r in 0..bn {
                for c in 0..m {
                    a[r * bn + p + c] = S::from_c64(plane[(r, c)]);
                }
            }
            // Powers of the interpolation point for the slot weights.
            let sv = S::from_c64(s);
            for d in 1..=max_deg {
                pow[d] = pow[d - 1] * sv;
            }
            // Top pivots: weight u^{d_j} = 1 at the dehomogenised point.
            for j in 0..p {
                a[j * bn + j] = a[j * bn + j] + S::one();
            }
            // Free coefficients: weight s^d, accumulated per physical
            // entry exactly as `CoeffLayout::eval_map` does.
            for (slot, &xs) in x.iter().enumerate() {
                let idx = self.layout.phys_row(slot) * bn + self.layout.col(slot);
                let w = pow[self.layout.slot_degree(slot)];
                a[idx] = a[idx] + xs * w;
            }
            out[i] = det_generic(&mut a, bn);
        }
    }
}

/// Certifies (and, per policy, double-double-refines **in place**) a set
/// of root-pattern solution vectors of `problem`.
///
/// Returns one [`Certificate`] per vector, in order. With
/// `policy.certify == false && policy.refine == false` this is a no-op
/// returning an empty vector, and the coefficients are untouched.
pub fn certify_solution_set(
    problem: &PieriProblem,
    coeffs: &mut [Vec<Complex64>],
    policy: &CertifyPolicy,
) -> Vec<Certificate> {
    if !policy.certify && !policy.refine {
        return Vec::new();
    }
    // Degenerate start == target: the instance homotopy at t = 1 is
    // exactly the target system, with the fused kernels supplying
    // residual + Jacobian for the Newton certificate and the refiner.
    let h = InstanceHomotopy::new(problem, problem);
    let sys = TargetConditions::new(problem);
    let mut ws = TrackWorkspace::new();
    coeffs
        .iter_mut()
        .map(|x| {
            let mut cert = certify_endpoint(&h, x, 1.0, &mut ws);
            if policy.refine && !cert.is_failed() {
                let out = refine_endpoint::<DdComplex, _, _>(
                    &h,
                    &sys,
                    1.0,
                    x,
                    policy.refine_tol,
                    policy.refine_max_iters,
                    &mut ws,
                );
                cert.record_refinement(&out);
            }
            cert
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Shape;
    use crate::solver::solve;
    use pieri_num::seeded_rng;
    use pieri_tracker::Homotopy;

    fn dd_residual(sys: &TargetConditions, x: &[Complex64]) -> f64 {
        let xs: Vec<DdComplex> = x.iter().map(|&z| DdComplex::from_c64(z)).collect();
        let mut out = vec![DdComplex::ZERO; sys.planes.len()];
        SystemEval::<DdComplex>::eval(sys, &xs, &mut out);
        out.iter().map(|z| z.norm()).fold(0.0, f64::max)
    }

    #[test]
    fn target_conditions_match_instance_homotopy_at_t1() {
        for &(m, p, q) in &[(2usize, 2usize, 0usize), (2, 2, 1), (3, 2, 1)] {
            let mut rng = seeded_rng(600 + (m * 10 + p + q) as u64);
            let problem = PieriProblem::random(Shape::new(m, p, q), &mut rng);
            let h = InstanceHomotopy::new(&problem, &problem);
            let sys = TargetConditions::new(&problem);
            let k = SystemEval::<Complex64>::dim(&sys);
            let x: Vec<Complex64> = (0..k)
                .map(|_| pieri_num::random_complex(&mut rng))
                .collect();
            let mut via_h = vec![Complex64::ZERO; k];
            h.eval(&x, 1.0, &mut via_h);
            let mut via_sys = vec![Complex64::ZERO; k];
            SystemEval::<Complex64>::eval(&sys, &x, &mut via_sys);
            for i in 0..k {
                assert!(
                    via_h[i].dist(via_sys[i]) < 1e-10 * (1.0 + via_h[i].norm()),
                    "({m},{p},{q}) condition {i}: {:?} vs {:?}",
                    via_h[i],
                    via_sys[i]
                );
            }
        }
    }

    #[test]
    fn solved_roots_certify_and_refine_below_1e13() {
        let mut rng = seeded_rng(610);
        let problem = PieriProblem::random(Shape::new(2, 2, 1), &mut rng);
        let solution = solve(&problem);
        let mut coeffs = solution.coeffs.clone();
        let certs = certify_solution_set(&problem, &mut coeffs, &CertifyPolicy::full());
        assert_eq!(certs.len(), 8);
        let sys = TargetConditions::new(&problem);
        for (i, cert) in certs.iter().enumerate() {
            assert!(cert.is_certified(), "root {i}: {cert:?}");
            assert!(cert.refined);
            assert!(
                cert.residual() <= 1e-13,
                "root {i} residual {:e}",
                cert.residual()
            );
            // The refined coefficients really do satisfy the conditions
            // at double-double precision.
            assert!(dd_residual(&sys, &coeffs[i]) <= 1e-13, "root {i}");
        }
    }

    #[test]
    fn off_policy_is_a_no_op() {
        let mut rng = seeded_rng(611);
        let problem = PieriProblem::random(Shape::new(2, 2, 0), &mut rng);
        let solution = solve(&problem);
        let mut coeffs = solution.coeffs.clone();
        let certs = certify_solution_set(&problem, &mut coeffs, &CertifyPolicy::off());
        assert!(certs.is_empty());
        assert_eq!(coeffs, solution.coeffs, "coefficients untouched");
    }

    #[test]
    fn garbage_vectors_fail_certification() {
        let mut rng = seeded_rng(612);
        let problem = PieriProblem::random(Shape::new(2, 2, 0), &mut rng);
        let k = problem.shape().root().rank();
        let mut coeffs = vec![vec![Complex64::new(13.0, -7.0); k]];
        let certs = certify_solution_set(&problem, &mut coeffs, &CertifyPolicy::full());
        assert_eq!(certs.len(), 1);
        assert!(certs[0].is_failed(), "{:?}", certs[0]);
    }
}
