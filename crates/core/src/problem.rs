//! Problem data for a Pieri intersection problem.

use crate::pattern::Shape;
use pieri_linalg::CMat;
use pieri_num::{random_complex, random_gamma, unit_complex, Complex64};
use rand::Rng;

/// One instance of the Pieri problem: `n` general `m`-planes in ℂ^{m+p}
/// and `n` interpolation points.
///
/// The solutions are all degree-`q` maps `X(s)` of `p`-planes with
/// `det [X(s_i) | L_i] = 0` for every `i`. The control layer produces
/// instances whose planes come from a plant's Hermann–Martin curve and
/// whose points are the prescribed closed-loop poles; [`PieriProblem::random`]
/// produces the generic instances used by the paper's Table III/IV timings.
#[derive(Debug, Clone)]
pub struct PieriProblem {
    shape: Shape,
    planes: Vec<CMat>,
    points: Vec<Complex64>,
    gamma: Complex64,
}

impl PieriProblem {
    /// Builds a problem from explicit data.
    ///
    /// # Panics
    /// Panics unless exactly `n = mp + q(m+p)` planes of shape
    /// `(m+p) × m` and `n` points are supplied.
    pub fn new(shape: Shape, planes: Vec<CMat>, points: Vec<Complex64>, gamma: Complex64) -> Self {
        let n = shape.conditions();
        assert_eq!(planes.len(), n, "need n = mp + q(m+p) planes");
        assert_eq!(points.len(), n, "need n interpolation points");
        for (i, l) in planes.iter().enumerate() {
            assert_eq!(
                (l.rows(), l.cols()),
                (shape.big_n(), shape.m()),
                "plane {i} must be (m+p) × m"
            );
        }
        assert!(gamma.norm() > 0.0, "gamma must be nonzero");
        PieriProblem {
            shape,
            planes,
            points,
            gamma,
        }
    }

    /// Generates a generic random instance: planes with independent
    /// complex entries and interpolation points on the unit circle
    /// (well-separated from each other with probability one).
    pub fn random<R: Rng + ?Sized>(shape: Shape, rng: &mut R) -> Self {
        let n = shape.conditions();
        let planes = (0..n)
            .map(|_| CMat::random(shape.big_n(), shape.m(), rng, random_complex))
            .collect();
        let points = (0..n).map(|_| unit_complex(rng)).collect();
        let gamma = random_gamma(rng);
        PieriProblem::new(shape, planes, points, gamma)
    }

    /// The problem shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The `i`-th plane (0-indexed).
    pub fn plane(&self, i: usize) -> &CMat {
        &self.planes[i]
    }

    /// The `i`-th interpolation point (0-indexed).
    pub fn point(&self, i: usize) -> Complex64 {
        self.points[i]
    }

    /// All planes.
    pub fn planes(&self) -> &[CMat] {
        &self.planes
    }

    /// All interpolation points.
    pub fn points(&self) -> &[Complex64] {
        &self.points
    }

    /// The gamma constant used in the moving plane `M(t) = (1−t)γM_F + tL`.
    pub fn gamma(&self) -> Complex64 {
        self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_num::seeded_rng;

    #[test]
    fn random_instance_has_right_shapes() {
        let mut rng = seeded_rng(300);
        let shape = Shape::new(2, 2, 1);
        let prob = PieriProblem::random(shape.clone(), &mut rng);
        assert_eq!(prob.planes().len(), 8);
        assert_eq!(prob.points().len(), 8);
        assert_eq!(prob.plane(0).rows(), 4);
        assert_eq!(prob.plane(0).cols(), 2);
        assert!((prob.point(3).norm() - 1.0).abs() < 1e-12);
        assert!((prob.gamma().norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need n")]
    fn wrong_plane_count_panics() {
        let shape = Shape::new(2, 2, 0);
        let _ = PieriProblem::new(shape, vec![], vec![], Complex64::ONE);
    }

    #[test]
    fn points_are_distinct_generically() {
        let mut rng = seeded_rng(301);
        let prob = PieriProblem::random(Shape::new(3, 2, 1), &mut rng);
        for i in 0..prob.points().len() {
            for j in 0..i {
                assert!(prob.point(i).dist(prob.point(j)) > 1e-6);
            }
        }
    }
}
