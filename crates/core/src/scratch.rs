//! Shared per-worker scratch of the fused determinantal kernels.

use pieri_linalg::{CMat, DetCofactor};
use pieri_num::Complex64;

/// Reusable buffers for evaluating one determinantal condition at a
/// time: the `n × n` condition matrix, its cofactor matrix, the fused
/// det+cofactor engine, and the homogenisation-weight buffers of the
/// condition currently being built. Both the Pieri and the instance
/// homotopy install one of these into the tracker's
/// [`pieri_tracker::HomotopyScratch`] slot on first fused call.
pub(crate) struct CondScratch {
    pub cond: CMat,
    pub cof: CMat,
    pub engine: DetCofactor,
    pub slot_w: Vec<Complex64>,
    pub top_w: Vec<Complex64>,
}

impl CondScratch {
    pub fn new() -> Self {
        CondScratch {
            cond: CMat::zeros(0, 0),
            cof: CMat::zeros(0, 0),
            engine: DetCofactor::new(),
            slot_w: Vec::new(),
            top_w: Vec::new(),
        }
    }

    /// Grows the buffers for condition-matrix size `n`, rank `k` and `p`
    /// columns (no-op when already sized — workspaces migrate between
    /// patterns of different ranks and between shapes).
    pub fn ensure(&mut self, n: usize, k: usize, p: usize) {
        if (self.cond.rows(), self.cond.cols()) != (n, n) {
            self.cond = CMat::zeros(n, n);
            self.cof = CMat::zeros(n, n);
        }
        if self.slot_w.len() != k {
            self.slot_w.clear();
            self.slot_w.resize(k, Complex64::ZERO);
        }
        if self.top_w.len() != p {
            self.top_w.clear();
            self.top_w.resize(p, Complex64::ZERO);
        }
    }
}
