//! Coefficient layout and homogenised evaluation of localization-pattern
//! maps.
//!
//! A map fitting a pattern with bottom pivots `b` has, in column `j`
//! (0-indexed), free coefficients in concatenated rows `j+2 ..= b_j` plus
//! the normalised top pivot `≡ 1` at row `j+1`. The *homogenised*
//! evaluation at `(s, u)` weights the coefficient at concatenated row `r`
//! by `s^d · u^{d_j − d}` where `d = block(r)` and `d_j = block(b_j)` is
//! the column degree — so `(s, 1)` is the ordinary evaluation of the
//! polynomial map and `(1, 0)` extracts the leading coefficients, the
//! value of the map "at `s = ∞`" where it meets the special plane `M_F`.

use crate::pattern::Pattern;
use pieri_linalg::CMat;
use pieri_num::Complex64;

/// Index layout of a pattern's unknown coefficients.
///
/// Unknowns are ordered column-major: column 0's rows first (top to
/// bottom), then column 1's, etc. The layout also caches per-slot
/// evaluation data (physical row, column, degree, column degree).
#[derive(Debug, Clone)]
pub struct CoeffLayout {
    pattern: Pattern,
    /// Per-slot: (concat row 1-indexed, column 0-indexed).
    slots: Vec<(usize, usize)>,
    /// Per-slot physical row (0-indexed) in the (m+p)-row map.
    phys: Vec<usize>,
    /// Per-slot degree `d` (block index of the slot row).
    deg: Vec<usize>,
    /// Per-column degree `d_j` (block index of the bottom pivot).
    col_deg: Vec<usize>,
}

impl CoeffLayout {
    /// Builds the layout for a pattern.
    pub fn new(pattern: &Pattern) -> Self {
        let shape = pattern.shape();
        let big_n = shape.big_n();
        let p = shape.p();
        let mut slots = Vec::with_capacity(pattern.rank());
        let mut phys = Vec::new();
        let mut deg = Vec::new();
        for j in 0..p {
            for r in (j + 2)..=pattern.pivots()[j] {
                slots.push((r, j));
                phys.push((r - 1) % big_n);
                deg.push((r - 1) / big_n);
            }
        }
        let col_deg = (0..p).map(|j| pattern.col_degree(j)).collect();
        CoeffLayout {
            pattern: pattern.clone(),
            slots,
            phys,
            deg,
            col_deg,
        }
    }

    /// The pattern this layout belongs to.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Number of unknowns (= pattern rank = conditions satisfied).
    pub fn dim(&self) -> usize {
        self.slots.len()
    }

    /// Per-slot `(concat_row, column)` pairs.
    pub fn slots(&self) -> &[(usize, usize)] {
        &self.slots
    }

    /// Weight `s^d · u^{d_j − d}` of slot `k` at the homogenised point.
    #[inline]
    pub fn weight(&self, k: usize, s: Complex64, u: Complex64) -> Complex64 {
        let d = self.deg[k];
        let dj = self.col_deg[self.slots[k].1];
        s.powi(d as i32) * u.powi((dj - d) as i32)
    }

    /// Derivative of the slot weight along the moving point
    /// `(ŝ(t), û(t))` with `dŝ/dt = ds`, `dû/dt = du`.
    #[inline]
    pub fn weight_dt(
        &self,
        k: usize,
        s: Complex64,
        u: Complex64,
        ds: Complex64,
        du: Complex64,
    ) -> Complex64 {
        let d = self.deg[k] as i32;
        let e = (self.col_deg[self.slots[k].1] - self.deg[k]) as i32;
        let mut acc = Complex64::ZERO;
        if d > 0 {
            acc += s.powi(d - 1).scale(d as f64) * u.powi(e) * ds;
        }
        if e > 0 {
            acc += u.powi(e - 1).scale(e as f64) * s.powi(d) * du;
        }
        acc
    }

    /// Physical (0-indexed) row of slot `k`.
    #[inline]
    pub fn phys_row(&self, k: usize) -> usize {
        self.phys[k]
    }

    /// Degree `d` of slot `k` (the block index of its concatenated row):
    /// the slot's weight at a dehomogenised point `(s, 1)` is `s^d`.
    /// Exposed for evaluators that rebuild condition matrices at other
    /// scalar precisions (the double-double refinement layer).
    #[inline]
    pub fn slot_degree(&self, k: usize) -> usize {
        self.deg[k]
    }

    /// Column (0-indexed) of slot `k`.
    #[inline]
    pub fn col(&self, k: usize) -> usize {
        self.slots[k].1
    }

    /// Weight of the (normalised) top pivot of column `j`: the top pivot
    /// sits in block 0, so its weight is `u^{d_j}`.
    #[inline]
    pub fn top_pivot_weight(&self, j: usize, _s: Complex64, u: Complex64) -> Complex64 {
        u.powi(self.col_deg[j] as i32)
    }

    /// Derivative of the top-pivot weight along the moving point.
    #[inline]
    pub fn top_pivot_weight_dt(
        &self,
        j: usize,
        _s: Complex64,
        u: Complex64,
        du: Complex64,
    ) -> Complex64 {
        let e = self.col_deg[j] as i32;
        if e > 0 {
            u.powi(e - 1).scale(e as f64) * du
        } else {
            Complex64::ZERO
        }
    }

    /// Evaluates the map at the homogenised point `(s, u)` as an
    /// `(m+p) × p` matrix.
    pub fn eval_map(&self, x: &[Complex64], s: Complex64, u: Complex64) -> CMat {
        let shape = self.pattern.shape();
        let mut out = CMat::zeros(shape.big_n(), shape.p());
        self.eval_map_into(x, s, u, &mut out);
        out
    }

    /// Evaluates the map at `(s, u)` into the **leading `p` columns** of
    /// `out` (which may be wider — e.g. a full `[X | L]` condition matrix
    /// whose plane block is already in place). Those columns are zeroed
    /// first; nothing else is touched. Produces bitwise the same entries
    /// as [`CoeffLayout::eval_map`], without allocating.
    ///
    /// # Panics
    /// Panics when `out` has fewer than `p` columns or the wrong row
    /// count.
    pub fn eval_map_into(&self, x: &[Complex64], s: Complex64, u: Complex64, out: &mut CMat) {
        debug_assert_eq!(x.len(), self.dim(), "coefficient vector length");
        let shape = self.pattern.shape();
        let (big_n, p) = (shape.big_n(), shape.p());
        assert!(
            out.rows() == big_n && out.cols() >= p,
            "eval_map_into: output shape mismatch"
        );
        for i in 0..big_n {
            for j in 0..p {
                out[(i, j)] = Complex64::ZERO;
            }
        }
        for j in 0..p {
            // Top pivot (concat row j+1, physical row j, block 0).
            out[(j, j)] += self.top_pivot_weight(j, s, u);
        }
        for (k, &xk) in x.iter().enumerate() {
            if xk != Complex64::ZERO {
                out[(self.phys[k], self.slots[k].1)] += xk * self.weight(k, s, u);
            }
        }
    }

    /// Fills `slot_w[k] = weight(k, s, u)` and `top_w[j]` with the
    /// top-pivot weights — the hoisted form of the per-slot `powi` calls,
    /// producing bitwise the values [`CoeffLayout::eval_map`] would
    /// compute inline. For *fixed* interpolation points the caller
    /// computes these once and reuses them across every evaluation.
    ///
    /// # Panics
    /// Panics when the buffer lengths are not `dim()` and `p`.
    pub fn weights_into(
        &self,
        s: Complex64,
        u: Complex64,
        slot_w: &mut [Complex64],
        top_w: &mut [Complex64],
    ) {
        assert_eq!(slot_w.len(), self.dim(), "weights_into: slot buffer");
        assert_eq!(
            top_w.len(),
            self.pattern.shape().p(),
            "weights_into: top-pivot buffer"
        );
        for (k, w) in slot_w.iter_mut().enumerate() {
            *w = self.weight(k, s, u);
        }
        for (j, w) in top_w.iter_mut().enumerate() {
            *w = self.top_pivot_weight(j, s, u);
        }
    }

    /// [`CoeffLayout::eval_map_into`] against precomputed weights (from
    /// [`CoeffLayout::weights_into`]): no `powi` in the loop, same bits.
    ///
    /// # Panics
    /// Panics on any buffer/shape mismatch.
    pub fn eval_map_weighted_into(
        &self,
        x: &[Complex64],
        slot_w: &[Complex64],
        top_w: &[Complex64],
        out: &mut CMat,
    ) {
        debug_assert_eq!(x.len(), self.dim(), "coefficient vector length");
        assert_eq!(slot_w.len(), self.dim(), "weighted eval: slot buffer");
        let shape = self.pattern.shape();
        let (big_n, p) = (shape.big_n(), shape.p());
        assert_eq!(top_w.len(), p, "weighted eval: top-pivot buffer");
        assert!(
            out.rows() == big_n && out.cols() >= p,
            "weighted eval: output shape mismatch"
        );
        for i in 0..big_n {
            for j in 0..p {
                out[(i, j)] = Complex64::ZERO;
            }
        }
        for j in 0..p {
            out[(j, j)] += top_w[j];
        }
        for (k, &xk) in x.iter().enumerate() {
            if xk != Complex64::ZERO {
                out[(self.phys[k], self.slots[k].1)] += xk * slot_w[k];
            }
        }
    }

    /// Embeds a solution of `child` (a bottom child of this layout's
    /// pattern) into this pattern's coefficient space: the entry at the
    /// decremented pivot is set to zero, every other coefficient carries
    /// over.
    ///
    /// # Panics
    /// Panics when `child` is not a bottom child of the pattern.
    pub fn embed_child(&self, child: &CoeffLayout, y: &[Complex64]) -> Vec<Complex64> {
        debug_assert_eq!(y.len(), child.dim());
        let jstar = self
            .pattern
            .child_column(child.pattern())
            .expect("embed_child: not a bottom child");
        let pivot_row = self.pattern.pivots()[jstar];
        let mut x = Vec::with_capacity(self.dim());
        let mut yi = 0usize;
        for &(r, j) in &self.slots {
            if j == jstar && r == pivot_row {
                x.push(Complex64::ZERO);
            } else {
                x.push(y[yi]);
                yi += 1;
            }
        }
        debug_assert_eq!(yi, y.len(), "all child coefficients consumed");
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Shape;
    use pieri_num::{random_complex, seeded_rng};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn layout_dim_equals_rank() {
        for &(m, p, q) in &[(2, 2, 0), (2, 2, 1), (3, 2, 1), (3, 3, 0)] {
            let shape = Shape::new(m, p, q);
            let root = shape.root();
            let layout = CoeffLayout::new(&root);
            assert_eq!(layout.dim(), root.rank(), "({m},{p},{q})");
            assert_eq!(CoeffLayout::new(&shape.trivial()).dim(), 0);
        }
    }

    #[test]
    fn trivial_pattern_evaluates_to_standard_basis() {
        let shape = Shape::new(2, 2, 0);
        let layout = CoeffLayout::new(&shape.trivial());
        let m = layout.eval_map(&[], c(0.3, 0.7), Complex64::ONE);
        // Columns are e_1, e_2.
        for i in 0..4 {
            for j in 0..2 {
                let expect = if i == j {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                assert_eq!(m[(i, j)], expect);
            }
        }
    }

    #[test]
    fn q0_evaluation_ignores_s() {
        let shape = Shape::new(2, 2, 0);
        let root = shape.root();
        let layout = CoeffLayout::new(&root);
        let mut rng = seeded_rng(310);
        let x: Vec<Complex64> = (0..layout.dim())
            .map(|_| random_complex(&mut rng))
            .collect();
        let a = layout.eval_map(&x, c(0.1, 0.2), Complex64::ONE);
        let b = layout.eval_map(&x, c(-5.0, 3.0), Complex64::ONE);
        assert!((&a - &b).fro_norm() < 1e-14);
    }

    #[test]
    fn dehomogenised_evaluation_is_polynomial_in_s() {
        // For (2,2,1) root [4 7]: column 1 (0-indexed) has degree 1;
        // evaluating at (s, 1) must be affine in s for that column.
        let shape = Shape::new(2, 2, 1);
        let layout = CoeffLayout::new(&shape.root());
        let mut rng = seeded_rng(311);
        let x: Vec<Complex64> = (0..8).map(|_| random_complex(&mut rng)).collect();
        let s0 = c(0.0, 0.0);
        let s1 = c(1.0, 0.0);
        let s2 = c(2.0, 0.0);
        let m0 = layout.eval_map(&x, s0, Complex64::ONE);
        let m1 = layout.eval_map(&x, s1, Complex64::ONE);
        let m2 = layout.eval_map(&x, s2, Complex64::ONE);
        // Affinity: m2 − m1 == m1 − m0 in the degree-1 column.
        for i in 0..4 {
            let d1 = m1[(i, 1)] - m0[(i, 1)];
            let d2 = m2[(i, 1)] - m1[(i, 1)];
            assert!(d1.dist(d2) < 1e-12, "row {i}");
            // Column 0 has degree 0: constant in s.
            assert!(m0[(i, 0)].dist(m2[(i, 0)]) < 1e-14);
        }
    }

    #[test]
    fn leading_form_at_u_zero() {
        // At (1, 0) only the leading-block coefficients survive; for the
        // (2,2,1) root the pivot residues are 4 and 3, and each column's
        // entries below its residue row vanish.
        let shape = Shape::new(2, 2, 1);
        let root = shape.root();
        let layout = CoeffLayout::new(&root);
        let mut rng = seeded_rng(312);
        let x: Vec<Complex64> = (0..8).map(|_| random_complex(&mut rng)).collect();
        let lead = layout.eval_map(&x, Complex64::ONE, Complex64::ZERO);
        // Column 0: degree 0 → block 0 rows survive: rows 1..=4 (support
        // rows 1..4 = everything).
        // Column 1: degree 1 → only block-1 rows (concat 5..7 → phys 1..3)
        // survive; phys row 4 (0-indexed 3) must be zero.
        assert_eq!(lead[(3, 1)], Complex64::ZERO);
        // The pivot entry of column 1 is x at concat row 7 → phys row 3
        // (0-indexed 2).
        let pivot_slot = layout
            .slots()
            .iter()
            .position(|&(r, j)| r == 7 && j == 1)
            .unwrap();
        assert!(lead[(2, 1)].dist(x[pivot_slot]) < 1e-14);
    }

    #[test]
    fn embed_child_zeroes_exactly_the_pivot() {
        let shape = Shape::new(2, 2, 1);
        let parent = shape.root(); // [4 7]
        let child = crate::pattern::Pattern::new(&shape, vec![4, 6]).unwrap();
        let lp = CoeffLayout::new(&parent);
        let lc = CoeffLayout::new(&child);
        let mut rng = seeded_rng(313);
        let y: Vec<Complex64> = (0..lc.dim()).map(|_| random_complex(&mut rng)).collect();
        let x = lp.embed_child(&lc, &y);
        assert_eq!(x.len(), lp.dim());
        // The embedded solution evaluates to the same plane at any (s, 1).
        let s = random_complex(&mut rng);
        let mp = lp.eval_map(&x, s, Complex64::ONE);
        let mc = lc.eval_map(&y, s, Complex64::ONE);
        assert!((&mp - &mc).fro_norm() < 1e-13);
        // The zeroed slot is the parent pivot (row 7, col 1).
        let pivot_slot = lp
            .slots()
            .iter()
            .position(|&(r, j)| r == 7 && j == 1)
            .unwrap();
        assert_eq!(x[pivot_slot], Complex64::ZERO);
    }

    #[test]
    fn weight_dt_matches_finite_difference() {
        let shape = Shape::new(2, 2, 2);
        let layout = CoeffLayout::new(&shape.root());
        let s = c(0.4, 0.3);
        let u = c(0.8, -0.1);
        let ds = c(0.7, 0.2);
        let du = c(1.0, 0.0);
        let h = 1e-7;
        for k in 0..layout.dim() {
            let w_plus = layout.weight(k, s + ds.scale(h), u + du.scale(h));
            let w_minus = layout.weight(k, s - ds.scale(h), u - du.scale(h));
            let fd = (w_plus - w_minus) / (2.0 * h);
            let an = layout.weight_dt(k, s, u, ds, du);
            assert!(fd.dist(an) < 1e-6 * (1.0 + an.norm()), "slot {k}");
        }
    }
}
