//! The sequential Pieri solver: level-by-level over the poset.
//!
//! This is the organisation of PHCpack's sequential Pieri code (Fig. 4):
//! solve every pattern of rank `k` from the solutions of its bottom
//! children at rank `k−1`. Each (child-solution, parent-pattern) pair is
//! one path-tracking job; the number of jobs per level is exactly the
//! Pieri-tree width of the level (Table III), and the solutions at the
//! root pattern are the `d(m,p,q)` feedback laws.
//!
//! The tree-parallel master/slave scheduler of Fig. 6 lives in
//! `pieri-parallel`; it runs the same jobs in dependency order and must
//! produce the same solution set (a cross-check in the integration tests).

use crate::certified::certify_solution_set;
use crate::eval::CoeffLayout;
use crate::homotopy::PieriHomotopy;
use crate::maps::PMap;
use crate::pattern::Pattern;
use crate::poset::Poset;
use crate::problem::PieriProblem;
use pieri_certify::{Certificate, CertifyPolicy};
use pieri_num::Complex64;
use pieri_tracker::{track_path_with, PathStatus, TrackSettings, TrackWorkspace};
use std::collections::HashMap;
use std::time::Duration;

/// Record of one path-tracking job (one Pieri-tree edge).
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Level (rank of the solved pattern).
    pub level: usize,
    /// Shorthand of the solved pattern.
    pub pattern: String,
    /// Terminal status of the tracked path.
    pub status: PathStatus,
    /// Accepted steps.
    pub steps: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// The result of a full Pieri solve.
#[derive(Debug)]
pub struct PieriSolution {
    /// Solution maps at the root pattern (the feedback-law data).
    pub maps: Vec<PMap>,
    /// Raw coefficient vectors at the root pattern.
    pub coeffs: Vec<Vec<Complex64>>,
    /// Per-job records (Table III regenerates from these).
    pub records: Vec<JobRecord>,
    /// Jobs whose path did not converge (empty for generic inputs —
    /// Pieri homotopies are optimal, no path diverges).
    pub failures: usize,
    /// One certificate per root solution, in `coeffs` order — filled by
    /// [`solve_prepared_certified`] (and the certified parallel
    /// drivers), empty otherwise.
    pub certificates: Vec<Certificate>,
}

impl PieriSolution {
    /// Largest intersection-condition residual over all solution maps.
    pub fn max_residual(&self, problem: &PieriProblem) -> f64 {
        self.maps
            .iter()
            .map(|m| m.max_residual(problem))
            .fold(0.0, f64::max)
    }

    /// Smallest pairwise distance between solutions (0 when fewer than 2).
    pub fn min_pairwise_distance(&self) -> f64 {
        let mut min = f64::INFINITY;
        for i in 0..self.maps.len() {
            for j in 0..i {
                min = min.min(self.maps[i].dist(&self.maps[j]));
            }
        }
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// Total tracking time across all jobs (the sequential cost).
    pub fn total_time(&self) -> Duration {
        self.records.iter().map(|r| r.elapsed).sum()
    }

    /// Job times in seconds grouped by level `1..=n` — the dependency-
    /// structured workload handed to the cluster simulator.
    pub fn times_by_level(&self, n_levels: usize) -> Vec<Vec<f64>> {
        let mut by_level = vec![Vec::new(); n_levels + 1];
        for r in &self.records {
            by_level[r.level].push(r.elapsed.as_secs_f64());
        }
        by_level
    }
}

/// Solves a Pieri problem with default tracking settings.
pub fn solve(problem: &PieriProblem) -> PieriSolution {
    solve_with_settings(problem, &TrackSettings::default())
}

/// Solves a Pieri problem level by level with the given tracker settings.
///
/// Builds the poset for the problem's shape and delegates to
/// [`solve_prepared`]. Callers that solve many instances of the same
/// shape (the batch service's shape cache) build the poset once and call
/// [`solve_prepared`] directly — the poset depends only on `(m, p, q)`,
/// not on the problem data.
pub fn solve_with_settings(problem: &PieriProblem, settings: &TrackSettings) -> PieriSolution {
    let poset = Poset::build(problem.shape());
    solve_prepared(problem, &poset, settings)
}

/// Solves a Pieri problem against a pre-built poset.
///
/// Solutions at level `k−1` are dropped as soon as level `k` completes —
/// the poset organisation needs two live levels, whereas the Pieri-tree
/// organisation of the parallel scheduler needs only one chain per worker
/// (the memory argument of Section III.C of the paper).
///
/// # Panics
/// Panics when `poset` was built for a different shape.
pub fn solve_prepared(
    problem: &PieriProblem,
    poset: &Poset,
    settings: &TrackSettings,
) -> PieriSolution {
    let shape = problem.shape();
    assert_eq!(
        poset.shape(),
        shape,
        "poset was built for a different shape"
    );
    let n = shape.conditions();

    // Solutions per pattern at the previous level; trivial level seeds the
    // induction with the empty coefficient vector.
    let trivial = shape.trivial();
    let mut prev: HashMap<Vec<usize>, Vec<Vec<Complex64>>> = HashMap::new();
    prev.insert(trivial.pivots().to_vec(), vec![Vec::new()]);

    let mut records = Vec::new();
    let mut failures = 0usize;
    // One tracking workspace threaded through every job of the solve —
    // buffers grow once per level (ranks increase) and are reused.
    let mut ws = TrackWorkspace::new();

    for k in 1..=n {
        let mut next: HashMap<Vec<usize>, Vec<Vec<Complex64>>> = HashMap::new();
        for pattern in poset.level(k) {
            let homotopy = PieriHomotopy::new(problem, pattern);
            let mut sols: Vec<Vec<Complex64>> = Vec::new();
            for child in pattern.children() {
                let Some(child_sols) = prev.get(child.pivots()) else {
                    continue;
                };
                let child_layout = CoeffLayout::new(&child);
                for y in child_sols {
                    let x0 = homotopy.layout().embed_child(&child_layout, y);
                    let result = track_path_with(&homotopy, &x0, settings, &mut ws);
                    records.push(JobRecord {
                        level: k,
                        pattern: pattern.shorthand(),
                        status: result.status,
                        steps: result.steps,
                        elapsed: result.elapsed,
                    });
                    if result.status.is_converged() {
                        sols.push(result.x);
                    } else {
                        failures += 1;
                    }
                }
            }
            if !sols.is_empty() {
                next.insert(pattern.pivots().to_vec(), sols);
            }
        }
        prev = next;
    }

    let root = shape.root();
    let coeffs = prev.remove(root.pivots()).unwrap_or_default();
    let maps = coeffs.iter().map(|x| PMap::from_coeffs(&root, x)).collect();
    PieriSolution {
        maps,
        coeffs,
        records,
        failures,
        certificates: Vec::new(),
    }
}

/// [`solve_prepared`] with a [`CertifyPolicy`] knob: tracking jobs
/// re-track failed paths per `policy.retrack`, and the root solutions —
/// the ones a solve ships — are certified against the problem's
/// intersection conditions and (per policy) double-double-refined in
/// place, filling [`PieriSolution::certificates`].
///
/// # Panics
/// Panics when `poset` was built for a different shape.
pub fn solve_prepared_certified(
    problem: &PieriProblem,
    poset: &Poset,
    settings: &TrackSettings,
    policy: &CertifyPolicy,
) -> PieriSolution {
    let track_settings = policy.effective_settings(settings);
    let mut solution = solve_prepared(problem, poset, &track_settings);
    certify_roots(problem, &mut solution, policy);
    solution
}

/// Certifies (and per policy refines) the root solutions of an
/// already-computed [`PieriSolution`] in place — the seam the parallel
/// drivers use, since they own their job scheduling but ship the same
/// root coefficient vectors.
pub fn certify_roots(problem: &PieriProblem, solution: &mut PieriSolution, policy: &CertifyPolicy) {
    solution.certificates = certify_solution_set(problem, &mut solution.coeffs, policy);
    if policy.refine {
        let root = problem.shape().root();
        solution.maps = solution
            .coeffs
            .iter()
            .map(|x| PMap::from_coeffs(&root, x))
            .collect();
    }
}

/// Solves one job explicitly: used by the parallel scheduler, which owns
/// the job ordering. Returns the converged coefficients, or `None`.
pub fn run_job(
    problem: &PieriProblem,
    pattern: &Pattern,
    child: &Pattern,
    child_solution: &[Complex64],
    settings: &TrackSettings,
) -> (Option<Vec<Complex64>>, JobRecord) {
    let mut ws = TrackWorkspace::new();
    run_job_with(problem, pattern, child, child_solution, settings, &mut ws)
}

/// [`run_job`] against a caller-owned [`TrackWorkspace`] — the form the
/// parallel schedulers use, each worker holding one workspace that is
/// reused across every job it executes.
pub fn run_job_with(
    problem: &PieriProblem,
    pattern: &Pattern,
    child: &Pattern,
    child_solution: &[Complex64],
    settings: &TrackSettings,
    ws: &mut TrackWorkspace,
) -> (Option<Vec<Complex64>>, JobRecord) {
    let homotopy = PieriHomotopy::new(problem, pattern);
    let child_layout = CoeffLayout::new(child);
    let x0 = homotopy.layout().embed_child(&child_layout, child_solution);
    let result = track_path_with(&homotopy, &x0, settings, ws);
    let record = JobRecord {
        level: pattern.rank(),
        pattern: pattern.shorthand(),
        status: result.status,
        steps: result.steps,
        elapsed: result.elapsed,
    };
    let sol = result.status.is_converged().then_some(result.x);
    (sol, record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Shape;
    use pieri_num::seeded_rng;

    fn check_full_solve(m: usize, p: usize, q: usize, seed: u64) -> PieriSolution {
        let mut rng = seeded_rng(seed);
        let shape = Shape::new(m, p, q);
        let problem = PieriProblem::random(shape.clone(), &mut rng);
        let poset = Poset::build(&shape);
        let sol = solve(&problem);
        assert_eq!(sol.failures, 0, "Pieri homotopies have no divergent paths");
        assert_eq!(
            sol.maps.len() as u128,
            poset.root_count(),
            "({m},{p},{q}): expected d(m,p,q) solutions"
        );
        assert_eq!(
            sol.records.len() as u128,
            poset.level_profile().total_jobs()
        );
        let res = sol.max_residual(&problem);
        assert!(res < 1e-7, "({m},{p},{q}): residual {res:.2e}");
        if sol.maps.len() > 1 {
            assert!(
                sol.min_pairwise_distance() > 1e-5,
                "({m},{p},{q}): solutions must be distinct"
            );
        }
        sol
    }

    #[test]
    fn solves_2_2_0_output_feedback() {
        // The classic: 2 static feedback laws for m = p = 2 (Table IV).
        check_full_solve(2, 2, 0, 400);
    }

    #[test]
    fn solves_3_2_0() {
        // 5 solutions.
        check_full_solve(3, 2, 0, 401);
    }

    #[test]
    fn solves_2_2_1_dynamic() {
        // 8 dynamic feedback laws, 37 jobs (Fig 4/5).
        let sol = check_full_solve(2, 2, 1, 402);
        assert_eq!(sol.records.len(), 37);
    }

    #[test]
    fn solves_2_1_2_single_input() {
        // p = 1: single column patterns, hypersurface case.
        check_full_solve(2, 1, 2, 403);
    }

    #[test]
    fn prepared_poset_reproduces_solve_exactly() {
        let shape = Shape::new(2, 2, 1);
        let poset = Poset::build(&shape);
        let make = || {
            let mut rng = seeded_rng(405);
            PieriProblem::random(shape.clone(), &mut rng)
        };
        let fresh = solve(&make());
        let shared = solve_prepared(&make(), &poset, &TrackSettings::default());
        assert_eq!(fresh.coeffs, shared.coeffs, "same path, same bits");
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn prepared_poset_shape_mismatch_panics() {
        let mut rng = seeded_rng(406);
        let problem = PieriProblem::random(Shape::new(2, 2, 0), &mut rng);
        let poset = Poset::build(&Shape::new(3, 2, 0));
        let _ = solve_prepared(&problem, &poset, &TrackSettings::default());
    }

    #[test]
    fn job_levels_match_tree_profile() {
        let mut rng = seeded_rng(404);
        let shape = Shape::new(2, 2, 1);
        let problem = PieriProblem::random(shape.clone(), &mut rng);
        let sol = solve(&problem);
        let profile = Poset::build(&shape).level_profile();
        for k in 1..=shape.conditions() {
            let jobs_at_k = sol.records.iter().filter(|r| r.level == k).count();
            assert_eq!(jobs_at_k as u128, profile.widths[k], "level {k}");
        }
    }
}
