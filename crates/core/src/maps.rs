//! Solution maps: the polynomial `p`-plane maps produced by the solver.

use crate::eval::CoeffLayout;
use crate::pattern::Pattern;
use crate::problem::PieriProblem;
use pieri_linalg::{det, CMat};
use pieri_num::Complex64;
use pieri_poly::MatrixPoly;

/// A degree-`q` polynomial map `X(s)` of `p`-planes in ℂ^{m+p}, stored as
/// its coefficient matrices (the dehomogenised output of a Pieri solve).
///
/// For the pole-placement application the top `p × p` block is the
/// denominator data and the bottom `m × p` block the numerator data of
/// the compensator (see `pieri-control`).
#[derive(Debug, Clone)]
pub struct PMap {
    /// Coefficient matrices, degree 0 first; each `(m+p) × p`.
    coeffs: Vec<CMat>,
}

impl PMap {
    /// Builds the map from a pattern and its coefficient vector.
    pub fn from_coeffs(pattern: &Pattern, x: &[Complex64]) -> Self {
        let shape = pattern.shape();
        let layout = CoeffLayout::new(pattern);
        debug_assert_eq!(x.len(), layout.dim());
        let big_n = shape.big_n();
        let mut coeffs = vec![CMat::zeros(big_n, shape.p()); shape.q() + 1];
        // Top pivots: concat row j+1, block 0.
        for j in 0..shape.p() {
            coeffs[0][(j, j)] = Complex64::ONE;
        }
        for (k, &(r, j)) in layout.slots().iter().enumerate() {
            let d = (r - 1) / big_n;
            let phys = (r - 1) % big_n;
            coeffs[d][(phys, j)] = x[k];
        }
        PMap { coeffs }
    }

    /// Builds a map directly from coefficient matrices (degree 0 first).
    ///
    /// # Panics
    /// Panics when `coeffs` is empty or shapes disagree.
    pub fn from_coeff_matrices(coeffs: Vec<CMat>) -> Self {
        let first = coeffs.first().expect("at least the degree-0 coefficient");
        let (rows, cols) = (first.rows(), first.cols());
        assert!(
            coeffs.iter().all(|c| c.rows() == rows && c.cols() == cols),
            "coefficient matrices must share a shape"
        );
        PMap { coeffs }
    }

    /// Applies a coordinate change of ℂ^{m+p}: returns `T·X(s)`.
    ///
    /// Used to solve structured (non-generic) problems in general
    /// position: rotate the input planes by `T`, solve, and rotate the
    /// solution maps back by `T⁻¹`.
    pub fn transform(&self, t: &CMat) -> PMap {
        PMap {
            coeffs: self.coeffs.iter().map(|c| t * c).collect(),
        }
    }

    /// Coefficient matrices (degree 0 first).
    pub fn coeffs(&self) -> &[CMat] {
        &self.coeffs
    }

    /// Evaluates `X(s)` (dehomogenised, `u = 1`).
    pub fn eval(&self, s: Complex64) -> CMat {
        let mut acc = self.coeffs.last().expect("q+1 ≥ 1 coefficients").clone();
        for d in (0..self.coeffs.len() - 1).rev() {
            acc = acc.scale(s);
            acc = &acc + &self.coeffs[d];
        }
        acc
    }

    /// The map as a polynomial matrix.
    pub fn to_matrix_poly(&self) -> MatrixPoly {
        MatrixPoly::new(self.coeffs.clone())
    }

    /// Residual of intersection condition `i`:
    /// `|det [X(s_i) | L_i]|`, normalised by the condition matrix scale.
    pub fn condition_residual(&self, problem: &PieriProblem, i: usize) -> f64 {
        let a = self.eval(problem.point(i)).hstack(problem.plane(i));
        let scale = a.fro_norm().max(1.0).powi(a.rows() as i32);
        det(&a).norm() / scale
    }

    /// Largest normalised residual over all `n` intersection conditions —
    /// the verification number reported by EXPERIMENTS.md.
    pub fn max_residual(&self, problem: &PieriProblem) -> f64 {
        (0..problem.shape().conditions())
            .map(|i| self.condition_residual(problem, i))
            .fold(0.0, f64::max)
    }

    /// Distance between two maps' coefficient vectors (∞-norm over all
    /// coefficient entries) — used to check solution distinctness.
    pub fn dist(&self, other: &PMap) -> f64 {
        self.coeffs
            .iter()
            .zip(other.coeffs.iter())
            .map(|(a, b)| (a - b).max_norm())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Shape;
    use pieri_num::{random_complex, seeded_rng};

    #[test]
    fn from_coeffs_roundtrips_through_layout_eval() {
        let mut rng = seeded_rng(330);
        for &(m, p, q) in &[(2, 2, 0), (2, 2, 1), (3, 2, 1)] {
            let shape = Shape::new(m, p, q);
            let root = shape.root();
            let layout = CoeffLayout::new(&root);
            let x: Vec<Complex64> = (0..layout.dim())
                .map(|_| random_complex(&mut rng))
                .collect();
            let pmap = PMap::from_coeffs(&root, &x);
            let s = random_complex(&mut rng);
            let a = pmap.eval(s);
            let b = layout.eval_map(&x, s, Complex64::ONE);
            assert!((&a - &b).fro_norm() < 1e-12, "({m},{p},{q})");
        }
    }

    #[test]
    fn matrix_poly_conversion_agrees() {
        let mut rng = seeded_rng(331);
        let shape = Shape::new(2, 2, 1);
        let root = shape.root();
        let layout = CoeffLayout::new(&root);
        let x: Vec<Complex64> = (0..layout.dim())
            .map(|_| random_complex(&mut rng))
            .collect();
        let pmap = PMap::from_coeffs(&root, &x);
        let mp = pmap.to_matrix_poly();
        let s = random_complex(&mut rng);
        assert!((&pmap.eval(s) - &mp.eval(s)).fro_norm() < 1e-12);
    }

    #[test]
    fn residual_is_large_for_random_nonsolutions() {
        let mut rng = seeded_rng(332);
        let shape = Shape::new(2, 2, 0);
        let prob = PieriProblem::random(shape.clone(), &mut rng);
        let root = shape.root();
        let x: Vec<Complex64> = (0..4).map(|_| random_complex(&mut rng)).collect();
        let pmap = PMap::from_coeffs(&root, &x);
        assert!(pmap.max_residual(&prob) > 1e-6);
    }

    #[test]
    fn dist_of_identical_maps_is_zero() {
        let mut rng = seeded_rng(333);
        let shape = Shape::new(2, 2, 1);
        let root = shape.root();
        let x: Vec<Complex64> = (0..8).map(|_| random_complex(&mut rng)).collect();
        let a = PMap::from_coeffs(&root, &x);
        let b = PMap::from_coeffs(&root, &x);
        assert_eq!(a.dist(&b), 0.0);
        let mut y = x.clone();
        y[3] += Complex64::ONE;
        let cmap = PMap::from_coeffs(&root, &y);
        assert!(a.dist(&cmap) > 0.5);
    }
}
