//! The Pieri homotopy — equation (3) of the paper.
//!
//! At a node with pattern `b` of rank `k`, the homotopy deforms the
//! special plane `M_F` of the pattern into the `k`-th input plane `L_k`
//! while the homogenised interpolation point moves from `(1, 0)` (i.e.
//! `s = ∞`, where the map meets `M_F`) to `(s_k, 1)`:
//!
//! ```text
//! det [ X(s_i, 1) | L_i ] = 0            i = 1 .. k−1   (fixed)
//! det [ X(ŝ(t), û(t)) | M(t) ] = 0                      (moving)
//!
//! M(t)        = (1−t)·γ·M_F + t·L_k
//! (ŝ, û)(t)   = ((1−t) + t·s_k ,  t)
//! ```
//!
//! `M_F` is spanned by the standard basis vectors complementary to the
//! bottom-pivot residues, so `det [X(1,0) | M_F] = ± ∏_j x_{b_j,j}`: a map
//! meets `M_F` at infinity exactly when one of its bottom pivot entries
//! vanishes — which is how the child solutions (decremented pivot = zero
//! entry) become the start solutions at `t = 0`.
//!
//! Residuals are determinants evaluated by LU; gradients contract the
//! cofactor matrix (Jacobi's formula) against the sparse `∂A/∂x` — one
//! unknown touches exactly one entry of one condition matrix.

use crate::eval::CoeffLayout;
use crate::pattern::Pattern;
use crate::problem::PieriProblem;
use crate::scratch::CondScratch;
use pieri_linalg::{det, det_gradient, CMat};
use pieri_num::Complex64;
use pieri_tracker::{Homotopy, HomotopyScratch};

/// The special plane `M_F` of a pattern: the `m` standard basis vectors of
/// ℂ^{m+p} avoiding the bottom-pivot residues (which are pairwise distinct
/// for valid patterns).
pub fn special_plane(pattern: &Pattern) -> CMat {
    let shape = pattern.shape();
    let big_n = shape.big_n();
    let residues: Vec<usize> = (0..shape.p())
        .map(|j| pattern.pivot_residue(j) - 1)
        .collect();
    let mut cols: Vec<usize> = (0..big_n).filter(|i| !residues.contains(i)).collect();
    cols.truncate(shape.m());
    debug_assert_eq!(cols.len(), shape.m(), "residues are distinct");
    CMat::from_fn(big_n, shape.m(), |i, j| {
        if i == cols[j] {
            Complex64::ONE
        } else {
            Complex64::ZERO
        }
    })
}

/// One Pieri homotopy instance: the square system whose tracking moves a
/// child solution (rank `k−1`) to a solution of rank `k`.
///
/// Everything that does not depend on `(x, t)` is hoisted into the
/// constructor: the fixed conditions' homogenisation weights (their
/// interpolation points never move, so the `powi` ladders are computed
/// once), and the moving plane's derivative `dM/dt = L_k − γ·M_F`.
pub struct PieriHomotopy {
    layout: CoeffLayout,
    /// Fixed conditions `(L_i, s_i)`, `i = 0..k−1` (0-indexed).
    fixed: Vec<(CMat, Complex64)>,
    /// The moving target plane `L_k`.
    target_plane: CMat,
    /// The moving interpolation point target `s_k`.
    target_point: Complex64,
    /// `γ·M_F` (gamma premultiplied).
    gamma_special: CMat,
    /// `dM/dt = L_k − γ·M_F` (loop-invariant of `dt`).
    dm: CMat,
    /// Per fixed condition: slot weights at `(s_i, 1)`.
    fixed_slot_w: Vec<Vec<Complex64>>,
    /// Per fixed condition: top-pivot weights at `(s_i, 1)`.
    fixed_top_w: Vec<Vec<Complex64>>,
}

impl PieriHomotopy {
    /// Builds the homotopy for `pattern` (of rank `k ≥ 1`) using the first
    /// `k` planes/points of `problem`.
    ///
    /// # Panics
    /// Panics for the trivial pattern (nothing to solve).
    pub fn new(problem: &PieriProblem, pattern: &Pattern) -> Self {
        let k = pattern.rank();
        assert!(k >= 1, "trivial pattern has no homotopy");
        let layout = CoeffLayout::new(pattern);
        let fixed: Vec<(CMat, Complex64)> = (0..k - 1)
            .map(|i| (problem.plane(i).clone(), problem.point(i)))
            .collect();
        let gamma_special = special_plane(pattern).scale(problem.gamma());
        let target_plane = problem.plane(k - 1).clone();
        let dm = &target_plane - &gamma_special;
        let p = pattern.shape().p();
        let mut fixed_slot_w = Vec::with_capacity(fixed.len());
        let mut fixed_top_w = Vec::with_capacity(fixed.len());
        for (_, s) in &fixed {
            let mut sw = vec![Complex64::ZERO; layout.dim()];
            let mut tw = vec![Complex64::ZERO; p];
            layout.weights_into(*s, Complex64::ONE, &mut sw, &mut tw);
            fixed_slot_w.push(sw);
            fixed_top_w.push(tw);
        }
        PieriHomotopy {
            layout,
            fixed,
            target_plane,
            target_point: problem.point(k - 1),
            gamma_special,
            dm,
            fixed_slot_w,
            fixed_top_w,
        }
    }

    /// The pattern being solved.
    pub fn pattern(&self) -> &Pattern {
        self.layout.pattern()
    }

    /// The coefficient layout (for embedding child solutions).
    pub fn layout(&self) -> &CoeffLayout {
        &self.layout
    }

    /// Moving point `ŝ(t) = (1−t) + t·s_k` and its derivative.
    #[inline]
    fn moving_point(&self, t: f64) -> (Complex64, Complex64) {
        let s = Complex64::real(1.0 - t) + self.target_point.scale(t);
        (s, Complex64::real(t))
    }

    /// Moving plane `M(t) = (1−t)·γ·M_F + t·L_k`.
    fn moving_plane(&self, t: f64) -> CMat {
        let a = self.gamma_special.scale(Complex64::real(1.0 - t));
        let b = self.target_plane.scale(Complex64::real(t));
        &a + &b
    }

    /// Condition matrix `[X(s,u) | L]`.
    fn condition_matrix(&self, x: &[Complex64], s: Complex64, u: Complex64, plane: &CMat) -> CMat {
        self.layout.eval_map(x, s, u).hstack(plane)
    }

    /// Writes fixed condition `i`'s matrix `[X(s_i, 1) | L_i]` into
    /// `cond` using the precomputed weights — no allocation, no `powi`.
    fn build_fixed_cond(&self, i: usize, x: &[Complex64], cond: &mut CMat) {
        let shape = self.layout.pattern().shape();
        let (n, p, m) = (shape.big_n(), shape.p(), shape.m());
        let plane = &self.fixed[i].0;
        for r in 0..n {
            for c in 0..m {
                cond[(r, p + c)] = plane[(r, c)];
            }
        }
        self.layout
            .eval_map_weighted_into(x, &self.fixed_slot_w[i], &self.fixed_top_w[i], cond);
    }

    /// Writes the moving condition matrix `[X(ŝ, û) | M(t)]` into `cond`:
    /// the moving plane `M(t) = (1−t)·γ·M_F + t·L_k` is scale-added
    /// directly into the plane block (no intermediate matrices) and the
    /// moving weights land in the scratch buffers for the caller's
    /// Jacobian row.
    #[allow(clippy::too_many_arguments)] // scratch buffers are split borrows
    fn build_moving_cond(
        &self,
        x: &[Complex64],
        t: f64,
        s: Complex64,
        u: Complex64,
        slot_w: &mut [Complex64],
        top_w: &mut [Complex64],
        cond: &mut CMat,
    ) {
        let shape = self.layout.pattern().shape();
        let (n, p, m) = (shape.big_n(), shape.p(), shape.m());
        let a = Complex64::real(1.0 - t);
        let b = Complex64::real(t);
        for r in 0..n {
            for c in 0..m {
                cond[(r, p + c)] = self.gamma_special[(r, c)] * a + self.target_plane[(r, c)] * b;
            }
        }
        self.layout.weights_into(s, u, slot_w, top_w);
        self.layout.eval_map_weighted_into(x, slot_w, top_w, cond);
    }
}

impl Homotopy for PieriHomotopy {
    fn dim(&self) -> usize {
        self.layout.dim()
    }

    fn eval(&self, x: &[Complex64], t: f64, out: &mut [Complex64]) {
        debug_assert_eq!(out.len(), self.dim());
        for (i, (plane, s)) in self.fixed.iter().enumerate() {
            out[i] = det(&self.condition_matrix(x, *s, Complex64::ONE, plane));
        }
        let (s, u) = self.moving_point(t);
        let m = self.moving_plane(t);
        out[self.dim() - 1] = det(&self.condition_matrix(x, s, u, &m));
    }

    fn jacobian_x(&self, x: &[Complex64], t: f64, out: &mut CMat) {
        let k = self.dim();
        debug_assert_eq!((out.rows(), out.cols()), (k, k));
        // Row for each fixed condition.
        for (i, (plane, si)) in self.fixed.iter().enumerate() {
            let a = self.condition_matrix(x, *si, Complex64::ONE, plane);
            let cof = det_gradient(&a);
            for slot in 0..k {
                let w = self.layout.weight(slot, *si, Complex64::ONE);
                out[(i, slot)] = cof[(self.layout.phys_row(slot), self.layout.col(slot))] * w;
            }
        }
        // Moving condition row.
        let (s, u) = self.moving_point(t);
        let m = self.moving_plane(t);
        let a = self.condition_matrix(x, s, u, &m);
        let cof = det_gradient(&a);
        for slot in 0..k {
            let w = self.layout.weight(slot, s, u);
            out[(k - 1, slot)] = cof[(self.layout.phys_row(slot), self.layout.col(slot))] * w;
        }
    }

    fn dt(&self, x: &[Complex64], t: f64, out: &mut [Complex64]) {
        let k = self.dim();
        debug_assert_eq!(out.len(), k);
        // Fixed conditions do not depend on t.
        for o in out.iter_mut().take(k - 1) {
            *o = Complex64::ZERO;
        }
        let (s, u) = self.moving_point(t);
        let ds = self.target_point - Complex64::ONE; // dŝ/dt
        let du = Complex64::ONE; // dû/dt
        let m = self.moving_plane(t);
        let a = self.condition_matrix(x, s, u, &m);
        let cof = det_gradient(&a);
        let shape = self.layout.pattern().shape();
        let p = shape.p();
        let mut acc = Complex64::ZERO;
        // d/dt of the X block: top pivots and slots.
        for j in 0..p {
            let wdt = self.layout.top_pivot_weight_dt(j, s, u, du);
            if wdt != Complex64::ZERO {
                acc += cof[(j, j)] * wdt;
            }
        }
        for slot in 0..k {
            if x[slot] == Complex64::ZERO {
                continue;
            }
            let wdt = self.layout.weight_dt(slot, s, u, ds, du);
            if wdt != Complex64::ZERO {
                acc += cof[(self.layout.phys_row(slot), self.layout.col(slot))] * x[slot] * wdt;
            }
        }
        // d/dt of the moving plane block: dM/dt = L_k − γM_F,
        // precomputed at construction.
        for i in 0..shape.big_n() {
            for c in 0..shape.m() {
                let v = self.dm[(i, c)];
                if v != Complex64::ZERO {
                    acc += cof[(i, p + c)] * v;
                }
            }
        }
        out[k - 1] = acc;
    }

    fn eval_and_jacobian(
        &self,
        x: &[Complex64],
        t: f64,
        fx: &mut [Complex64],
        jac: &mut CMat,
        scratch: &mut HomotopyScratch,
    ) {
        let k = self.dim();
        debug_assert_eq!(fx.len(), k);
        debug_assert_eq!((jac.rows(), jac.cols()), (k, k));
        let shape = self.layout.pattern().shape();
        let sc = scratch.get_or_insert_with(CondScratch::new);
        sc.ensure(shape.big_n(), k, shape.p());
        let p = shape.p();
        // Fixed conditions: one matrix build, one factorisation each —
        // the determinant is the residual entry, the cofactor entries
        // contracted with the precomputed weights are the Jacobian row.
        // Only the p X-block cofactor columns are ever read here.
        for i in 0..self.fixed.len() {
            self.build_fixed_cond(i, x, &mut sc.cond);
            fx[i] = sc
                .engine
                .det_and_cofactor_cols_into(&sc.cond, &mut sc.cof, p);
            for slot in 0..k {
                jac[(i, slot)] = sc.cof[(self.layout.phys_row(slot), self.layout.col(slot))]
                    * self.fixed_slot_w[i][slot];
            }
        }
        // Moving condition.
        let (s, u) = self.moving_point(t);
        self.build_moving_cond(x, t, s, u, &mut sc.slot_w, &mut sc.top_w, &mut sc.cond);
        fx[k - 1] = sc
            .engine
            .det_and_cofactor_cols_into(&sc.cond, &mut sc.cof, p);
        for slot in 0..k {
            jac[(k - 1, slot)] =
                sc.cof[(self.layout.phys_row(slot), self.layout.col(slot))] * sc.slot_w[slot];
        }
    }

    fn jacobian_and_dt(
        &self,
        x: &[Complex64],
        t: f64,
        jac: &mut CMat,
        ht: &mut [Complex64],
        scratch: &mut HomotopyScratch,
    ) {
        let k = self.dim();
        debug_assert_eq!(ht.len(), k);
        debug_assert_eq!((jac.rows(), jac.cols()), (k, k));
        let shape = self.layout.pattern().shape();
        let p = shape.p();
        let sc = scratch.get_or_insert_with(CondScratch::new);
        sc.ensure(shape.big_n(), k, p);
        // Fixed conditions do not depend on t: Jacobian rows only.
        for i in 0..self.fixed.len() {
            self.build_fixed_cond(i, x, &mut sc.cond);
            sc.engine.det_and_cofactor_into(&sc.cond, &mut sc.cof);
            for slot in 0..k {
                jac[(i, slot)] = sc.cof[(self.layout.phys_row(slot), self.layout.col(slot))]
                    * self.fixed_slot_w[i][slot];
            }
            ht[i] = Complex64::ZERO;
        }
        // Moving condition: the same cofactor matrix feeds both the
        // Jacobian row and the ∂H/∂t contraction.
        let (s, u) = self.moving_point(t);
        self.build_moving_cond(x, t, s, u, &mut sc.slot_w, &mut sc.top_w, &mut sc.cond);
        sc.engine.det_and_cofactor_into(&sc.cond, &mut sc.cof);
        for slot in 0..k {
            jac[(k - 1, slot)] =
                sc.cof[(self.layout.phys_row(slot), self.layout.col(slot))] * sc.slot_w[slot];
        }
        let ds = self.target_point - Complex64::ONE; // dŝ/dt
        let du = Complex64::ONE; // dû/dt
        let mut acc = Complex64::ZERO;
        for j in 0..p {
            let wdt = self.layout.top_pivot_weight_dt(j, s, u, du);
            if wdt != Complex64::ZERO {
                acc += sc.cof[(j, j)] * wdt;
            }
        }
        for slot in 0..k {
            if x[slot] == Complex64::ZERO {
                continue;
            }
            let wdt = self.layout.weight_dt(slot, s, u, ds, du);
            if wdt != Complex64::ZERO {
                acc += sc.cof[(self.layout.phys_row(slot), self.layout.col(slot))] * x[slot] * wdt;
            }
        }
        for r in 0..shape.big_n() {
            for c in 0..shape.m() {
                let v = self.dm[(r, c)];
                if v != Complex64::ZERO {
                    acc += sc.cof[(r, p + c)] * v;
                }
            }
        }
        ht[k - 1] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Shape;
    use pieri_num::{random_complex, seeded_rng};

    #[test]
    fn special_plane_complements_residues() {
        let shape = Shape::new(2, 2, 1);
        let root = shape.root(); // residues 4, 3
        let m = special_plane(&root);
        assert_eq!((m.rows(), m.cols()), (4, 2));
        // Columns must be e_1, e_2 (0-indexed rows 0 and 1).
        assert_eq!(m[(0, 0)], Complex64::ONE);
        assert_eq!(m[(1, 1)], Complex64::ONE);
        assert_eq!(m[(2, 0)], Complex64::ZERO);
        assert_eq!(m[(3, 1)], Complex64::ZERO);
    }

    #[test]
    fn det_with_special_plane_is_product_of_pivots() {
        // det [X(1,0) | M_F] = ± ∏ pivot entries: zeroing one pivot makes
        // it vanish, generic pivots keep it nonzero.
        let mut rng = seeded_rng(320);
        for &(m, p, q) in &[(2, 2, 1), (3, 2, 1), (2, 2, 2), (3, 3, 1)] {
            let shape = Shape::new(m, p, q);
            let root = shape.root();
            let layout = CoeffLayout::new(&root);
            let mf = special_plane(&root);
            let x: Vec<Complex64> = (0..layout.dim())
                .map(|_| random_complex(&mut rng))
                .collect();
            let a = layout
                .eval_map(&x, Complex64::ONE, Complex64::ZERO)
                .hstack(&mf);
            let d = det(&a);
            assert!(d.norm() > 1e-10, "generic pivots: det ≠ 0 ({m},{p},{q})");
            // Zero the pivot of the last column.
            let pivot_row = root.pivots()[p - 1];
            let slot = layout
                .slots()
                .iter()
                .position(|&(r, j)| r == pivot_row && j == p - 1)
                .unwrap();
            let mut x0 = x.clone();
            x0[slot] = Complex64::ZERO;
            let a0 = layout
                .eval_map(&x0, Complex64::ONE, Complex64::ZERO)
                .hstack(&mf);
            assert!(
                det(&a0).norm() < 1e-12,
                "zeroed pivot: det = 0 ({m},{p},{q})"
            );
        }
    }

    #[test]
    fn homotopy_dims_match_rank() {
        let mut rng = seeded_rng(321);
        let shape = Shape::new(2, 2, 1);
        let prob = PieriProblem::random(shape.clone(), &mut rng);
        let root = shape.root();
        let h = PieriHomotopy::new(&prob, &root);
        assert_eq!(h.dim(), 8);
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let mut rng = seeded_rng(322);
        let shape = Shape::new(2, 2, 1);
        let prob = PieriProblem::random(shape.clone(), &mut rng);
        let root = shape.root();
        let h = PieriHomotopy::new(&prob, &root);
        let k = h.dim();
        let x: Vec<Complex64> = (0..k).map(|_| random_complex(&mut rng)).collect();
        let t = 0.37;
        let mut jac = CMat::zeros(k, k);
        h.jacobian_x(&x, t, &mut jac);
        let mut f0 = vec![Complex64::ZERO; k];
        h.eval(&x, t, &mut f0);
        let step = 1e-7;
        for col in 0..k {
            let mut xp = x.clone();
            xp[col] += Complex64::real(step);
            let mut f1 = vec![Complex64::ZERO; k];
            h.eval(&xp, t, &mut f1);
            for row in 0..k {
                let fd = (f1[row] - f0[row]) / step;
                assert!(
                    fd.dist(jac[(row, col)]) < 1e-5 * (1.0 + jac[(row, col)].norm()),
                    "J[{row},{col}]: fd={fd:?} an={:?}",
                    jac[(row, col)]
                );
            }
        }
    }

    #[test]
    fn dt_matches_finite_differences() {
        let mut rng = seeded_rng(323);
        for &(m, p, q) in &[(2, 2, 0), (2, 2, 1), (3, 2, 1)] {
            let shape = Shape::new(m, p, q);
            let prob = PieriProblem::random(shape.clone(), &mut rng);
            let root = shape.root();
            let h = PieriHomotopy::new(&prob, &root);
            let k = h.dim();
            let x: Vec<Complex64> = (0..k).map(|_| random_complex(&mut rng)).collect();
            let t = 0.42;
            let mut dt = vec![Complex64::ZERO; k];
            h.dt(&x, t, &mut dt);
            let step = 1e-7;
            let mut fp = vec![Complex64::ZERO; k];
            let mut fm = vec![Complex64::ZERO; k];
            h.eval(&x, t + step, &mut fp);
            h.eval(&x, t - step, &mut fm);
            for row in 0..k {
                let fd = (fp[row] - fm[row]) / (2.0 * step);
                assert!(
                    fd.dist(dt[row]) < 1e-5 * (1.0 + dt[row].norm()),
                    "({m},{p},{q}) row {row}: fd={fd:?} an={:?}",
                    dt[row]
                );
            }
        }
    }

    #[test]
    fn child_embedding_solves_t0_moving_condition() {
        let mut rng = seeded_rng(324);
        let shape = Shape::new(2, 2, 1);
        let prob = PieriProblem::random(shape.clone(), &mut rng);
        let root = shape.root();
        let h = PieriHomotopy::new(&prob, &root);
        // Any vector with the last-column pivot zero satisfies the moving
        // condition at t = 0.
        for child in root.children() {
            let lc = CoeffLayout::new(&child);
            let y: Vec<Complex64> = (0..lc.dim()).map(|_| random_complex(&mut rng)).collect();
            let x0 = h.layout().embed_child(&lc, &y);
            let mut out = vec![Complex64::ZERO; h.dim()];
            h.eval(&x0, 0.0, &mut out);
            assert!(
                out[h.dim() - 1].norm() < 1e-10,
                "moving condition at t=0 for child {child}"
            );
        }
    }
}
