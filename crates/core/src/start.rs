//! Reusable generic start systems: the shape-level work of a Pieri solve.
//!
//! Everything expensive about a Pieri solve depends only on the shape
//! `(m, p, q)`: the poset of localization patterns and the one run of
//! the Pieri tree on a *generic* random instance. A concrete instance
//! (e.g. the pole-placement data of an actual plant) is then reached
//! from the generic solutions by a single straight-line coefficient-
//! parameter homotopy — `d(m,p,q)` cheap paths instead of the whole
//! tree (Huber–Sottile–Sturmfels call this reusing the start system;
//! Section III of the ICPP paper frames the Pieri tree as exactly the
//! way "to find a general start system").
//!
//! [`StartBundle`] packages that reusable work — shape, poset, generic
//! problem, and its tracked root solutions — so a long-lived server can
//! compute it once per shape and amortize it across every later request
//! (the `pieri-service` shape cache stores `Arc<StartBundle>`s).

use crate::instance::{continue_to_instance, InstanceContinuation};
use crate::poset::Poset;
use crate::problem::PieriProblem;
use crate::solver::{solve_prepared, PieriSolution};
use crate::Shape;
use pieri_num::Complex64;
use pieri_tracker::TrackSettings;
use rand::Rng;
use std::time::Duration;

/// A generic start system for one shape: the poset, the random generic
/// instance, and its `d(m,p,q)` tracked root solutions.
#[derive(Debug, Clone)]
pub struct StartBundle {
    poset: Poset,
    problem: PieriProblem,
    coeffs: Vec<Vec<Complex64>>,
    build_time: Duration,
}

impl StartBundle {
    /// Builds the bundle: one generic instance through the Pieri tree
    /// with the sequential level-by-level solver.
    ///
    /// # Panics
    /// Panics if the generic solve loses roots — random instances are
    /// generic with probability one, so a shortfall is a numerics bug,
    /// not an input error.
    pub fn build<R: Rng + ?Sized>(shape: Shape, rng: &mut R, settings: &TrackSettings) -> Self {
        let t0 = std::time::Instant::now();
        let poset = Poset::build(&shape);
        let problem = PieriProblem::random(shape, rng);
        let solution = solve_prepared(&problem, &poset, settings);
        Self::from_parts(poset, problem, solution, t0.elapsed())
    }

    /// Wraps an already-computed generic solve (e.g. one produced by the
    /// tree-parallel scheduler, which can't be invoked from in here
    /// without committing core to a scheduler choice).
    ///
    /// # Panics
    /// Panics when the solution's root count falls short of `d(m,p,q)`
    /// or the poset does not match the problem's shape.
    pub fn from_parts(
        poset: Poset,
        problem: PieriProblem,
        solution: PieriSolution,
        build_time: Duration,
    ) -> Self {
        assert_eq!(poset.shape(), problem.shape(), "poset/problem shape");
        assert_eq!(
            solution.coeffs.len() as u128,
            poset.root_count(),
            "generic start solve must find all d(m,p,q) roots"
        );
        StartBundle {
            poset,
            problem,
            coeffs: solution.coeffs,
            build_time,
        }
    }

    /// Rebuilds a bundle from *persisted* generic-solution coefficients
    /// without re-running the Pieri tree. The poset and the generic
    /// instance are regenerated deterministically from `rng` — callers
    /// persist the seed they originally built with and hand back the
    /// same seeded stream — so only the coefficient vectors need to
    /// survive on disk.
    ///
    /// Unlike [`StartBundle::from_parts`] this validates instead of
    /// panicking: a stale or corrupted store must degrade to a rebuild,
    /// not poison the server. Checks: root count equals `d(m,p,q)`,
    /// every vector has the chart dimension with finite entries, and
    /// the first and last solutions actually satisfy the regenerated
    /// generic conditions.
    pub fn restore<R: Rng + ?Sized>(
        shape: Shape,
        rng: &mut R,
        coeffs: Vec<Vec<Complex64>>,
        build_time: Duration,
    ) -> Result<Self, String> {
        let poset = Poset::build(&shape);
        let problem = PieriProblem::random(shape, rng);
        if coeffs.is_empty() || coeffs.len() as u128 != poset.root_count() {
            return Err(format!(
                "stored root count {} does not match d(m,p,q) = {}",
                coeffs.len(),
                poset.root_count()
            ));
        }
        let root = problem.shape().root();
        let dim = crate::eval::CoeffLayout::new(&root).dim();
        for (i, x) in coeffs.iter().enumerate() {
            if x.len() != dim {
                return Err(format!(
                    "stored solution {i} has {} coefficients, chart needs {dim}",
                    x.len()
                ));
            }
            if x.iter().any(|z| !z.re.is_finite() || !z.im.is_finite()) {
                return Err(format!("stored solution {i} has non-finite entries"));
            }
        }
        // Spot-check that the coefficients belong to *this* generic
        // instance (same seed): a residual that large means the store
        // was written under different generation code or data.
        for &i in &[0, coeffs.len() - 1] {
            let res = crate::maps::PMap::from_coeffs(&root, &coeffs[i]).max_residual(&problem);
            if res.is_nan() || res >= 1e-6 {
                return Err(format!(
                    "stored solution {i} does not solve the regenerated generic instance \
                     (residual {res:.2e})"
                ));
            }
        }
        Ok(StartBundle {
            poset,
            problem,
            coeffs,
            build_time,
        })
    }

    /// The shape this bundle serves.
    pub fn shape(&self) -> &Shape {
        self.problem.shape()
    }

    /// The pre-built poset (shared with [`solve_prepared`] callers).
    pub fn poset(&self) -> &Poset {
        &self.poset
    }

    /// The generic start instance.
    pub fn problem(&self) -> &PieriProblem {
        &self.problem
    }

    /// Root-pattern coefficient vectors of the generic solutions.
    pub fn coeffs(&self) -> &[Vec<Complex64>] {
        &self.coeffs
    }

    /// Number of start solutions (`d(m,p,q)`).
    pub fn root_count(&self) -> usize {
        self.coeffs.len()
    }

    /// Wall-clock time the shape-level work took (reported by the cache
    /// as the cost a hit avoids).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Continues all generic solutions to `target` — the cheap warm
    /// path: `d(m,p,q)` straight-line paths, no tree.
    ///
    /// # Panics
    /// Panics when `target` has a different shape (via
    /// [`crate::InstanceHomotopy::new`]).
    pub fn continue_to(
        &self,
        target: &PieriProblem,
        settings: &TrackSettings,
    ) -> InstanceContinuation {
        continue_to_instance(&self.problem, &self.coeffs, target, settings)
    }

    /// [`StartBundle::continue_to`] with a
    /// [`pieri_certify::CertifyPolicy`]: re-tracks failed paths,
    /// certifies every shipped solution and refines per policy (see
    /// [`crate::continue_to_instance_certified`]).
    pub fn continue_to_certified(
        &self,
        target: &PieriProblem,
        settings: &TrackSettings,
        policy: &pieri_certify::CertifyPolicy,
    ) -> InstanceContinuation {
        crate::instance::continue_to_instance_certified(
            &self.problem,
            &self.coeffs,
            target,
            settings,
            policy,
        )
    }

    /// Rough resident size of this bundle in bytes: the generic solution
    /// set, the problem data and the poset's patterns. Used by the
    /// service's shape cache for byte-budget eviction — an estimate, not
    /// an accounting.
    pub fn approx_bytes(&self) -> usize {
        let shape = self.problem.shape();
        let coeff_bytes: usize = self.coeffs.iter().map(|c| c.len() * 16 + 32).sum();
        let plane_bytes = shape.conditions() * shape.big_n() * shape.m() * 16;
        // Patterns store their pivot vectors; count nodes × pivots.
        let poset_bytes = self.poset.node_count() * (shape.p() * 8 + 64);
        coeff_bytes + plane_bytes + poset_bytes + 256
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_num::seeded_rng;

    #[test]
    fn bundle_matches_direct_solve_and_continues() {
        let mut rng = seeded_rng(370);
        let shape = Shape::new(2, 2, 0);
        let bundle = StartBundle::build(shape.clone(), &mut rng, &TrackSettings::default());
        assert_eq!(bundle.root_count(), 2);
        assert_eq!(bundle.shape(), &shape);

        let target = PieriProblem::random(shape, &mut rng);
        let cont = bundle.continue_to(&target, &TrackSettings::default());
        assert_eq!(cont.maps.len(), 2, "both roots reach the target");
        assert_eq!(cont.stats.total(), 2);
        for m in &cont.maps {
            assert!(m.max_residual(&target) < 1e-7);
        }
    }

    #[test]
    fn reusing_one_bundle_is_deterministic_per_target() {
        let mut rng = seeded_rng(371);
        let shape = Shape::new(2, 2, 0);
        let bundle = StartBundle::build(shape.clone(), &mut rng, &TrackSettings::default());
        let target = PieriProblem::random(shape, &mut rng);
        let a = bundle.continue_to(&target, &TrackSettings::default());
        let b = bundle.continue_to(&target, &TrackSettings::default());
        assert_eq!(a.coeffs, b.coeffs, "same bundle + target → same bits");
    }

    #[test]
    fn restore_round_trips_and_rejects_corruption() {
        let shape = Shape::new(2, 2, 0);
        let seed = 373_u64;
        let bundle = StartBundle::build(
            shape.clone(),
            &mut seeded_rng(seed),
            &TrackSettings::default(),
        );

        // Same seed + persisted coefficients → bit-identical bundle.
        let restored = StartBundle::restore(
            shape.clone(),
            &mut seeded_rng(seed),
            bundle.coeffs().to_vec(),
            bundle.build_time(),
        )
        .expect("faithful restore succeeds");
        assert_eq!(restored.coeffs(), bundle.coeffs());
        let target = PieriProblem::random(shape.clone(), &mut seeded_rng(99));
        let a = bundle.continue_to(&target, &TrackSettings::default());
        let b = restored.continue_to(&target, &TrackSettings::default());
        assert_eq!(a.coeffs, b.coeffs, "restored bundle continues identically");

        // Wrong seed: well-formed coefficients that don't solve the
        // regenerated instance are rejected by the residual check.
        let err = StartBundle::restore(
            shape.clone(),
            &mut seeded_rng(seed + 1),
            bundle.coeffs().to_vec(),
            Duration::ZERO,
        )
        .unwrap_err();
        assert!(err.contains("residual"), "{err}");

        // Structural corruption: dropped root, wrong dimension,
        // non-finite entries.
        let mut short = bundle.coeffs().to_vec();
        short.pop();
        assert!(
            StartBundle::restore(shape.clone(), &mut seeded_rng(seed), short, Duration::ZERO)
                .unwrap_err()
                .contains("root count")
        );
        let mut ragged = bundle.coeffs().to_vec();
        ragged[1].pop();
        assert!(
            StartBundle::restore(shape.clone(), &mut seeded_rng(seed), ragged, Duration::ZERO)
                .unwrap_err()
                .contains("coefficients")
        );
        let mut nan = bundle.coeffs().to_vec();
        nan[0][0] = Complex64::new(f64::NAN, 0.0);
        assert!(
            StartBundle::restore(shape, &mut seeded_rng(seed), nan, Duration::ZERO)
                .unwrap_err()
                .contains("non-finite")
        );
    }

    #[test]
    #[should_panic(expected = "all d(m,p,q) roots")]
    fn from_parts_rejects_lost_roots() {
        let mut rng = seeded_rng(372);
        let shape = Shape::new(2, 2, 0);
        let poset = Poset::build(&shape);
        let problem = PieriProblem::random(shape, &mut rng);
        let mut solution = solve_prepared(&problem, &poset, &TrackSettings::default());
        solution.coeffs.pop();
        let _ = StartBundle::from_parts(poset, problem, solution, Duration::ZERO);
    }
}
