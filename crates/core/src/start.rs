//! Reusable generic start systems: the shape-level work of a Pieri solve.
//!
//! Everything expensive about a Pieri solve depends only on the shape
//! `(m, p, q)`: the poset of localization patterns and the one run of
//! the Pieri tree on a *generic* random instance. A concrete instance
//! (e.g. the pole-placement data of an actual plant) is then reached
//! from the generic solutions by a single straight-line coefficient-
//! parameter homotopy — `d(m,p,q)` cheap paths instead of the whole
//! tree (Huber–Sottile–Sturmfels call this reusing the start system;
//! Section III of the ICPP paper frames the Pieri tree as exactly the
//! way "to find a general start system").
//!
//! [`StartBundle`] packages that reusable work — shape, poset, generic
//! problem, and its tracked root solutions — so a long-lived server can
//! compute it once per shape and amortize it across every later request
//! (the `pieri-service` shape cache stores `Arc<StartBundle>`s).

use crate::instance::{continue_to_instance, InstanceContinuation};
use crate::poset::Poset;
use crate::problem::PieriProblem;
use crate::solver::{solve_prepared, PieriSolution};
use crate::Shape;
use pieri_num::Complex64;
use pieri_tracker::TrackSettings;
use rand::Rng;
use std::time::Duration;

/// A generic start system for one shape: the poset, the random generic
/// instance, and its `d(m,p,q)` tracked root solutions.
#[derive(Debug, Clone)]
pub struct StartBundle {
    poset: Poset,
    problem: PieriProblem,
    coeffs: Vec<Vec<Complex64>>,
    build_time: Duration,
}

impl StartBundle {
    /// Builds the bundle: one generic instance through the Pieri tree
    /// with the sequential level-by-level solver.
    ///
    /// # Panics
    /// Panics if the generic solve loses roots — random instances are
    /// generic with probability one, so a shortfall is a numerics bug,
    /// not an input error.
    pub fn build<R: Rng + ?Sized>(shape: Shape, rng: &mut R, settings: &TrackSettings) -> Self {
        let t0 = std::time::Instant::now();
        let poset = Poset::build(&shape);
        let problem = PieriProblem::random(shape, rng);
        let solution = solve_prepared(&problem, &poset, settings);
        Self::from_parts(poset, problem, solution, t0.elapsed())
    }

    /// Wraps an already-computed generic solve (e.g. one produced by the
    /// tree-parallel scheduler, which can't be invoked from in here
    /// without committing core to a scheduler choice).
    ///
    /// # Panics
    /// Panics when the solution's root count falls short of `d(m,p,q)`
    /// or the poset does not match the problem's shape.
    pub fn from_parts(
        poset: Poset,
        problem: PieriProblem,
        solution: PieriSolution,
        build_time: Duration,
    ) -> Self {
        assert_eq!(poset.shape(), problem.shape(), "poset/problem shape");
        assert_eq!(
            solution.coeffs.len() as u128,
            poset.root_count(),
            "generic start solve must find all d(m,p,q) roots"
        );
        StartBundle {
            poset,
            problem,
            coeffs: solution.coeffs,
            build_time,
        }
    }

    /// The shape this bundle serves.
    pub fn shape(&self) -> &Shape {
        self.problem.shape()
    }

    /// The pre-built poset (shared with [`solve_prepared`] callers).
    pub fn poset(&self) -> &Poset {
        &self.poset
    }

    /// The generic start instance.
    pub fn problem(&self) -> &PieriProblem {
        &self.problem
    }

    /// Root-pattern coefficient vectors of the generic solutions.
    pub fn coeffs(&self) -> &[Vec<Complex64>] {
        &self.coeffs
    }

    /// Number of start solutions (`d(m,p,q)`).
    pub fn root_count(&self) -> usize {
        self.coeffs.len()
    }

    /// Wall-clock time the shape-level work took (reported by the cache
    /// as the cost a hit avoids).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Continues all generic solutions to `target` — the cheap warm
    /// path: `d(m,p,q)` straight-line paths, no tree.
    ///
    /// # Panics
    /// Panics when `target` has a different shape (via
    /// [`crate::InstanceHomotopy::new`]).
    pub fn continue_to(
        &self,
        target: &PieriProblem,
        settings: &TrackSettings,
    ) -> InstanceContinuation {
        continue_to_instance(&self.problem, &self.coeffs, target, settings)
    }

    /// [`StartBundle::continue_to`] with a
    /// [`pieri_certify::CertifyPolicy`]: re-tracks failed paths,
    /// certifies every shipped solution and refines per policy (see
    /// [`crate::continue_to_instance_certified`]).
    pub fn continue_to_certified(
        &self,
        target: &PieriProblem,
        settings: &TrackSettings,
        policy: &pieri_certify::CertifyPolicy,
    ) -> InstanceContinuation {
        crate::instance::continue_to_instance_certified(
            &self.problem,
            &self.coeffs,
            target,
            settings,
            policy,
        )
    }

    /// Rough resident size of this bundle in bytes: the generic solution
    /// set, the problem data and the poset's patterns. Used by the
    /// service's shape cache for byte-budget eviction — an estimate, not
    /// an accounting.
    pub fn approx_bytes(&self) -> usize {
        let shape = self.problem.shape();
        let coeff_bytes: usize = self.coeffs.iter().map(|c| c.len() * 16 + 32).sum();
        let plane_bytes = shape.conditions() * shape.big_n() * shape.m() * 16;
        // Patterns store their pivot vectors; count nodes × pivots.
        let poset_bytes = self.poset.node_count() * (shape.p() * 8 + 64);
        coeff_bytes + plane_bytes + poset_bytes + 256
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_num::seeded_rng;

    #[test]
    fn bundle_matches_direct_solve_and_continues() {
        let mut rng = seeded_rng(370);
        let shape = Shape::new(2, 2, 0);
        let bundle = StartBundle::build(shape.clone(), &mut rng, &TrackSettings::default());
        assert_eq!(bundle.root_count(), 2);
        assert_eq!(bundle.shape(), &shape);

        let target = PieriProblem::random(shape, &mut rng);
        let cont = bundle.continue_to(&target, &TrackSettings::default());
        assert_eq!(cont.maps.len(), 2, "both roots reach the target");
        assert_eq!(cont.stats.total(), 2);
        for m in &cont.maps {
            assert!(m.max_residual(&target) < 1e-7);
        }
    }

    #[test]
    fn reusing_one_bundle_is_deterministic_per_target() {
        let mut rng = seeded_rng(371);
        let shape = Shape::new(2, 2, 0);
        let bundle = StartBundle::build(shape.clone(), &mut rng, &TrackSettings::default());
        let target = PieriProblem::random(shape, &mut rng);
        let a = bundle.continue_to(&target, &TrackSettings::default());
        let b = bundle.continue_to(&target, &TrackSettings::default());
        assert_eq!(a.coeffs, b.coeffs, "same bundle + target → same bits");
    }

    #[test]
    #[should_panic(expected = "all d(m,p,q) roots")]
    fn from_parts_rejects_lost_roots() {
        let mut rng = seeded_rng(372);
        let shape = Shape::new(2, 2, 0);
        let poset = Poset::build(&shape);
        let problem = PieriProblem::random(shape, &mut rng);
        let mut solution = solve_prepared(&problem, &poset, &TrackSettings::default());
        solution.coeffs.pop();
        let _ = StartBundle::from_parts(poset, problem, solution, Duration::ZERO);
    }
}
