//! Numerical Schubert calculus: Pieri homotopies for pole placement.
//!
//! This crate is the primary contribution of the ICPP 2004 paper
//! reproduction — the machinery that computes **all** feedback laws of a
//! linear system with `m` inputs, `p` outputs and a degree-`q` (dynamic)
//! compensator by solving the associated problem in enumerative geometry:
//! find all degree-`q` maps `X(s)` of `p`-planes in ℂ^{m+p} meeting `n =
//! mp + q(m+p)` given generic `m`-planes `L_i` at prescribed interpolation
//! points `s_i`,
//!
//! ```text
//! det [ X(s_i) | L_i ] = 0 ,   i = 1..n .
//! ```
//!
//! The pieces, mirroring Section III of the paper:
//!
//! * [`Shape`], [`Pattern`] — localization patterns with fixed top pivots
//!   and the bottom-pivot combinatorics of Fig. 3 (standard, concatenated
//!   and shorthand forms);
//! * [`Poset`] — the bottom-children poset of Fig. 4 with exact (u128)
//!   root counts `d(m,p,q)` and per-level chain counts — the virtue of
//!   Pieri *trees* (Fig. 5) for parallelism is that each chain is an
//!   independent job once its parent solution is known;
//! * [`PieriProblem`] — problem data (planes and interpolation points,
//!   random or supplied by the control layer);
//! * [`PieriHomotopy`] — one instance of homotopy (3) of the paper: the
//!   moving plane `M(t) = (1−t)·γ·M_F + t·L_k` together with the moving
//!   homogenised interpolation point `(ŝ, û)(t) = (1−t)·(1,0) + t·(s_k,1)`;
//! * [`solve`] / [`PieriSolution`] — the level-by-level (poset) sequential
//!   solver and verified solution maps; the tree-parallel scheduler lives
//!   in `pieri-parallel`;
//! * [`StartBundle`] — the reusable shape-level work (poset + generic
//!   start solutions) that [`continue_to_instance`] stretches to any
//!   concrete instance; the unit the `pieri-service` shape cache stores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over multiple arrays at once are the clearest way to
// write the dense numeric kernels here; the iterator-chain alternative
// clippy suggests obscures the index coupling.
#![allow(clippy::needless_range_loop)]

mod certified;
mod eval;
mod homotopy;
mod instance;
mod maps;
mod pattern;
mod poset;
mod problem;
mod scratch;
mod solver;
mod start;

pub use certified::{certify_solution_set, TargetConditions};
pub use eval::CoeffLayout;
pub use homotopy::{special_plane, PieriHomotopy};
pub use instance::{
    continue_to_instance, continue_to_instance_certified, InstanceContinuation, InstanceHomotopy,
};
pub use maps::PMap;
pub use pattern::{Pattern, Shape};
pub use poset::{root_count, LevelProfile, Poset};
pub use problem::PieriProblem;
pub use solver::{
    certify_roots, run_job, run_job_with, solve, solve_prepared, solve_prepared_certified,
    solve_with_settings, JobRecord, PieriSolution,
};
pub use start::StartBundle;
