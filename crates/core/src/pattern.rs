//! Localization patterns: the bottom-pivot combinatorics of the Pieri
//! homotopy (Fig. 3 of the paper).

use std::fmt;

/// The fixed problem dimensions `(m, p, q)` and everything derived from
/// them.
///
/// * `m` — number of inputs (codimension of the given planes),
/// * `p` — number of outputs (dimension of the solution planes),
/// * `q` — McMillan degree of the compensator (degree of the maps),
/// * `n = mp + q(m+p)` — number of intersection conditions = dimension of
///   the solution variety = number of unknowns of a fully general map.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    m: usize,
    p: usize,
    q: usize,
    /// Per-column caps on the bottom pivots (concatenated row indices).
    caps: Vec<usize>,
}

impl Shape {
    /// Creates the shape for a machine with `m` inputs, `p` outputs and a
    /// degree-`q` compensator.
    ///
    /// # Panics
    /// Panics when `m == 0` or `p == 0`.
    pub fn new(m: usize, p: usize, q: usize) -> Self {
        assert!(m >= 1 && p >= 1, "need m ≥ 1 and p ≥ 1");
        let big_n = m + p;
        // q = a·p + r with 0 ≤ r < p: the first p−r columns are capped at
        // (a+1)(m+p) concatenated rows, the remaining r at (a+2)(m+p).
        let a = q / p;
        let r = q % p;
        let caps = (0..p)
            .map(|j| {
                if j < p - r {
                    (a + 1) * big_n
                } else {
                    (a + 2) * big_n
                }
            })
            .collect();
        Shape { m, p, q, caps }
    }

    /// Number of inputs.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of outputs.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Compensator degree.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Ambient dimension `m + p`.
    pub fn big_n(&self) -> usize {
        self.m + self.p
    }

    /// Number of intersection conditions `n = mp + q(m+p)`.
    pub fn conditions(&self) -> usize {
        self.m * self.p + self.q * (self.m + self.p)
    }

    /// Cap on the bottom pivot of (0-indexed) column `j`.
    pub fn cap(&self, j: usize) -> usize {
        self.caps[j]
    }

    /// Rows of the concatenated coefficient matrix (the largest cap).
    pub fn concat_rows(&self) -> usize {
        *self.caps.last().expect("p ≥ 1")
    }

    /// The trivial localization pattern `b = (1, 2, …, p)` — zero
    /// conditions satisfied, the unique minimal poset element.
    pub fn trivial(&self) -> Pattern {
        Pattern {
            shape: self.clone(),
            pivots: (1..=self.p).collect(),
        }
    }

    /// The root localization pattern: the unique valid pattern of full
    /// rank `n` (all conditions satisfied).
    ///
    /// Computed greedily from the last column down and verified; the
    /// construction panics if the greedy pattern were ever not of full
    /// rank, which would indicate an inconsistent shape.
    pub fn root(&self) -> Pattern {
        let p = self.p;
        let big_n = self.big_n();
        let mut pivots = vec![0usize; p];
        // Maximise the last pivot, then each previous one; finally clamp
        // the spread constraint b_p − b_1 < m+p by lowering the top end.
        // Iterate to a fixed point (at most p rounds).
        pivots[p - 1] = self.caps[p - 1];
        loop {
            for j in (0..p - 1).rev() {
                pivots[j] = self.caps[j].min(pivots[j + 1] - 1);
            }
            if pivots[p - 1] - pivots[0] < big_n {
                break;
            }
            pivots[p - 1] -= 1;
        }
        let pat = Pattern {
            shape: self.clone(),
            pivots,
        };
        assert!(pat.is_valid(), "greedy root pattern must be valid");
        assert_eq!(
            pat.rank(),
            self.conditions(),
            "root pattern rank must equal the number of conditions"
        );
        pat
    }
}

/// A localization pattern with fixed top pivots `[1..p]`, identified by
/// its bottom pivots on the concatenated `(q+1)(m+p) × p` coefficient
/// matrix.
///
/// Column `j` (1-indexed) of a map fitting the pattern has free
/// coefficients exactly in concatenated rows `j..=b_j`, with the top entry
/// (row `j`) normalised to 1 — so the pattern has `rank = Σ (b_j − j)`
/// unknowns, equal to the number of intersection conditions its solutions
/// satisfy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    shape: Shape,
    /// 1-indexed bottom pivots, strictly increasing.
    pivots: Vec<usize>,
}

impl Pattern {
    /// Builds a pattern from bottom pivots, validating it.
    ///
    /// Returns `None` when the pivots violate the pattern rules.
    pub fn new(shape: &Shape, pivots: Vec<usize>) -> Option<Pattern> {
        let pat = Pattern {
            shape: shape.clone(),
            pivots,
        };
        pat.is_valid().then_some(pat)
    }

    /// The shape this pattern belongs to.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Bottom pivots (1-indexed concatenated rows), strictly increasing.
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// Checks the three validity rules from the paper:
    /// column caps, strictly increasing pivots (with `b_j ≥ j` from the
    /// fixed top pivots), and pairwise differences `< m+p`.
    pub fn is_valid(&self) -> bool {
        let p = self.shape.p;
        if self.pivots.len() != p {
            return false;
        }
        for j in 0..p {
            let b = self.pivots[j];
            if b < j + 1 || b > self.shape.cap(j) {
                return false;
            }
            if j > 0 && self.pivots[j - 1] >= b {
                return false;
            }
        }
        // Pairwise differences < m+p ⟺ spread < m+p for sorted pivots.
        self.pivots[p - 1] - self.pivots[0] < self.shape.big_n()
    }

    /// Rank `Σ (b_j − j)` — the number of intersection conditions a map
    /// fitting this pattern satisfies, and its number of unknowns.
    pub fn rank(&self) -> usize {
        self.pivots
            .iter()
            .enumerate()
            .map(|(j, &b)| b - (j + 1))
            .sum()
    }

    /// True for the trivial pattern.
    pub fn is_trivial(&self) -> bool {
        self.rank() == 0
    }

    /// Degree of column `j` (0-indexed): the block of the concatenated
    /// matrix holding its bottom pivot.
    pub fn col_degree(&self, j: usize) -> usize {
        (self.pivots[j] - 1) / self.shape.big_n()
    }

    /// Residue of the bottom pivot of column `j` within its block —
    /// the physical row (1-indexed, in `1..=m+p`) of the leading
    /// coefficient. Validity guarantees these are pairwise distinct.
    pub fn pivot_residue(&self, j: usize) -> usize {
        (self.pivots[j] - 1) % self.shape.big_n() + 1
    }

    /// All *bottom children*: patterns obtained by decrementing one bottom
    /// pivot (one condition fewer). Start solutions of the Pieri homotopy
    /// at this pattern embed the children's solutions.
    pub fn children(&self) -> Vec<Pattern> {
        let mut out = Vec::new();
        for j in 0..self.pivots.len() {
            if self.pivots[j] == 1 {
                continue;
            }
            let mut pv = self.pivots.clone();
            pv[j] -= 1;
            if let Some(pat) = Pattern::new(&self.shape, pv) {
                out.push(pat);
            }
        }
        out
    }

    /// All valid *parents*: patterns obtained by incrementing one bottom
    /// pivot (one condition more). The Pieri tree grows along these edges.
    pub fn parents(&self) -> Vec<Pattern> {
        let mut out = Vec::new();
        for j in 0..self.pivots.len() {
            let mut pv = self.pivots.clone();
            pv[j] += 1;
            if let Some(pat) = Pattern::new(&self.shape, pv) {
                out.push(pat);
            }
        }
        out
    }

    /// Index of the column whose pivot differs by one from `child`, when
    /// `child` is a bottom child of `self`.
    pub fn child_column(&self, child: &Pattern) -> Option<usize> {
        if self.shape != child.shape {
            return None;
        }
        let mut found = None;
        for j in 0..self.pivots.len() {
            match self.pivots[j] as i64 - child.pivots[j] as i64 {
                0 => {}
                1 if found.is_none() => found = Some(j),
                _ => return None,
            }
        }
        found
    }

    /// The shorthand notation of the paper, e.g. `[4 7]`.
    pub fn shorthand(&self) -> String {
        let inner: Vec<String> = self.pivots.iter().map(|b| b.to_string()).collect();
        format!("[{}]", inner.join(" "))
    }

    /// Renders the concatenated form of Fig. 3: a `(q+1)(m+p) × p` grid of
    /// `*` (free coefficient), `1` (normalised top pivot) and `.` (zero).
    pub fn concatenated_form(&self) -> String {
        let rows = self.shape.concat_rows();
        let p = self.shape.p;
        let mut s = String::new();
        for r in 1..=rows {
            for j in 0..p {
                let ch = if r == j + 1 {
                    '1'
                } else if r > j + 1 && r <= self.pivots[j] {
                    '*'
                } else {
                    '.'
                };
                s.push(ch);
                if j + 1 < p {
                    s.push(' ');
                }
            }
            s.push('\n');
        }
        s
    }

    /// Renders the standard (degree-by-degree) form of Fig. 3: one
    /// `(m+p) × p` grid per degree `0..=q`, entries like `*·s^d`.
    pub fn standard_form(&self) -> String {
        let big_n = self.shape.big_n();
        let p = self.shape.p;
        let mut s = String::new();
        for d in 0..=self.shape.q {
            s.push_str(&format!("degree {d} coefficients:\n"));
            for i in 1..=big_n {
                let r = d * big_n + i;
                for j in 0..p {
                    let ch = if r == j + 1 {
                        '1'
                    } else if r > j + 1 && r <= self.pivots[j] {
                        '*'
                    } else {
                        '.'
                    };
                    s.push(ch);
                    if j + 1 < p {
                        s.push(' ');
                    }
                }
                s.push('\n');
            }
        }
        s
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.shorthand())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_dimensions_match_paper() {
        // n = mp + q(m+p).
        let s = Shape::new(2, 2, 1);
        assert_eq!(s.conditions(), 8);
        assert_eq!(s.big_n(), 4);
        let s = Shape::new(3, 2, 1);
        assert_eq!(s.conditions(), 11);
        let s = Shape::new(4, 4, 0);
        assert_eq!(s.conditions(), 16);
    }

    #[test]
    fn caps_follow_the_definition() {
        // (2,2,1): q = 0·2 + 1 → first column cap 4, second cap 8 (Fig 3).
        let s = Shape::new(2, 2, 1);
        assert_eq!(s.cap(0), 4);
        assert_eq!(s.cap(1), 8);
        // (2,2,2): q = 1·2 + 0 → both columns cap 8.
        let s = Shape::new(2, 2, 2);
        assert_eq!(s.cap(0), 8);
        assert_eq!(s.cap(1), 8);
        // q = 0: all caps m+p.
        let s = Shape::new(3, 3, 0);
        assert_eq!((s.cap(0), s.cap(1), s.cap(2)), (6, 6, 6));
    }

    #[test]
    fn roots_match_hand_computed_patterns() {
        // Fig 3/5: root of (2,2,1) is [4 7].
        assert_eq!(Shape::new(2, 2, 1).root().pivots(), &[4, 7]);
        // (3,2,1): [5 9] (rank 11).
        assert_eq!(Shape::new(3, 2, 1).root().pivots(), &[5, 9]);
        // q = 0 root is [m+1 … m+p].
        assert_eq!(Shape::new(3, 3, 0).root().pivots(), &[4, 5, 6]);
        assert_eq!(Shape::new(4, 3, 0).root().pivots(), &[5, 6, 7]);
        // (3,3,1): caps (6,6,12), spread < 6 → [5 6 10], rank 15.
        assert_eq!(Shape::new(3, 3, 1).root().pivots(), &[5, 6, 10]);
    }

    #[test]
    fn root_and_trivial_ranks() {
        for &(m, p, q) in &[
            (2, 2, 0),
            (2, 2, 1),
            (3, 2, 1),
            (3, 3, 1),
            (2, 3, 1),
            (4, 4, 0),
        ] {
            let s = Shape::new(m, p, q);
            assert_eq!(s.trivial().rank(), 0, "({m},{p},{q})");
            assert_eq!(s.root().rank(), s.conditions(), "({m},{p},{q})");
            assert!(s.trivial().is_valid());
        }
    }

    #[test]
    fn validity_rules() {
        let s = Shape::new(2, 2, 1);
        // Spread must be < m+p = 4: [1 5] invalid, [4 7] valid.
        assert!(Pattern::new(&s, vec![1, 5]).is_none());
        assert!(Pattern::new(&s, vec![4, 7]).is_some());
        // Caps: b_1 ≤ 4.
        assert!(Pattern::new(&s, vec![5, 7]).is_none());
        // Strictly increasing.
        assert!(Pattern::new(&s, vec![3, 3]).is_none());
        // b_j ≥ j.
        assert!(Pattern::new(&s, vec![1, 1]).is_none());
    }

    #[test]
    fn children_and_parents_are_inverse() {
        let s = Shape::new(2, 2, 1);
        let root = s.root();
        for ch in root.children() {
            assert_eq!(ch.rank() + 1, root.rank());
            assert!(ch.parents().contains(&root));
            assert!(root.child_column(&ch).is_some());
        }
        let trivial = s.trivial();
        assert!(trivial.children().is_empty());
        for par in trivial.parents() {
            assert_eq!(par.rank(), 1);
            assert!(par.children().contains(&trivial));
        }
    }

    #[test]
    fn child_column_identifies_decrement() {
        let s = Shape::new(2, 2, 1);
        let pat = Pattern::new(&s, vec![3, 6]).unwrap();
        let child = Pattern::new(&s, vec![3, 5]).unwrap();
        assert_eq!(pat.child_column(&child), Some(1));
        let not_child = Pattern::new(&s, vec![2, 5]).unwrap();
        assert_eq!(pat.child_column(&not_child), None);
        assert_eq!(pat.child_column(&pat), None);
    }

    #[test]
    fn pivot_residues_distinct_for_valid_patterns() {
        let s = Shape::new(2, 2, 2);
        // Enumerate some valid patterns and check the residue claim that
        // the special plane construction relies on.
        for b1 in 1..=8 {
            for b2 in (b1 + 1)..=8 {
                if let Some(pat) = Pattern::new(&s, vec![b1, b2]) {
                    assert_ne!(pat.pivot_residue(0), pat.pivot_residue(1), "pattern {pat}");
                }
            }
        }
    }

    #[test]
    fn fig3_concatenated_form() {
        // Fig 3 of the paper: (2,2,1), root [4 7]: first column stars in
        // rows 1..4, second column rows 2..7, 10 nonzero entries.
        let s = Shape::new(2, 2, 1);
        let root = s.root();
        let text = root.concatenated_form();
        let stars = text.matches('*').count();
        let ones = text.matches('1').count();
        assert_eq!(ones, 2);
        assert_eq!(stars + ones, 10, "n + p nonzero coefficients");
        assert_eq!(text.lines().count(), 8);
    }

    #[test]
    fn shorthand_format() {
        let s = Shape::new(2, 2, 1);
        assert_eq!(s.root().shorthand(), "[4 7]");
        assert_eq!(s.trivial().shorthand(), "[1 2]");
    }

    #[test]
    fn col_degrees() {
        let s = Shape::new(2, 2, 1);
        let root = s.root(); // [4 7]
        assert_eq!(root.col_degree(0), 0); // pivot 4 in block 0
        assert_eq!(root.col_degree(1), 1); // pivot 7 in block 1
        assert_eq!(root.pivot_residue(0), 4);
        assert_eq!(root.pivot_residue(1), 3);
    }
}
