//! Coefficient-parameter continuation from a generic instance to a
//! specific one.
//!
//! Section III of the paper frames the Pieri homotopies as the way "to
//! find a general start system G(x) = 0 to be used in the homotopy (1) to
//! solve a particular problem F(x) = 0": the Pieri tree is run **once**
//! on random planes and points, and every concrete application instance
//! (e.g. the pole-placement data of an actual plant, whose planes lie on
//! a low-degree curve and are *not* in general position) is then reached
//! by one straight-line parameter homotopy
//!
//! ```text
//! det [ X(σ_i(t)) | (1−t)·γ·R_i + t·L_i ] = 0 ,   σ_i(t) = (1−t)·r_i + t·s_i ,
//! ```
//!
//! tracking the `d(m,p,q)` generic solutions from `t = 0` to `t = 1`.
//! Instance solutions lying outside the coordinate chart (improper
//! feedback laws "at infinity") show up as honestly divergent paths.

use crate::certified::certify_solution_set;
use crate::eval::CoeffLayout;
use crate::maps::PMap;
use crate::problem::PieriProblem;
use crate::scratch::CondScratch;
use pieri_certify::{Certificate, CertifyPolicy};
use pieri_linalg::{det, det_gradient, CMat};
use pieri_num::Complex64;
use pieri_tracker::{
    track_path_with, Homotopy, HomotopyScratch, PathStatus, TrackSettings, TrackStats,
    TrackWorkspace,
};

/// The instance homotopy: every condition's plane and interpolation point
/// moves from the generic start instance to the target instance.
pub struct InstanceHomotopy {
    layout: CoeffLayout,
    /// Per condition: `(γ·R_i, L_i, r_i, s_i)`.
    conditions: Vec<(CMat, CMat, Complex64, Complex64)>,
    /// Per condition: `dP/dt = L_i − γ·R_i` (loop-invariant of `dt`).
    dplanes: Vec<CMat>,
}

impl InstanceHomotopy {
    /// Builds the homotopy between two instances of the same shape.
    ///
    /// # Panics
    /// Panics when the shapes differ.
    pub fn new(start: &PieriProblem, target: &PieriProblem) -> Self {
        assert_eq!(
            start.shape(),
            target.shape(),
            "instances must share a shape"
        );
        let shape = start.shape();
        let root = shape.root();
        let layout = CoeffLayout::new(&root);
        let gamma = start.gamma();
        let conditions: Vec<(CMat, CMat, Complex64, Complex64)> = (0..shape.conditions())
            .map(|i| {
                (
                    start.plane(i).scale(gamma),
                    target.plane(i).clone(),
                    start.point(i),
                    target.point(i),
                )
            })
            .collect();
        let dplanes = conditions.iter().map(|(gr, l, _, _)| l - gr).collect();
        InstanceHomotopy {
            layout,
            conditions,
            dplanes,
        }
    }

    fn point_at(&self, i: usize, t: f64) -> (Complex64, Complex64) {
        let (_, _, r, s) = &self.conditions[i];
        (r.scale(1.0 - t) + s.scale(t), *s - *r)
    }

    fn plane_at(&self, i: usize, t: f64) -> CMat {
        let (gr, l, _, _) = &self.conditions[i];
        &gr.scale(Complex64::real(1.0 - t)) + &l.scale(Complex64::real(t))
    }

    /// Writes condition `i`'s matrix `[X(σ_i(t), 1) | P_i(t)]` into
    /// `cond`, leaving the homogenisation weights in the scratch buffers
    /// for the caller's Jacobian row. The moving plane is scale-added
    /// directly into the plane block — no intermediate matrices.
    #[allow(clippy::too_many_arguments)] // scratch buffers are split borrows
    fn build_cond(
        &self,
        i: usize,
        x: &[Complex64],
        t: f64,
        sigma: Complex64,
        slot_w: &mut [Complex64],
        top_w: &mut [Complex64],
        cond: &mut CMat,
    ) {
        let shape = self.layout.pattern().shape();
        let (n, p, m) = (shape.big_n(), shape.p(), shape.m());
        let (gr, l, _, _) = &self.conditions[i];
        let a = Complex64::real(1.0 - t);
        let b = Complex64::real(t);
        for r in 0..n {
            for c in 0..m {
                cond[(r, p + c)] = gr[(r, c)] * a + l[(r, c)] * b;
            }
        }
        self.layout
            .weights_into(sigma, Complex64::ONE, slot_w, top_w);
        self.layout.eval_map_weighted_into(x, slot_w, top_w, cond);
    }
}

impl Homotopy for InstanceHomotopy {
    fn dim(&self) -> usize {
        self.layout.dim()
    }

    fn eval(&self, x: &[Complex64], t: f64, out: &mut [Complex64]) {
        for i in 0..self.conditions.len() {
            let (sigma, _) = self.point_at(i, t);
            let a = self
                .layout
                .eval_map(x, sigma, Complex64::ONE)
                .hstack(&self.plane_at(i, t));
            out[i] = det(&a);
        }
    }

    fn jacobian_x(&self, x: &[Complex64], t: f64, out: &mut CMat) {
        let k = self.dim();
        for i in 0..self.conditions.len() {
            let (sigma, _) = self.point_at(i, t);
            let a = self
                .layout
                .eval_map(x, sigma, Complex64::ONE)
                .hstack(&self.plane_at(i, t));
            let cof = det_gradient(&a);
            for slot in 0..k {
                let w = self.layout.weight(slot, sigma, Complex64::ONE);
                out[(i, slot)] = cof[(self.layout.phys_row(slot), self.layout.col(slot))] * w;
            }
        }
    }

    fn dt(&self, x: &[Complex64], t: f64, out: &mut [Complex64]) {
        let shape = self.layout.pattern().shape();
        let p = shape.p();
        for i in 0..self.conditions.len() {
            let (sigma, dsigma) = self.point_at(i, t);
            let a = self
                .layout
                .eval_map(x, sigma, Complex64::ONE)
                .hstack(&self.plane_at(i, t));
            let cof = det_gradient(&a);
            let mut acc = Complex64::ZERO;
            // X-block: point motion (u ≡ 1 so top pivots are constant).
            for slot in 0..self.dim() {
                if x[slot] == Complex64::ZERO {
                    continue;
                }
                let wdt =
                    self.layout
                        .weight_dt(slot, sigma, Complex64::ONE, dsigma, Complex64::ZERO);
                if wdt != Complex64::ZERO {
                    acc += cof[(self.layout.phys_row(slot), self.layout.col(slot))] * x[slot] * wdt;
                }
            }
            // Plane motion: dP/dt = L_i − γR_i, precomputed at
            // construction.
            let dm = &self.dplanes[i];
            for r in 0..shape.big_n() {
                for c in 0..shape.m() {
                    let v = dm[(r, c)];
                    if v != Complex64::ZERO {
                        acc += cof[(r, p + c)] * v;
                    }
                }
            }
            out[i] = acc;
        }
    }

    fn eval_and_jacobian(
        &self,
        x: &[Complex64],
        t: f64,
        fx: &mut [Complex64],
        jac: &mut CMat,
        scratch: &mut HomotopyScratch,
    ) {
        let k = self.dim();
        debug_assert_eq!(fx.len(), k);
        debug_assert_eq!((jac.rows(), jac.cols()), (k, k));
        let shape = self.layout.pattern().shape();
        let p = shape.p();
        let sc = scratch.get_or_insert_with(CondScratch::new);
        sc.ensure(shape.big_n(), k, p);
        // Only the p X-block cofactor columns are ever read here.
        for i in 0..self.conditions.len() {
            let (sigma, _) = self.point_at(i, t);
            self.build_cond(i, x, t, sigma, &mut sc.slot_w, &mut sc.top_w, &mut sc.cond);
            fx[i] = sc
                .engine
                .det_and_cofactor_cols_into(&sc.cond, &mut sc.cof, p);
            for slot in 0..k {
                jac[(i, slot)] =
                    sc.cof[(self.layout.phys_row(slot), self.layout.col(slot))] * sc.slot_w[slot];
            }
        }
    }

    fn jacobian_and_dt(
        &self,
        x: &[Complex64],
        t: f64,
        jac: &mut CMat,
        ht: &mut [Complex64],
        scratch: &mut HomotopyScratch,
    ) {
        let k = self.dim();
        debug_assert_eq!(ht.len(), k);
        debug_assert_eq!((jac.rows(), jac.cols()), (k, k));
        let shape = self.layout.pattern().shape();
        let p = shape.p();
        let sc = scratch.get_or_insert_with(CondScratch::new);
        sc.ensure(shape.big_n(), k, p);
        for i in 0..self.conditions.len() {
            let (sigma, dsigma) = self.point_at(i, t);
            self.build_cond(i, x, t, sigma, &mut sc.slot_w, &mut sc.top_w, &mut sc.cond);
            sc.engine.det_and_cofactor_into(&sc.cond, &mut sc.cof);
            // Jacobian row and ∂H/∂t entry from the same cofactors.
            for slot in 0..k {
                jac[(i, slot)] =
                    sc.cof[(self.layout.phys_row(slot), self.layout.col(slot))] * sc.slot_w[slot];
            }
            let mut acc = Complex64::ZERO;
            for slot in 0..k {
                if x[slot] == Complex64::ZERO {
                    continue;
                }
                let wdt =
                    self.layout
                        .weight_dt(slot, sigma, Complex64::ONE, dsigma, Complex64::ZERO);
                if wdt != Complex64::ZERO {
                    acc +=
                        sc.cof[(self.layout.phys_row(slot), self.layout.col(slot))] * x[slot] * wdt;
                }
            }
            let dm = &self.dplanes[i];
            for r in 0..shape.big_n() {
                for c in 0..shape.m() {
                    let v = dm[(r, c)];
                    if v != Complex64::ZERO {
                        acc += sc.cof[(r, p + c)] * v;
                    }
                }
            }
            ht[i] = acc;
        }
    }
}

/// Result of continuing a generic solution set to a target instance.
#[derive(Debug)]
pub struct InstanceContinuation {
    /// Solution maps of the target instance.
    pub maps: Vec<PMap>,
    /// Coefficient vectors of the target solutions (root-pattern chart).
    pub coeffs: Vec<Vec<Complex64>>,
    /// Paths that diverged — target solutions at infinity (e.g. improper
    /// feedback laws).
    pub diverged: usize,
    /// Paths that failed numerically.
    pub failed: usize,
    /// Aggregate tracking statistics over all continuation paths (the
    /// per-job diagnostics the batch service reports).
    pub stats: TrackStats,
    /// One certificate per entry of `coeffs`/`maps`, in order — filled
    /// by [`continue_to_instance_certified`], empty otherwise.
    pub certificates: Vec<Certificate>,
    /// The run was cut short by a [`pieri_tracker::cancel`] scope at a
    /// path boundary: `maps`/`coeffs` hold only the paths finished
    /// before the stop (never a half-tracked path) and certification
    /// was skipped. Callers that cannot use a partial set (the service)
    /// turn this into a structured error.
    pub cancelled: bool,
}

/// Tracks all solutions of the generic `start` instance to the `target`
/// instance. `start_coeffs` are the root-pattern coefficient vectors
/// produced by [`crate::solve`] on `start`.
pub fn continue_to_instance(
    start: &PieriProblem,
    start_coeffs: &[Vec<Complex64>],
    target: &PieriProblem,
    settings: &TrackSettings,
) -> InstanceContinuation {
    continue_to_instance_certified(start, start_coeffs, target, settings, &CertifyPolicy::off())
}

/// [`continue_to_instance`] with a [`CertifyPolicy`]: failed paths are
/// re-tracked per `policy.retrack`, converged endpoints are certified
/// against the target conditions and (per policy) double-double-refined
/// in place, with one [`Certificate`] per shipped solution.
///
/// [`CertifyPolicy::off`] reproduces the uncertified behaviour exactly.
pub fn continue_to_instance_certified(
    start: &PieriProblem,
    start_coeffs: &[Vec<Complex64>],
    target: &PieriProblem,
    settings: &TrackSettings,
    policy: &CertifyPolicy,
) -> InstanceContinuation {
    let h = InstanceHomotopy::new(start, target);
    let root = start.shape().root();
    let track_settings = policy.effective_settings(settings);
    let mut coeffs = Vec::new();
    let mut diverged = 0;
    let mut failed = 0;
    let mut stats = TrackStats::default();
    // One workspace across all d(m,p,q) continuation paths. The
    // cancellation check sits at the path boundary: a lapsed deadline
    // stops the run before the next path starts, so a cancelled result
    // never contains a half-tracked solution.
    let mut ws = TrackWorkspace::new();
    let mut cancelled = false;
    for x0 in start_coeffs {
        if pieri_tracker::cancel::active_cancelled() {
            cancelled = true;
            break;
        }
        let r = track_path_with(&h, x0, &track_settings, &mut ws);
        stats.record(&r);
        match r.status {
            PathStatus::Converged => coeffs.push(r.x),
            PathStatus::Diverged { .. } => diverged += 1,
            PathStatus::Failed { .. } => failed += 1,
        }
    }
    // Certify + refine the shipped endpoints (refinement updates the
    // coefficient vectors in place; maps are built from the refined
    // values). A cancelled run is abandoned work — skip certification.
    let certificates = if cancelled {
        Vec::new()
    } else {
        certify_solution_set(target, &mut coeffs, policy)
    };
    let maps = coeffs.iter().map(|x| PMap::from_coeffs(&root, x)).collect();
    InstanceContinuation {
        maps,
        coeffs,
        diverged,
        failed,
        stats,
        certificates,
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Shape;
    use crate::problem::PieriProblem;
    use pieri_num::seeded_rng;

    #[test]
    fn generic_to_generic_preserves_solution_count() {
        let mut rng = seeded_rng(350);
        let shape = Shape::new(2, 2, 0);
        let start = PieriProblem::random(shape.clone(), &mut rng);
        let target = PieriProblem::random(shape.clone(), &mut rng);
        let sol = crate::solver::solve(&start);
        assert_eq!(sol.maps.len(), 2);
        let cont = continue_to_instance(&start, &sol.coeffs, &target, &TrackSettings::default());
        assert_eq!(
            cont.maps.len(),
            2,
            "diverged={} failed={}",
            cont.diverged,
            cont.failed
        );
        for m in &cont.maps {
            assert!(m.max_residual(&target) < 1e-7);
        }
        // The two targets are distinct solutions.
        assert!(cont.maps[0].dist(&cont.maps[1]) > 1e-5);
    }

    #[test]
    fn instance_homotopy_derivatives_match_finite_differences() {
        let mut rng = seeded_rng(351);
        let shape = Shape::new(2, 2, 1);
        let start = PieriProblem::random(shape.clone(), &mut rng);
        let target = PieriProblem::random(shape.clone(), &mut rng);
        let h = InstanceHomotopy::new(&start, &target);
        let k = h.dim();
        let x: Vec<Complex64> = (0..k)
            .map(|_| pieri_num::random_complex(&mut rng))
            .collect();
        let t = 0.3;
        // dt check.
        let mut an = vec![Complex64::ZERO; k];
        h.dt(&x, t, &mut an);
        let step = 1e-7;
        let mut fp = vec![Complex64::ZERO; k];
        let mut fm = vec![Complex64::ZERO; k];
        h.eval(&x, t + step, &mut fp);
        h.eval(&x, t - step, &mut fm);
        for i in 0..k {
            let fd = (fp[i] - fm[i]) / (2.0 * step);
            assert!(fd.dist(an[i]) < 1e-5 * (1.0 + an[i].norm()), "row {i}");
        }
        // jacobian check.
        let mut jac = CMat::zeros(k, k);
        h.jacobian_x(&x, t, &mut jac);
        let mut f0 = vec![Complex64::ZERO; k];
        h.eval(&x, t, &mut f0);
        for c in 0..k {
            let mut xp = x.clone();
            xp[c] += Complex64::real(step);
            let mut f1 = vec![Complex64::ZERO; k];
            h.eval(&xp, t, &mut f1);
            for r in 0..k {
                let fd = (f1[r] - f0[r]) / step;
                assert!(
                    fd.dist(jac[(r, c)]) < 1e-5 * (1.0 + jac[(r, c)].norm()),
                    "J[{r},{c}]"
                );
            }
        }
    }

    #[test]
    fn cancelled_scope_stops_between_paths_with_no_partial_results() {
        let mut rng = seeded_rng(353);
        let shape = Shape::new(2, 2, 0);
        let start = PieriProblem::random(shape.clone(), &mut rng);
        let target = PieriProblem::random(shape.clone(), &mut rng);
        let sol = crate::solver::solve(&start);

        // Flag raised before the run: the boundary check fires before
        // path 0, so the solver tracks nothing at all.
        let token = pieri_tracker::CancelToken::new();
        token.cancel();
        let cont = pieri_tracker::cancel::scope(&token, || {
            continue_to_instance(&start, &sol.coeffs, &target, &TrackSettings::default())
        });
        assert!(cont.cancelled);
        assert_eq!(cont.stats.total(), 0, "no path was started");
        assert!(cont.maps.is_empty() && cont.coeffs.is_empty());
        assert!(cont.certificates.is_empty(), "certification skipped");

        // A lapsed deadline behaves identically — and outside any
        // scope the same run is unaffected.
        let expired = pieri_tracker::CancelToken::with_deadline(std::time::Instant::now());
        let cont = pieri_tracker::cancel::scope(&expired, || {
            continue_to_instance(&start, &sol.coeffs, &target, &TrackSettings::default())
        });
        assert!(cont.cancelled && cont.coeffs.is_empty());
        let cont = continue_to_instance(&start, &sol.coeffs, &target, &TrackSettings::default());
        assert!(!cont.cancelled);
        assert_eq!(cont.maps.len(), 2);
    }

    #[test]
    fn reuse_one_start_system_for_many_instances() {
        // The paper's stated workflow: one generic Pieri solve, many
        // parameter continuations.
        let mut rng = seeded_rng(352);
        let shape = Shape::new(2, 2, 0);
        let start = PieriProblem::random(shape.clone(), &mut rng);
        let sol = crate::solver::solve(&start);
        for _ in 0..3 {
            let target = PieriProblem::random(shape.clone(), &mut rng);
            let cont =
                continue_to_instance(&start, &sol.coeffs, &target, &TrackSettings::default());
            assert_eq!(cont.maps.len(), 2);
        }
    }
}
