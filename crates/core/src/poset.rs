//! The bottom-children poset (Fig. 4) and the chain counts behind the
//! Pieri tree (Fig. 5).

use crate::pattern::{Pattern, Shape};
use std::collections::HashMap;

/// Per-level profile of the Pieri tree: how many path-tracking jobs run at
/// each level. This regenerates the "#paths" column of Table III.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelProfile {
    /// `widths[k]` = number of tree nodes at level `k` (chains of length
    /// `k` extendable to the root); `widths[0] == 1` is the trivial
    /// pattern, `widths[n]` = the root count.
    pub widths: Vec<u128>,
}

impl LevelProfile {
    /// Total number of path-tracking jobs: `Σ_{k≥1} widths[k]`.
    pub fn total_jobs(&self) -> u128 {
        self.widths.iter().skip(1).sum()
    }

    /// The number of solutions `d(m,p,q)` (width of the last level).
    pub fn root_count(&self) -> u128 {
        *self.widths.last().expect("non-empty profile")
    }
}

/// The poset of localization patterns that are co-reachable to the root,
/// graded by rank.
///
/// Fig. 4 of the paper counts the solution planes through this poset:
/// the number of maps fitting a pattern `b` and meeting `rank(b)` general
/// planes equals the sum over the bottom children of `b` — i.e. the number
/// of saturated chains from the trivial pattern up to `b`. The Pieri
/// *tree* of Fig. 5 unfolds these chains; its per-level widths are the job
/// counts of the parallel algorithm.
#[derive(Debug, Clone)]
pub struct Poset {
    shape: Shape,
    /// All co-reachable patterns, grouped by rank.
    levels: Vec<Vec<Pattern>>,
    /// Chain counts `d(b)` = #chains trivial → `b`.
    chains: HashMap<Vec<usize>, u128>,
}

impl Poset {
    /// Builds the poset for a shape by descending from the root pattern
    /// through all bottom children, then counting chains bottom-up.
    pub fn build(shape: &Shape) -> Poset {
        let n = shape.conditions();
        let root = shape.root();
        // Descend from the root: co-reachable set.
        let mut levels: Vec<Vec<Pattern>> = vec![Vec::new(); n + 1];
        let mut seen: HashMap<Vec<usize>, ()> = HashMap::new();
        let mut frontier = vec![root.clone()];
        seen.insert(root.pivots().to_vec(), ());
        levels[n].push(root);
        for k in (1..=n).rev() {
            let mut next = Vec::new();
            for pat in frontier.drain(..) {
                for ch in pat.children() {
                    if !seen.contains_key(ch.pivots()) {
                        seen.insert(ch.pivots().to_vec(), ());
                        levels[k - 1].push(ch.clone());
                        next.push(ch);
                    }
                }
            }
            frontier = next;
        }
        // Chain counts, bottom-up: d(trivial) = 1; d(b) = Σ d(children).
        let mut chains: HashMap<Vec<usize>, u128> = HashMap::new();
        let trivial = shape.trivial();
        debug_assert!(
            levels[0].contains(&trivial),
            "trivial pattern must be co-reachable"
        );
        chains.insert(trivial.pivots().to_vec(), 1);
        for k in 1..=n {
            for pat in &levels[k] {
                let total: u128 = pat
                    .children()
                    .iter()
                    .map(|c| chains.get(c.pivots()).copied().unwrap_or(0))
                    .sum();
                chains.insert(pat.pivots().to_vec(), total);
            }
        }
        Poset {
            shape: shape.clone(),
            levels,
            chains,
        }
    }

    /// The shape this poset belongs to.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Patterns of rank `k` (co-reachable to the root).
    pub fn level(&self, k: usize) -> &[Pattern] {
        &self.levels[k]
    }

    /// Number of poset levels (= `n + 1`).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total number of poset nodes.
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Chain count `d(b)` — the number of solutions fitting pattern `b`
    /// (0 for patterns outside the poset).
    pub fn chain_count(&self, pat: &Pattern) -> u128 {
        self.chains.get(pat.pivots()).copied().unwrap_or(0)
    }

    /// The root count `d(m,p,q)` — the number of feedback laws.
    pub fn root_count(&self) -> u128 {
        self.chain_count(&self.shape.root())
    }

    /// Per-level tree widths (job counts per level).
    pub fn level_profile(&self) -> LevelProfile {
        let widths = self
            .levels
            .iter()
            .map(|lvl| lvl.iter().map(|p| self.chain_count(p)).sum())
            .collect();
        LevelProfile { widths }
    }

    /// True when the pattern belongs to the poset.
    pub fn contains(&self, pat: &Pattern) -> bool {
        self.chains.contains_key(pat.pivots())
    }

    /// Parents of `pat` that lie inside the poset — the upward tree edges
    /// the parallel master expands.
    pub fn parents_in_poset(&self, pat: &Pattern) -> Vec<Pattern> {
        pat.parents()
            .into_iter()
            .filter(|p| self.contains(p))
            .collect()
    }
}

/// Exact root count `d(m, p, q)` — the number of feedback laws for a
/// machine with `m` inputs, `p` outputs and a degree-`q` compensator.
pub fn root_count(m: usize, p: usize, q: usize) -> u128 {
    Poset::build(&Shape::new(m, p, q)).root_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_root_counts_mp22() {
        // Table IV of the paper, (m,p) = (2,2): 2, 8, 32, 128.
        assert_eq!(root_count(2, 2, 0), 2);
        assert_eq!(root_count(2, 2, 1), 8);
        assert_eq!(root_count(2, 2, 2), 32);
        assert_eq!(root_count(2, 2, 3), 128);
    }

    #[test]
    fn table_iv_root_counts_mp32() {
        // (m,p) = (3,2): 5, 55, 610, 6765 (odd-indexed Fibonacci numbers).
        assert_eq!(root_count(3, 2, 0), 5);
        assert_eq!(root_count(3, 2, 1), 55);
        assert_eq!(root_count(3, 2, 2), 610);
        assert_eq!(root_count(3, 2, 3), 6765);
    }

    #[test]
    fn table_iv_root_counts_mp33() {
        // (m,p) = (3,3): 42, 2730, 174762. The paper's text (as OCR'd)
        // prints "17462" for q = 2, but every other Table IV cell matches
        // our exact chain count digit-for-digit and the (3,3,q) sequence
        // in Huber–Verschelde (SIAM J. Control Optim. 38(4), 2000) is
        // 42, 2730, 174762 — the provided text dropped a '7'.
        assert_eq!(root_count(3, 3, 0), 42);
        assert_eq!(root_count(3, 3, 1), 2730);
        assert_eq!(root_count(3, 3, 2), 174_762);
    }

    #[test]
    fn table_iv_root_counts_mp43_and_44() {
        // (m,p) = (4,3): 462, 135660 ; (4,4): 24024.
        assert_eq!(root_count(4, 3, 0), 462);
        assert_eq!(root_count(4, 3, 1), 135_660);
        assert_eq!(root_count(4, 4, 0), 24_024);
    }

    #[test]
    fn duality_m_p_symmetry() {
        // d(m,p,q) = d(p,m,q) by Grassmannian duality.
        for &(m, p, q) in &[(2, 3, 1), (2, 4, 0), (3, 4, 0), (2, 3, 2)] {
            assert_eq!(root_count(m, p, q), root_count(p, m, q), "({m},{p},{q})");
        }
    }

    #[test]
    fn q0_counts_are_syt_of_rectangles() {
        // For q = 0 the chains are standard Young tableaux of the p × m
        // rectangle: d = (mp)! · ∏_{i=0}^{p−1} i! / (m+i)!.
        let syt = |m: usize, p: usize| -> u128 {
            let mut num: u128 = 1;
            for k in 1..=(m * p) {
                num *= k as u128;
            }
            let mut den: u128 = 1;
            for i in 0..p {
                for k in 1..=(m + i) {
                    den *= k as u128;
                }
                for k in 1..=i {
                    num *= k as u128;
                }
            }
            num / den
        };
        for &(m, p) in &[(2, 2), (3, 2), (3, 3), (4, 3), (4, 4), (5, 2)] {
            assert_eq!(root_count(m, p, 0), syt(m, p), "({m},{p})");
        }
    }

    #[test]
    fn fig4_poset_for_221() {
        // Fig 4: the (2,2,1) poset has 12 nodes, one per level 0 and 8,
        // and the counts along the chain 1,1,2,4,8 appear.
        let poset = Poset::build(&Shape::new(2, 2, 1));
        assert_eq!(poset.node_count(), 12);
        assert_eq!(poset.level(0).len(), 1);
        assert_eq!(poset.level(8).len(), 1);
        assert_eq!(poset.root_count(), 8);
    }

    #[test]
    fn table_iii_level_profile_231() {
        // Table III: (m,p,q) = (2,3,1): per-level job counts
        // 1,2,3,5,8,13,21,34,55,55,55 summing to 252.
        let poset = Poset::build(&Shape::new(2, 3, 1));
        let profile = poset.level_profile();
        assert_eq!(
            profile.widths,
            vec![1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 55, 55]
        );
        assert_eq!(profile.total_jobs(), 252);
        assert_eq!(profile.root_count(), 55);
    }

    #[test]
    fn level_profile_starts_at_one_and_is_positive() {
        for &(m, p, q) in &[(2, 2, 1), (3, 2, 0), (2, 3, 1), (3, 3, 0)] {
            let profile = Poset::build(&Shape::new(m, p, q)).level_profile();
            assert_eq!(profile.widths[0], 1);
            assert!(profile.widths.iter().all(|&w| w > 0), "({m},{p},{q})");
        }
    }

    #[test]
    fn fig5_tree_for_221_levels_match_fig4_counts() {
        // Fig 4 annotates the (2,2,1) poset chains with 1,2,4,8; the
        // corresponding tree widths per level are 1,1,2,2,4,4,8,8,8.
        let profile = Poset::build(&Shape::new(2, 2, 1)).level_profile();
        assert_eq!(profile.widths, vec![1, 1, 2, 2, 4, 4, 8, 8, 8]);
        assert_eq!(profile.root_count(), 8);
        assert_eq!(profile.total_jobs(), 37);
    }

    #[test]
    fn parents_in_poset_filter() {
        let shape = Shape::new(2, 2, 1);
        let poset = Poset::build(&shape);
        let trivial = shape.trivial();
        let ups = poset.parents_in_poset(&trivial);
        // Fig 5: from [1 2] the tree branches to [1 3] only ([2 2] is
        // invalid); level-1 width is 1.
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].pivots(), &[1, 3]);
    }

    #[test]
    fn chain_count_outside_poset_is_zero() {
        let shape = Shape::new(2, 2, 1);
        let poset = Poset::build(&shape);
        // [1 2] has rank 0; a valid pattern NOT co-reachable would report
        // 0. All valid (2,2,1) patterns happen to be co-reachable, so use
        // a different shape's pattern via raw pivot lookup instead.
        let other = Shape::new(2, 2, 2);
        let foreign = Pattern::new(&other, vec![7, 8]).unwrap();
        assert_eq!(poset.chain_count(&foreign), 0);
    }
}
