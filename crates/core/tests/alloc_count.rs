//! Steady-state tracking must not allocate per step.
//!
//! A counting global allocator wraps the system allocator; after one
//! warm-up path has grown every buffer of the shared [`TrackWorkspace`]
//! (and the homotopy's scratch inside it), tracking the same Pieri path
//! again must perform only a small constant number of allocations —
//! independent of the hundreds of predictor/corrector steps the path
//! takes. The only expected allocations are the returned `PathResult::x`
//! clone and the embedding of the start solution; a per-step or
//! per-Newton-iteration allocation would scale with `steps` and blow the
//! bound immediately.
//!
//! This file deliberately contains a single test: the counter is global,
//! and a concurrently running test would pollute it.

use pieri_core::{CoeffLayout, PieriHomotopy, PieriProblem, Shape};
use pieri_num::seeded_rng;
use pieri_tracker::{track_path_with, TrackSettings, TrackWorkspace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: a pure pass-through to the System allocator plus a relaxed
// counter bump — every GlobalAlloc contract obligation (layout fidelity,
// no unwinding, no reentrant allocation) is delegated unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller contract is forwarded verbatim to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller contract is forwarded verbatim to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from the caller's matching alloc.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller contract is forwarded verbatim to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` come from the caller's matching alloc.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Tracks one converging path twice through the same workspace and
/// returns `(first, second, allocations during the second run)`.
fn measure<H: pieri_tracker::Homotopy + ?Sized>(
    h: &H,
    x0: &[pieri_num::Complex64],
    settings: &TrackSettings,
    ws: &mut TrackWorkspace,
) -> (pieri_tracker::PathResult, pieri_tracker::PathResult, usize) {
    let warm = track_path_with(h, x0, settings, ws);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let again = track_path_with(h, x0, settings, ws);
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    (warm, again, during)
}

#[test]
fn steady_state_tracking_does_not_allocate_per_step() {
    let mut rng = seeded_rng(960);
    let shape = Shape::new(2, 2, 1);
    let start = PieriProblem::random(shape.clone(), &mut rng);
    let target = PieriProblem::random(shape.clone(), &mut rng);
    let solution = pieri_core::solve(&start);
    assert_eq!(solution.failures, 0);
    let settings = TrackSettings::default();
    let mut ws = TrackWorkspace::new();

    // A genuine full-rank converging path: the instance continuation of
    // one generic root solution (dim 8, dozens of steps).
    let instance = pieri_core::InstanceHomotopy::new(&start, &target);
    let (warm, again, during) = measure(&instance, &solution.coeffs[0], &settings, &mut ws);
    assert!(warm.status.is_converged(), "{:?}", warm.status);
    assert_eq!(warm.x, again.x, "reuse does not change the result");
    assert!(
        again.steps >= 10,
        "path long enough to expose per-step allocation (steps={})",
        again.steps
    );
    // Expected: the PathResult::x clone plus a handful of terminal
    // bookkeeping allocations — far below one per step. (Each step runs
    // ≥ 1 fused Newton iteration and 4 tangent solves; one allocation
    // per step would exceed the bound several times over.)
    assert!(
        during <= 8,
        "steady-state track_path_with allocated {during} times over \
         {} steps / {} newton iters — the hot path is allocating",
        again.steps,
        again.newton_iters
    );

    // A genuine Pieri tree job (level 1: child is the trivial pattern,
    // whose solution is the empty vector) through the *same* workspace.
    let level1 = pieri_core::Poset::build(&shape)
        .level(1)
        .first()
        .expect("level 1 is non-empty")
        .clone();
    let homotopy = PieriHomotopy::new(&start, &level1);
    let trivial_layout = CoeffLayout::new(&shape.trivial());
    let x0 = homotopy.layout().embed_child(&trivial_layout, &[]);
    let (warm, again, during) = measure(&homotopy, &x0, &settings, &mut ws);
    assert!(warm.status.is_converged(), "{:?}", warm.status);
    assert_eq!(warm.x, again.x);
    assert!(
        during <= 8,
        "steady-state Pieri job allocated {during} times over {} steps",
        again.steps
    );
}
