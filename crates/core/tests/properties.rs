//! Property-based tests of the Schubert combinatorics and the homotopy
//! layer invariants.

use pieri_core::{CoeffLayout, Pattern, PieriProblem, Poset, Shape};
use pieri_num::{random_complex, seeded_rng, Complex64};
use proptest::prelude::*;

/// Strategy over small shapes (kept small enough that poset construction
/// stays in microseconds).
fn shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=4, 1usize..=4, 0usize..=2)
        .prop_filter("bounded size", |&(m, p, q)| m * p + q * (m + p) <= 14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The root pattern always has rank n and the trivial pattern rank 0.
    #[test]
    fn root_and_trivial_ranks((m, p, q) in shapes()) {
        let shape = Shape::new(m, p, q);
        prop_assert_eq!(shape.root().rank(), shape.conditions());
        prop_assert_eq!(shape.trivial().rank(), 0);
        prop_assert!(shape.root().is_valid());
    }

    /// Chain counts satisfy the defining recursion d(b) = Σ d(children).
    #[test]
    fn chain_counts_satisfy_recursion((m, p, q) in shapes()) {
        let shape = Shape::new(m, p, q);
        let poset = Poset::build(&shape);
        for k in 1..poset.num_levels() {
            for pat in poset.level(k) {
                let children_sum: u128 = pat
                    .children()
                    .iter()
                    .map(|c| poset.chain_count(c))
                    .sum();
                prop_assert_eq!(poset.chain_count(pat), children_sum, "{}", pat);
            }
        }
    }

    /// Level widths are monotone in the upward direction until the
    /// maximum and the profile totals are consistent.
    #[test]
    fn level_profile_consistency((m, p, q) in shapes()) {
        let shape = Shape::new(m, p, q);
        let poset = Poset::build(&shape);
        let profile = poset.level_profile();
        prop_assert_eq!(profile.widths.len(), shape.conditions() + 1);
        prop_assert_eq!(profile.widths[0], 1u128);
        prop_assert_eq!(profile.root_count(), poset.root_count());
        // Each width is at most p times the previous (≤ p parents per
        // node) and at least ... bounded below by monotone root flow.
        for k in 1..profile.widths.len() {
            prop_assert!(profile.widths[k] <= profile.widths[k - 1] * p as u128,
                "level {} width jump", k);
            prop_assert!(profile.widths[k] >= 1);
        }
    }

    /// Grassmannian duality: d(m,p,q) = d(p,m,q).
    #[test]
    fn duality((m, p, q) in shapes()) {
        prop_assert_eq!(
            pieri_core::root_count(m, p, q),
            pieri_core::root_count(p, m, q)
        );
    }

    /// Children and parents are mutually inverse within validity.
    #[test]
    fn children_parents_inverse((m, p, q) in shapes(), level_frac in 0.0f64..1.0) {
        let shape = Shape::new(m, p, q);
        let poset = Poset::build(&shape);
        let k = ((poset.num_levels() - 1) as f64 * level_frac) as usize;
        for pat in poset.level(k) {
            for ch in pat.children() {
                prop_assert!(ch.parents().contains(pat));
                prop_assert_eq!(ch.rank() + 1, pat.rank());
            }
            for par in pat.parents() {
                prop_assert!(par.children().contains(pat));
            }
        }
    }

    /// Pivot residues of valid patterns are pairwise distinct (the
    /// property the special plane M_F relies on).
    #[test]
    fn residues_distinct((m, p, q) in shapes()) {
        let shape = Shape::new(m, p, q);
        let poset = Poset::build(&shape);
        for k in 0..poset.num_levels() {
            for pat in poset.level(k) {
                let res: Vec<usize> = (0..p).map(|j| pat.pivot_residue(j)).collect();
                let mut sorted = res.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), p, "pattern {}", pat);
            }
        }
    }

    /// Embedding a child solution preserves the evaluated plane at u = 1.
    #[test]
    fn embedding_preserves_plane((m, p, q) in shapes(), seed in 0u64..500) {
        let shape = Shape::new(m, p, q);
        let root = shape.root();
        let layout = CoeffLayout::new(&root);
        let mut rng = seeded_rng(seed);
        for child in root.children() {
            let lc = CoeffLayout::new(&child);
            let y: Vec<Complex64> = (0..lc.dim()).map(|_| random_complex(&mut rng)).collect();
            let x = layout.embed_child(&lc, &y);
            let s = random_complex(&mut rng);
            let a = layout.eval_map(&x, s, Complex64::ONE);
            let b = lc.eval_map(&y, s, Complex64::ONE);
            let diff = (&a - &b).fro_norm();
            prop_assert!(diff < 1e-12, "child {} diff {}", child, diff);
        }
    }
}

/// Deterministic spot-checks that don't fit the proptest strategies.
#[test]
fn special_plane_det_identity_across_poset() {
    // det [X(1,0) | M_F] vanishes iff a bottom-pivot coefficient is zero,
    // for every pattern of the (2,2,1) poset with rank ≥ 1.
    let shape = Shape::new(2, 2, 1);
    let poset = Poset::build(&shape);
    let mut rng = seeded_rng(77);
    for k in 1..poset.num_levels() {
        for pat in poset.level(k) {
            let layout = CoeffLayout::new(pat);
            let mf = pieri_core::special_plane(pat);
            let x: Vec<Complex64> = (0..layout.dim())
                .map(|_| random_complex(&mut rng))
                .collect();
            let a = layout
                .eval_map(&x, Complex64::ONE, Complex64::ZERO)
                .hstack(&mf);
            let d = pieri_linalg::det(&a);
            // Generic coefficients: the determinant is the product of the
            // pivot entries (nonzero) unless a pivot slot is the
            // normalised top pivot itself.
            assert!(
                d.norm() > 1e-12,
                "pattern {pat}: generic pivots must give det ≠ 0"
            );
        }
    }
}

#[test]
fn full_solve_respects_all_poset_shapes() {
    // Solve every shape with n ≤ 6 completely and verify counts.
    for (m, p, q) in [
        (1usize, 1usize, 2usize),
        (2, 1, 1),
        (1, 3, 0),
        (3, 1, 0),
        (2, 2, 0),
    ] {
        let shape = Shape::new(m, p, q);
        if shape.conditions() > 6 {
            continue;
        }
        let mut rng = seeded_rng(800 + (10 * m + p) as u64);
        let problem = PieriProblem::random(shape.clone(), &mut rng);
        let sol = pieri_core::solve(&problem);
        let poset = Poset::build(&shape);
        assert_eq!(sol.maps.len() as u128, poset.root_count(), "({m},{p},{q})");
        assert_eq!(sol.failures, 0, "({m},{p},{q})");
        assert!(sol.max_residual(&problem) < 1e-7, "({m},{p},{q})");
    }
}

#[test]
fn patterns_reject_malformed_pivots() {
    let shape = Shape::new(2, 2, 1);
    // Too few pivots, duplicate pivots, reversed, over cap.
    assert!(Pattern::new(&shape, vec![3]).is_none());
    assert!(Pattern::new(&shape, vec![3, 3]).is_none());
    assert!(Pattern::new(&shape, vec![4, 2]).is_none());
    assert!(Pattern::new(&shape, vec![1, 9]).is_none());
}
