//! Fused-vs-reference agreement for the determinantal kernels.
//!
//! The fused `eval_and_jacobian` / `jacobian_and_dt` paths of the Pieri
//! and instance homotopies must reproduce the separate reference calls
//! (`eval` + `jacobian_x` + `dt`, minor-based gradients) to 1e-12
//! relative accuracy at generic points, across random shapes and points,
//! and must degrade gracefully to the minor-expansion fallback at
//! near-singular points (i.e. at solutions, where every condition matrix
//! is singular by construction).

use pieri_core::{InstanceHomotopy, PieriHomotopy, PieriProblem, Shape};
use pieri_linalg::CMat;
use pieri_num::{random_complex, seeded_rng, Complex64};
use pieri_tracker::{Homotopy, TrackSettings, TrackWorkspace};
use proptest::prelude::*;

/// Strategy over shapes whose root homotopy stays small enough for a
/// tight test loop (`n = mp + q(m+p) ≤ 16` unknowns).
fn shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=4, 1usize..=4, 0usize..=2)
        .prop_filter("bounded size", |&(m, p, q)| m * p + q * (m + p) <= 16)
}

/// Max-norm relative agreement of two matrices.
fn mats_agree(a: &CMat, b: &CMat, tol: f64) -> bool {
    let scale = a.max_norm().max(b.max_norm()).max(1.0);
    (a - b).max_norm() <= tol * scale
}

fn vecs_agree(a: &[Complex64], b: &[Complex64], tol: f64) -> bool {
    let scale = a
        .iter()
        .chain(b.iter())
        .map(|z| z.norm())
        .fold(1.0, f64::max);
    a.iter()
        .zip(b.iter())
        .all(|(x, y)| x.dist(*y) <= tol * scale)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `eval_and_jacobian` ≡ `eval` + `jacobian_x` at generic points.
    #[test]
    fn pieri_fused_eval_jacobian_matches_reference(
        (m, p, q) in shapes(),
        seed in 0u64..1 << 16,
        t in 0.0f64..1.0,
    ) {
        let mut rng = seeded_rng(seed);
        let shape = Shape::new(m, p, q);
        let problem = PieriProblem::random(shape.clone(), &mut rng);
        let h = PieriHomotopy::new(&problem, &shape.root());
        let k = h.dim();
        let x: Vec<Complex64> = (0..k).map(|_| random_complex(&mut rng)).collect();
        let mut fx_ref = vec![Complex64::ZERO; k];
        let mut jac_ref = CMat::zeros(k, k);
        h.eval(&x, t, &mut fx_ref);
        h.jacobian_x(&x, t, &mut jac_ref);
        let mut ws = TrackWorkspace::new();
        ws.ensure(k);
        let (fx, jac, scratch) = ws.eval_buffers();
        h.eval_and_jacobian(&x, t, fx, jac, scratch);
        prop_assert!(vecs_agree(fx, &fx_ref, 1e-12), "residuals differ");
        prop_assert!(mats_agree(jac, &jac_ref, 1e-12), "Jacobians differ");
    }

    /// `jacobian_and_dt` ≡ `jacobian_x` + `dt` at generic points.
    #[test]
    fn pieri_fused_jacobian_dt_matches_reference(
        (m, p, q) in shapes(),
        seed in 0u64..1 << 16,
        t in 0.0f64..1.0,
    ) {
        let mut rng = seeded_rng(seed);
        let shape = Shape::new(m, p, q);
        let problem = PieriProblem::random(shape.clone(), &mut rng);
        let h = PieriHomotopy::new(&problem, &shape.root());
        let k = h.dim();
        let x: Vec<Complex64> = (0..k).map(|_| random_complex(&mut rng)).collect();
        let mut jac_ref = CMat::zeros(k, k);
        let mut dt_ref = vec![Complex64::ZERO; k];
        h.jacobian_x(&x, t, &mut jac_ref);
        h.dt(&x, t, &mut dt_ref);
        let mut jac = CMat::zeros(k, k);
        let mut ht = vec![Complex64::ZERO; k];
        let mut ws = TrackWorkspace::new();
        ws.ensure(k);
        let (_, _, scratch) = ws.eval_buffers();
        h.jacobian_and_dt(&x, t, &mut jac, &mut ht, scratch);
        prop_assert!(mats_agree(&jac, &jac_ref, 1e-12), "Jacobians differ");
        prop_assert!(vecs_agree(&ht, &dt_ref, 1e-12), "dt rows differ");
    }

    /// The instance homotopy's fused kernels match its reference calls.
    #[test]
    fn instance_fused_kernels_match_reference(
        (m, p, q) in shapes(),
        seed in 0u64..1 << 16,
        t in 0.0f64..1.0,
    ) {
        let mut rng = seeded_rng(seed);
        let shape = Shape::new(m, p, q);
        let start = PieriProblem::random(shape.clone(), &mut rng);
        let target = PieriProblem::random(shape.clone(), &mut rng);
        let h = InstanceHomotopy::new(&start, &target);
        let k = h.dim();
        let x: Vec<Complex64> = (0..k).map(|_| random_complex(&mut rng)).collect();
        let mut fx_ref = vec![Complex64::ZERO; k];
        let mut jac_ref = CMat::zeros(k, k);
        let mut dt_ref = vec![Complex64::ZERO; k];
        h.eval(&x, t, &mut fx_ref);
        h.jacobian_x(&x, t, &mut jac_ref);
        h.dt(&x, t, &mut dt_ref);
        let mut ws = TrackWorkspace::new();
        ws.ensure(k);
        let (fx, jac, scratch) = ws.eval_buffers();
        h.eval_and_jacobian(&x, t, fx, jac, scratch);
        prop_assert!(vecs_agree(fx, &fx_ref, 1e-12), "residuals differ");
        prop_assert!(mats_agree(jac, &jac_ref, 1e-12), "Jacobians differ");
        let mut jac2 = CMat::zeros(k, k);
        let mut ht = vec![Complex64::ZERO; k];
        h.jacobian_and_dt(&x, t, &mut jac2, &mut ht, scratch);
        prop_assert!(mats_agree(&jac2, &jac_ref, 1e-12), "Jacobians differ (dt fusion)");
        prop_assert!(vecs_agree(&ht, &dt_ref, 1e-12), "dt rows differ");
    }
}

/// At a solution every condition matrix is singular by construction: the
/// fused path must detect the wild pivot ratios and fall back to the
/// minor expansion, still agreeing with the reference Jacobian.
#[test]
fn near_singular_jacobian_uses_the_stable_fallback() {
    let mut rng = seeded_rng(940);
    let shape = Shape::new(2, 2, 1);
    let problem = PieriProblem::random(shape.clone(), &mut rng);
    let solution = pieri_core::solve(&problem);
    assert_eq!(solution.failures, 0);
    let h = PieriHomotopy::new(&problem, &shape.root());
    let k = h.dim();
    for x in &solution.coeffs {
        // At t = 1 the moving condition is the k-th input plane: the
        // solved coefficients make all k condition matrices singular.
        let mut fx_ref = vec![Complex64::ZERO; k];
        let mut jac_ref = CMat::zeros(k, k);
        h.eval(x, 1.0, &mut fx_ref);
        h.jacobian_x(x, 1.0, &mut jac_ref);
        assert!(
            fx_ref.iter().all(|z| z.norm() < 1e-7),
            "x is a solution at t = 1"
        );
        let mut ws = TrackWorkspace::new();
        ws.ensure(k);
        let (fx, jac, scratch) = ws.eval_buffers();
        h.eval_and_jacobian(x, 1.0, fx, jac, scratch);
        let scale = jac_ref.max_norm().max(1.0);
        assert!(
            (&*jac - &jac_ref).max_norm() <= 1e-9 * scale,
            "near-singular Jacobians must agree through the fallback"
        );
        assert!(vecs_agree(fx, &fx_ref, 1e-12), "residuals agree");
    }
}

/// One workspace migrating between homotopies of different ranks and
/// shapes keeps producing correct results (scratch buffers resize), and
/// reusing a workspace does not change the tracked endpoints.
#[test]
fn workspace_migrates_across_shapes_and_ranks() {
    let mut ws = TrackWorkspace::new();
    let settings = TrackSettings::default();
    for (seed, (m, p, q)) in [(950u64, (2, 2, 0)), (951, (3, 2, 0)), (952, (2, 2, 1))] {
        let mut rng = seeded_rng(seed);
        let shape = Shape::new(m, p, q);
        let start = PieriProblem::random(shape.clone(), &mut rng);
        let target = PieriProblem::random(shape.clone(), &mut rng);
        let solution = pieri_core::solve(&start);
        assert_eq!(solution.failures, 0, "({m},{p},{q})");
        // Instance continuation of every generic root solution through
        // the *shared* workspace, against fresh-workspace references.
        let h = InstanceHomotopy::new(&start, &target);
        for x0 in &solution.coeffs {
            let shared = pieri_tracker::track_path_with(&h, x0, &settings, &mut ws);
            let fresh = pieri_tracker::track_path(&h, x0, &settings);
            assert_eq!(shared.status, fresh.status, "({m},{p},{q})");
            assert_eq!(shared.x, fresh.x, "({m},{p},{q}): bitwise equal endpoints");
        }
    }
}
