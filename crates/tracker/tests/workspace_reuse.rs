//! Workspace-threaded entry points must be drop-in replacements: same
//! outcomes, bitwise-identical iterates, across reuse and dimension
//! changes.

use pieri_num::{random_gamma, seeded_rng, Complex64};
use pieri_poly::{Poly, PolySystem};
use pieri_tracker::{
    newton_correct, newton_correct_with, track_path, track_path_with, LinearHomotopy, Predictor,
    TrackSettings, TrackWorkspace,
};

fn c(re: f64, im: f64) -> Complex64 {
    Complex64::new(re, im)
}

/// x^d − 1 deformed to a random degree-d target.
fn setup(d: usize, seed: u64) -> (LinearHomotopy, Vec<Vec<Complex64>>) {
    let mut rng = seeded_rng(seed);
    let x = Poly::var(1, 0);
    let mut start_p = x.pow(d as u32);
    start_p = start_p.sub(&Poly::constant(1, Complex64::ONE));
    let roots: Vec<Complex64> = (0..d)
        .map(|_| pieri_num::random_complex(&mut rng))
        .collect();
    let target_uni = pieri_poly::UniPoly::from_roots(&roots);
    let mut target_p = Poly::zero(1);
    for (k, &ck) in target_uni.coeffs().iter().enumerate() {
        target_p = target_p.add(&x.pow(k as u32).scale(ck));
    }
    let h = LinearHomotopy::new(
        PolySystem::new(vec![start_p]),
        PolySystem::new(vec![target_p]),
        random_gamma(&mut rng),
    );
    let starts = (0..d)
        .map(|k| {
            vec![Complex64::from_polar(
                1.0,
                std::f64::consts::TAU * k as f64 / d as f64,
            )]
        })
        .collect();
    (h, starts)
}

#[test]
fn newton_with_workspace_matches_allocating_form() {
    let (h, _) = setup(4, 800);
    let mut ws = TrackWorkspace::new();
    for (re, im) in [(1.1, 0.2), (-0.3, 0.9), (0.01, -1.4)] {
        let mut xa = [c(re, im)];
        let mut xb = [c(re, im)];
        let a = newton_correct(&h, &mut xa, 0.7, 1e-12, 12);
        let b = newton_correct_with(&h, &mut xb, 0.7, 1e-12, 12, &mut ws);
        assert_eq!(xa, xb, "bitwise identical iterates");
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.iters, b.iters);
        assert_eq!(a.residual, b.residual);
        assert_eq!(a.last_step, b.last_step);
    }
}

#[test]
fn track_path_with_matches_track_path_bitwise() {
    let (h, starts) = setup(5, 801);
    let settings = TrackSettings::default();
    let mut ws = TrackWorkspace::new();
    for s in &starts {
        let fresh = track_path(&h, s, &settings);
        let shared = track_path_with(&h, s, &settings, &mut ws);
        assert_eq!(fresh.x, shared.x, "bitwise identical endpoints");
        assert_eq!(fresh.status, shared.status);
        assert_eq!(fresh.steps, shared.steps);
        assert_eq!(fresh.rejections, shared.rejections);
        assert_eq!(fresh.newton_iters, shared.newton_iters);
        assert_eq!(fresh.residual, shared.residual);
    }
}

#[test]
fn predict_into_matches_predict_for_all_orders() {
    let (h, starts) = setup(3, 802);
    let mut ws = TrackWorkspace::new();
    let x = &starts[0];
    let prev_x = [x[0] * c(0.99, 0.01)];
    for predictor in [
        Predictor::Secant,
        Predictor::Tangent,
        Predictor::RungeKutta4,
    ] {
        for prev in [None, Some((&prev_x[..], 0.05f64))] {
            let reference = predictor.predict(&h, x, 0.1, 0.05, prev);
            let mut out = vec![Complex64::ZERO; 1];
            let ok = predictor.predict_into(&h, x, 0.1, 0.05, prev, &mut out, &mut ws);
            match reference {
                Some(v) => {
                    assert!(ok, "{predictor:?}");
                    assert_eq!(v, out, "{predictor:?}: bitwise identical prediction");
                }
                None => assert!(!ok, "{predictor:?}"),
            }
        }
    }
}

#[test]
fn workspace_survives_dimension_changes() {
    // 1-dimensional paths, then a 2-dimensional system, then back, all
    // through one workspace: buffers resize and results stay equal to
    // the fresh-workspace references.
    let settings = TrackSettings::default();
    let mut ws = TrackWorkspace::new();
    let (h1, starts1) = setup(3, 803);
    let x = Poly::var(2, 0);
    let y = Poly::var(2, 1);
    let g2 = PolySystem::new(vec![
        x.mul(&x).sub(&Poly::constant(2, c(1.0, 0.0))),
        y.mul(&y).sub(&Poly::constant(2, c(1.0, 0.0))),
    ]);
    let f2 = PolySystem::new(vec![
        x.mul(&x).sub(&Poly::constant(2, c(4.0, 0.0))),
        y.mul(&y).sub(&Poly::constant(2, c(9.0, 0.0))),
    ]);
    let mut rng = seeded_rng(804);
    let h2 = LinearHomotopy::new(g2, f2, random_gamma(&mut rng));
    let start2 = vec![c(1.0, 0.0), c(-1.0, 0.0)];

    let a1 = track_path_with(&h1, &starts1[0], &settings, &mut ws);
    let a2 = track_path_with(&h2, &start2, &settings, &mut ws);
    let a3 = track_path_with(&h1, &starts1[1], &settings, &mut ws);
    assert_eq!(a1.x, track_path(&h1, &starts1[0], &settings).x);
    assert_eq!(a2.x, track_path(&h2, &start2, &settings).x);
    assert_eq!(a3.x, track_path(&h1, &starts1[1], &settings).x);
    assert!(a2.status.is_converged());
}
