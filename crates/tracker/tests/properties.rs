//! Property-based tests for the path tracker: against univariate targets
//! whose roots are known exactly (companion-matrix cross-check), the
//! tracker must find every root, classify deficiency honestly, and be
//! invariant to the choice of gamma and predictor.

use pieri_num::{random_complex, random_gamma, seeded_rng, Complex64};
use pieri_poly::{Poly, PolySystem, UniPoly};
use pieri_tracker::{track_all, LinearHomotopy, PathStatus, Predictor, TrackSettings};
use proptest::prelude::*;

fn univar_system(coeffs: &[Complex64]) -> PolySystem {
    let x = Poly::var(1, 0);
    let mut p = Poly::zero(1);
    for (k, &c) in coeffs.iter().enumerate() {
        p = p.add(&x.pow(k as u32).scale(c));
    }
    PolySystem::new(vec![p])
}

fn unity_starts(d: usize) -> Vec<Vec<Complex64>> {
    (0..d)
        .map(|k| {
            vec![Complex64::from_polar(
                1.0,
                std::f64::consts::TAU * k as f64 / d as f64,
            )]
        })
        .collect()
}

fn start_system(d: usize) -> PolySystem {
    let mut coeffs = vec![Complex64::ZERO; d + 1];
    coeffs[0] = Complex64::real(-1.0);
    coeffs[d] = Complex64::ONE;
    univar_system(&coeffs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All d roots of a random monic degree-d polynomial are found and
    /// agree with the companion-matrix eigenvalues.
    #[test]
    fn finds_all_roots(d in 2usize..7, seed in 0u64..5_000) {
        let mut rng = seeded_rng(seed);
        let roots: Vec<Complex64> = (0..d).map(|_| random_complex(&mut rng).scale(1.5)).collect();
        let target_uni = UniPoly::from_roots(&roots);
        let h = LinearHomotopy::new(
            start_system(d),
            univar_system(target_uni.coeffs()),
            random_gamma(&mut rng),
        );
        let (results, stats) = track_all(&h, &unity_starts(d), &TrackSettings::default());
        prop_assert_eq!(stats.converged, d, "{:?}", stats);
        // Multiset match against the prescribed roots.
        let mut found: Vec<Complex64> = results.iter().map(|r| r.x[0]).collect();
        for r in &roots {
            let (idx, dist) = found
                .iter()
                .enumerate()
                .map(|(i, f)| (i, f.dist(*r)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            prop_assert!(dist < 1e-6, "root {r:?} missed by {dist:.2e}");
            found.swap_remove(idx);
        }
    }

    /// Deficient targets: a degree-k target tracked from a degree-d > k
    /// start yields exactly k convergent and d − k divergent paths.
    #[test]
    fn deficiency_accounting(d in 3usize..6, k in 1usize..3, seed in 0u64..5_000) {
        prop_assume!(k < d);
        let mut rng = seeded_rng(seed);
        let roots: Vec<Complex64> = (0..k).map(|_| random_complex(&mut rng)).collect();
        let target_uni = UniPoly::from_roots(&roots);
        // Embed as a degree-d system with zero leading coefficients.
        let mut coeffs = target_uni.coeffs().to_vec();
        coeffs.resize(d + 1, Complex64::ZERO);
        // Poly drops the zero coefficients; pair with a degree-d start.
        let h = LinearHomotopy::new(
            start_system(d),
            univar_system(&coeffs),
            random_gamma(&mut rng),
        );
        let (results, stats) = track_all(&h, &unity_starts(d), &TrackSettings::default());
        prop_assert_eq!(stats.converged, k, "{:?}", stats);
        prop_assert_eq!(stats.diverged + stats.failed, d - k);
        for r in results.iter().filter(|r| r.status == PathStatus::Converged) {
            prop_assert!(target_uni.eval(r.x[0]).norm() < 1e-6);
        }
    }

    /// The endpoint set does not depend on gamma (as a multiset).
    #[test]
    fn gamma_invariance(seed_a in 0u64..2_000, seed_b in 2_000u64..4_000) {
        let mut rng = seeded_rng(99);
        let roots: Vec<Complex64> = (0..4).map(|_| random_complex(&mut rng)).collect();
        let target = UniPoly::from_roots(&roots);
        let mut endpoints = Vec::new();
        for seed in [seed_a, seed_b] {
            let mut grng = seeded_rng(seed);
            let h = LinearHomotopy::new(
                start_system(4),
                univar_system(target.coeffs()),
                random_gamma(&mut grng),
            );
            let (results, stats) = track_all(&h, &unity_starts(4), &TrackSettings::default());
            prop_assert_eq!(stats.converged, 4);
            let mut xs: Vec<Complex64> = results.iter().map(|r| r.x[0]).collect();
            xs.sort_by(|a, b| a.re.total_cmp(&b.re).then(a.im.total_cmp(&b.im)));
            endpoints.push(xs);
        }
        for (a, b) in endpoints[0].iter().zip(endpoints[1].iter()) {
            prop_assert!(a.dist(*b) < 1e-6);
        }
    }

    /// Predictor choice changes cost, never the answer — for targets with
    /// well-separated roots (near-colliding roots are a genuine
    /// path-jumping hazard at loose tolerances for any predictor, so the
    /// invariance claim is generic, not universal).
    #[test]
    fn predictor_invariance(seed in 0u64..2_000) {
        let mut rng = seeded_rng(seed);
        let roots: Vec<Complex64> = (0..3).map(|_| random_complex(&mut rng)).collect();
        let min_sep = (0..3)
            .flat_map(|i| (0..i).map(move |j| (i, j)))
            .map(|(i, j)| roots[i].dist(roots[j]))
            .fold(f64::INFINITY, f64::min);
        prop_assume!(min_sep > 0.3);
        let target = UniPoly::from_roots(&roots);
        let gamma = random_gamma(&mut rng);
        let mut all = Vec::new();
        for predictor in [Predictor::Secant, Predictor::Tangent, Predictor::RungeKutta4] {
            let h = LinearHomotopy::new(
                start_system(3),
                univar_system(target.coeffs()),
                gamma,
            );
            let settings = TrackSettings { predictor, ..TrackSettings::default() };
            let (results, stats) = track_all(&h, &unity_starts(3), &settings);
            prop_assert_eq!(stats.converged, 3, "{:?}", predictor);
            let mut xs: Vec<Complex64> = results.iter().map(|r| r.x[0]).collect();
            xs.sort_by(|a, b| a.re.total_cmp(&b.re).then(a.im.total_cmp(&b.im)));
            all.push(xs);
        }
        for k in 1..all.len() {
            for (a, b) in all[0].iter().zip(all[k].iter()) {
                prop_assert!(a.dist(*b) < 1e-6);
            }
        }
    }
}
