//! Tunable parameters of the adaptive tracker.

use crate::predictor::Predictor;

/// Step-size control and tolerance settings for [`crate::track_path`].
///
/// The defaults reproduce PHCpack's conservative continuation parameters
/// and track every system in this workspace's test suite reliably; the
/// benches sweep some of them (predictor order, corrector budget) as
/// ablations.
#[derive(Debug, Clone, Copy)]
pub struct TrackSettings {
    /// Predictor order.
    pub predictor: Predictor,
    /// Initial step length in `t`.
    pub initial_step: f64,
    /// Smallest permitted step; when the controller wants to go below this
    /// the path is declared failed (or diverged when the norm is large).
    pub min_step: f64,
    /// Largest permitted step.
    pub max_step: f64,
    /// Multiplier applied after [`TrackSettings::expand_after`] consecutive
    /// successful steps.
    pub expand_factor: f64,
    /// Multiplier applied after a rejected step.
    pub shrink_factor: f64,
    /// Consecutive successes required before expanding the step.
    pub expand_after: usize,
    /// Newton tolerance (on the update norm) during tracking.
    pub corrector_tol: f64,
    /// Newton iteration budget per correction during tracking; keeping it
    /// small is what makes the step-size controller adaptive.
    pub corrector_iters: usize,
    /// Newton tolerance for the final refinement at `t = 1`.
    pub final_tol: f64,
    /// Newton budget for the final refinement.
    pub final_iters: usize,
    /// `‖x‖∞` beyond which a path is declared divergent (going to a
    /// solution at infinity).
    pub divergence_threshold: f64,
    /// Hard cap on accepted + rejected steps, guarding against cycling.
    pub max_steps: usize,
    /// Distance from `t = 1` at which the tracker switches to the
    /// geometric endgame (steps halving towards 1 with a Cauchy test).
    /// Diverging paths are recognised inside this region instead of being
    /// "snapped" onto a finite root by the final Newton refinement.
    pub endgame_radius: f64,
    /// Cauchy criterion of the endgame: consecutive endgame iterates
    /// closer than `endgame_tol·(1+‖x‖)` end the path.
    pub endgame_tol: f64,
}

impl Default for TrackSettings {
    fn default() -> Self {
        TrackSettings {
            predictor: Predictor::RungeKutta4,
            initial_step: 0.05,
            min_step: 1e-10,
            max_step: 0.1,
            expand_factor: 1.5,
            shrink_factor: 0.5,
            expand_after: 3,
            corrector_tol: 1e-9,
            corrector_iters: 4,
            final_tol: 1e-12,
            final_iters: 12,
            divergence_threshold: 1e8,
            max_steps: 20_000,
            endgame_radius: 0.01,
            endgame_tol: 1e-8,
        }
    }
}

impl TrackSettings {
    /// A faster, looser profile used by large benchmark sweeps where
    /// per-path cost matters more than final polish.
    pub fn fast() -> Self {
        TrackSettings {
            predictor: Predictor::RungeKutta4,
            initial_step: 0.1,
            max_step: 0.2,
            corrector_tol: 1e-8,
            final_tol: 1e-10,
            ..TrackSettings::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = TrackSettings::default();
        assert!(s.min_step < s.initial_step && s.initial_step <= s.max_step);
        assert!(s.shrink_factor < 1.0 && s.expand_factor > 1.0);
        assert!(s.corrector_tol > s.final_tol);
        assert!(s.endgame_radius > 0.0 && s.endgame_radius < 0.5);
    }
}
