//! Tunable parameters of the adaptive tracker.

use crate::predictor::Predictor;

/// Bounded-retry policy for numerically failed paths.
///
/// A path that ends in [`crate::PathStatus::Failed`] (step control
/// collapsed, budget exhausted — *not* an honest divergence to infinity)
/// is re-run from its start solution with tightened continuation
/// parameters: smaller steps, a finer minimum step, a larger corrector
/// and step budget. Retries are bounded by [`RetrackPolicy::max_retries`];
/// each retry tightens further. The policy lives inside
/// [`TrackSettings`], so every driver — sequential, work-stealing,
/// tree-parallel, the batch service — inherits re-tracking without
/// signature changes. The per-path cost of **all** attempts is
/// accumulated into the one [`crate::PathResult`] the final attempt
/// returns (`attempts` records how many ran), which is what keeps
/// [`crate::TrackStats::record`]/[`crate::TrackStats::merge`] idempotent
/// per logical path: drivers that merge worker stats never see a
/// retracked path twice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrackPolicy {
    /// Additional attempts after the first failed one (0 disables
    /// re-tracking entirely — the default).
    pub max_retries: usize,
    /// Multiplier applied to the initial/maximum/minimum step per retry
    /// (compounded: retry `k` scales by `step_scale^k`).
    pub step_scale: f64,
    /// Multiplier applied to the step budget per retry (compounded).
    pub budget_scale: f64,
}

impl RetrackPolicy {
    /// No re-tracking (the default inside [`TrackSettings`]).
    pub fn disabled() -> Self {
        RetrackPolicy {
            max_retries: 0,
            step_scale: 0.25,
            budget_scale: 2.0,
        }
    }

    /// The conservative production policy: up to two retries, each with
    /// 4× smaller steps and a doubled step budget.
    pub fn conservative() -> Self {
        RetrackPolicy {
            max_retries: 2,
            step_scale: 0.25,
            budget_scale: 2.0,
        }
    }

    /// True when the policy allows at least one retry.
    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }

    /// The tightened settings for retry number `attempt` (1-based) of
    /// `base`. The returned settings have re-tracking disabled — the
    /// retry loop lives in [`crate::track_path_with`], never recursively
    /// inside an attempt.
    pub fn tightened(&self, base: &TrackSettings, attempt: usize) -> TrackSettings {
        let shrink = self.step_scale.powi(attempt as i32);
        let budget = self.budget_scale.powi(attempt as i32);
        TrackSettings {
            initial_step: (base.initial_step * shrink).max(base.min_step * shrink),
            max_step: (base.max_step * shrink).max(base.min_step * shrink),
            // A finer floor lets the controller crawl past the region
            // that defeated the first attempt.
            min_step: base.min_step * shrink,
            corrector_iters: base.corrector_iters + attempt,
            max_steps: (base.max_steps as f64 * budget).ceil() as usize,
            expand_after: base.expand_after + attempt,
            retrack: RetrackPolicy::disabled(),
            ..*base
        }
    }
}

impl Default for RetrackPolicy {
    fn default() -> Self {
        RetrackPolicy::disabled()
    }
}

/// Step-size control and tolerance settings for [`crate::track_path`].
///
/// The defaults reproduce PHCpack's conservative continuation parameters
/// and track every system in this workspace's test suite reliably; the
/// benches sweep some of them (predictor order, corrector budget) as
/// ablations.
#[derive(Debug, Clone, Copy)]
pub struct TrackSettings {
    /// Predictor order.
    pub predictor: Predictor,
    /// Initial step length in `t`.
    pub initial_step: f64,
    /// Smallest permitted step; when the controller wants to go below this
    /// the path is declared failed (or diverged when the norm is large).
    pub min_step: f64,
    /// Largest permitted step.
    pub max_step: f64,
    /// Multiplier applied after [`TrackSettings::expand_after`] consecutive
    /// successful steps.
    pub expand_factor: f64,
    /// Multiplier applied after a rejected step.
    pub shrink_factor: f64,
    /// Consecutive successes required before expanding the step.
    pub expand_after: usize,
    /// Newton tolerance (on the update norm) during tracking.
    pub corrector_tol: f64,
    /// Newton iteration budget per correction during tracking; keeping it
    /// small is what makes the step-size controller adaptive.
    pub corrector_iters: usize,
    /// Newton tolerance for the final refinement at `t = 1`.
    pub final_tol: f64,
    /// Newton budget for the final refinement.
    pub final_iters: usize,
    /// `‖x‖∞` beyond which a path is declared divergent (going to a
    /// solution at infinity).
    pub divergence_threshold: f64,
    /// Hard cap on accepted + rejected steps, guarding against cycling.
    pub max_steps: usize,
    /// Distance from `t = 1` at which the tracker switches to the
    /// geometric endgame (steps halving towards 1 with a Cauchy test).
    /// Diverging paths are recognised inside this region instead of being
    /// "snapped" onto a finite root by the final Newton refinement.
    pub endgame_radius: f64,
    /// Cauchy criterion of the endgame: consecutive endgame iterates
    /// closer than `endgame_tol·(1+‖x‖)` end the path.
    pub endgame_tol: f64,
    /// Bounded-retry policy for numerically failed paths (disabled by
    /// default; see [`RetrackPolicy`]).
    pub retrack: RetrackPolicy,
}

impl Default for TrackSettings {
    fn default() -> Self {
        TrackSettings {
            predictor: Predictor::RungeKutta4,
            initial_step: 0.05,
            min_step: 1e-10,
            max_step: 0.1,
            expand_factor: 1.5,
            shrink_factor: 0.5,
            expand_after: 3,
            corrector_tol: 1e-9,
            corrector_iters: 4,
            final_tol: 1e-12,
            final_iters: 12,
            divergence_threshold: 1e8,
            max_steps: 20_000,
            endgame_radius: 0.01,
            endgame_tol: 1e-8,
            retrack: RetrackPolicy::disabled(),
        }
    }
}

impl TrackSettings {
    /// A faster, looser profile used by large benchmark sweeps where
    /// per-path cost matters more than final polish.
    pub fn fast() -> Self {
        TrackSettings {
            predictor: Predictor::RungeKutta4,
            initial_step: 0.1,
            max_step: 0.2,
            corrector_tol: 1e-8,
            final_tol: 1e-10,
            ..TrackSettings::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = TrackSettings::default();
        assert!(s.min_step < s.initial_step && s.initial_step <= s.max_step);
        assert!(s.shrink_factor < 1.0 && s.expand_factor > 1.0);
        assert!(s.corrector_tol > s.final_tol);
        assert!(s.endgame_radius > 0.0 && s.endgame_radius < 0.5);
        assert!(!s.retrack.enabled(), "re-tracking is opt-in");
    }

    #[test]
    fn retrack_tightening_compounds() {
        let base = TrackSettings::default();
        let policy = RetrackPolicy::conservative();
        let t1 = policy.tightened(&base, 1);
        let t2 = policy.tightened(&base, 2);
        assert!(t1.initial_step < base.initial_step);
        assert!(t2.initial_step < t1.initial_step);
        assert!(t1.min_step < base.min_step && t2.min_step < t1.min_step);
        assert!(t2.max_steps > t1.max_steps && t1.max_steps > base.max_steps);
        assert!(t1.corrector_iters > base.corrector_iters);
        assert!(!t1.retrack.enabled(), "attempts never recurse");
        assert!(t1.min_step <= t1.initial_step && t1.initial_step <= t1.max_step);
    }
}
