//! Predictors: secant, tangent (Euler) and fourth-order Runge–Kutta.
//!
//! lint:hot-path — the `*_into` entry points run once per step and must
//! not allocate; only the documented allocating convenience wrappers
//! ([`tangent`], [`Predictor::predict`]) may, and they say so inline.
//!
//! The solution path `x(t)` of `H(x(t), t) = 0` obeys the Davidenko ODE
//!
//! ```text
//! ∂H/∂x · dx/dt = −∂H/∂t ,
//! ```
//!
//! so a predictor is an ODE step; the Newton corrector then pulls the
//! prediction back onto the path. Higher-order predictors buy larger steps
//! at more Jacobian solves per step — the `tracker` criterion bench
//! measures that trade-off on cyclic-n paths.

use crate::homotopy::Homotopy;
use crate::workspace::TrackWorkspace;
use pieri_linalg::Lu;
use pieri_num::Complex64;

/// Predictor order used by [`crate::track_path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Predictor {
    /// Extrapolate through the two most recent points. One extra point of
    /// memory, zero extra solves; PHCpack's default cheap predictor.
    Secant,
    /// First-order tangent (Euler) step: one linear solve.
    Tangent,
    /// Classical fourth-order Runge–Kutta on the Davidenko ODE: four
    /// linear solves per step.
    #[default]
    RungeKutta4,
}

/// Solves the Davidenko system for the tangent `dx/dt` at `(x, t)`.
///
/// Returns `None` when the Jacobian is singular to working precision.
pub fn tangent<H: Homotopy + ?Sized>(h: &H, x: &[Complex64], t: f64) -> Option<Vec<Complex64>> {
    let mut ws = TrackWorkspace::new();
    // lint:allow(hot-path-alloc) — allocating convenience wrapper; the
    // tracker itself uses `tangent_into` with a reused workspace.
    let mut out = vec![Complex64::ZERO; h.dim()];
    tangent_into(h, x, t, &mut out, &mut ws).then_some(out)
}

/// [`tangent`] against a caller-owned workspace: one fused
/// [`Homotopy::jacobian_and_dt`] call, an in-place solve on the reused LU
/// storage, and no heap allocation. Returns `false` (leaving `out`
/// unspecified) when the Jacobian is singular to working precision.
///
/// # Panics
/// Panics when `out.len() != h.dim()`.
pub fn tangent_into<H: Homotopy + ?Sized>(
    h: &H,
    x: &[Complex64],
    t: f64,
    out: &mut [Complex64],
    ws: &mut TrackWorkspace,
) -> bool {
    let n = h.dim();
    assert_eq!(out.len(), n, "tangent_into: output length mismatch");
    ws.ensure(n);
    let TrackWorkspace {
        ht,
        jac,
        lu,
        scratch,
        ..
    } = ws;
    h.jacobian_and_dt(x, t, jac, ht, scratch);
    if Lu::factor_into(jac, lu).is_err() {
        return false;
    }
    for (o, z) in out.iter_mut().zip(ht.iter()) {
        *o = -*z;
    }
    lu.solve_in_place(out);
    true
}

impl Predictor {
    /// Predicts `x(t + dt)` from `x(t)`; `prev` is the previous accepted
    /// point `(x_prev, t_prev)` when one exists (used by the secant rule).
    ///
    /// Returns `None` when a required Jacobian is singular; the driver
    /// treats that as a failed step and shrinks `dt`.
    pub fn predict<H: Homotopy + ?Sized>(
        self,
        h: &H,
        x: &[Complex64],
        t: f64,
        dt: f64,
        prev: Option<(&[Complex64], f64)>,
    ) -> Option<Vec<Complex64>> {
        let mut ws = TrackWorkspace::new();
        // lint:allow(hot-path-alloc) — allocating convenience wrapper;
        // the tracker itself uses `predict_into` with a reused workspace.
        let mut out = vec![Complex64::ZERO; h.dim()];
        self.predict_into(h, x, t, dt, prev, &mut out, &mut ws)
            .then_some(out)
    }

    /// [`Predictor::predict`] against a caller-owned workspace: the
    /// Runge–Kutta stages, Davidenko solves and the prediction itself all
    /// live in reused buffers, so steady-state prediction performs no
    /// heap allocation. Returns `false` (leaving `out` unspecified) when
    /// a required Jacobian is singular.
    ///
    /// # Panics
    /// Panics when `out.len() != h.dim()`.
    #[allow(clippy::too_many_arguments)] // mirrors `predict` + (out, ws)
    pub fn predict_into<H: Homotopy + ?Sized>(
        self,
        h: &H,
        x: &[Complex64],
        t: f64,
        dt: f64,
        prev: Option<(&[Complex64], f64)>,
        out: &mut [Complex64],
        ws: &mut TrackWorkspace,
    ) -> bool {
        let n = h.dim();
        assert_eq!(out.len(), n, "predict_into: output length mismatch");
        ws.ensure(n);
        match self {
            Predictor::Secant => match prev {
                Some((xp, tp)) if (t - tp).abs() > 1e-14 => {
                    let scale = dt / (t - tp);
                    for i in 0..n {
                        out[i] = x[i] + (x[i] - xp[i]).scale(scale);
                    }
                    true
                }
                // No history yet: fall back to a tangent step.
                _ => Predictor::Tangent.predict_into(h, x, t, dt, None, out, ws),
            },
            Predictor::Tangent => {
                // Solve into the k1 stage buffer (taken out so the
                // workspace can be lent to the tangent solve).
                let mut k1 = std::mem::take(&mut ws.k1);
                let ok = tangent_into(h, x, t, &mut k1, ws);
                if ok {
                    for i in 0..n {
                        out[i] = x[i] + k1[i].scale(dt);
                    }
                }
                ws.k1 = k1;
                ok
            }
            Predictor::RungeKutta4 => {
                let mut k1 = std::mem::take(&mut ws.k1);
                let mut k2 = std::mem::take(&mut ws.k2);
                let mut k3 = std::mem::take(&mut ws.k3);
                let mut k4 = std::mem::take(&mut ws.k4);
                let mut xmid = std::mem::take(&mut ws.xmid);
                let ok = (|| {
                    if !tangent_into(h, x, t, &mut k1, ws) {
                        return false;
                    }
                    for i in 0..n {
                        xmid[i] = x[i] + k1[i].scale(dt / 2.0);
                    }
                    if !tangent_into(h, &xmid, t + dt / 2.0, &mut k2, ws) {
                        return false;
                    }
                    for i in 0..n {
                        xmid[i] = x[i] + k2[i].scale(dt / 2.0);
                    }
                    if !tangent_into(h, &xmid, t + dt / 2.0, &mut k3, ws) {
                        return false;
                    }
                    for i in 0..n {
                        xmid[i] = x[i] + k3[i].scale(dt);
                    }
                    if !tangent_into(h, &xmid, t + dt, &mut k4, ws) {
                        return false;
                    }
                    for i in 0..n {
                        out[i] = x[i]
                            + (k1[i] + k2[i].scale(2.0) + k3[i].scale(2.0) + k4[i]).scale(dt / 6.0);
                    }
                    true
                })();
                ws.k1 = k1;
                ws.k2 = k2;
                ws.k3 = k3;
                ws.k4 = k4;
                ws.xmid = xmid;
                ok
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homotopy::LinearHomotopy;
    use pieri_poly::{Poly, PolySystem};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    /// Homotopy x² − (1 + 3t) = 0, whose positive path is x(t) = √(1+3t).
    fn sqrt_homotopy() -> LinearHomotopy {
        let x = Poly::var(1, 0);
        let g = PolySystem::new(vec![x.mul(&x).sub(&Poly::constant(1, c(1.0, 0.0)))]);
        let f = PolySystem::new(vec![x.mul(&x).sub(&Poly::constant(1, c(4.0, 0.0)))]);
        // γ = 1 keeps the path real: H = (1−t)(x²−1) + t(x²−4) = x² − (1+3t).
        LinearHomotopy::new(g, f, Complex64::ONE)
    }

    #[test]
    fn tangent_matches_analytic_derivative() {
        let h = sqrt_homotopy();
        let t = 0.3f64;
        let xt = (1.0 + 3.0 * t).sqrt();
        let v = tangent(&h, &[c(xt, 0.0)], t).unwrap();
        // dx/dt = 3 / (2√(1+3t)).
        let expect = 3.0 / (2.0 * xt);
        assert!(v[0].dist(c(expect, 0.0)) < 1e-10);
    }

    #[test]
    fn predictor_orders_rank_correctly() {
        let h = sqrt_homotopy();
        let t = 0.2;
        let dt = 0.2;
        let x0 = [c((1.0f64 + 3.0 * t).sqrt(), 0.0)];
        let exact = (1.0f64 + 3.0 * (t + dt)).sqrt();
        let euler = Predictor::Tangent.predict(&h, &x0, t, dt, None).unwrap();
        let rk4 = Predictor::RungeKutta4
            .predict(&h, &x0, t, dt, None)
            .unwrap();
        let e_euler = (euler[0].re - exact).abs();
        let e_rk4 = (rk4[0].re - exact).abs();
        assert!(
            e_rk4 < e_euler / 20.0,
            "RK4 ({e_rk4:.2e}) ≪ Euler ({e_euler:.2e})"
        );
        assert!(e_rk4 < 1e-3);
    }

    #[test]
    fn secant_uses_history() {
        let h = sqrt_homotopy();
        let t0 = 0.1;
        let t1 = 0.2;
        let x0 = [c((1.0f64 + 3.0 * t0).sqrt(), 0.0)];
        let x1 = [c((1.0f64 + 3.0 * t1).sqrt(), 0.0)];
        let dt = 0.1;
        let pred = Predictor::Secant
            .predict(&h, &x1, t1, dt, Some((&x0[..], t0)))
            .unwrap();
        let exact = (1.0f64 + 3.0 * (t1 + dt)).sqrt();
        assert!((pred[0].re - exact).abs() < 2e-2);
        // Without history it still produces something sensible (tangent).
        let pred0 = Predictor::Secant.predict(&h, &x1, t1, dt, None).unwrap();
        assert!((pred0[0].re - exact).abs() < 2e-2);
    }

    #[test]
    fn singular_jacobian_yields_none() {
        let h = sqrt_homotopy();
        // Jacobian 2x is singular at x = 0.
        assert!(tangent(&h, &[Complex64::ZERO], 0.5).is_none());
        assert!(Predictor::RungeKutta4
            .predict(&h, &[Complex64::ZERO], 0.5, 0.1, None)
            .is_none());
    }
}
