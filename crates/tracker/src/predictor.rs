//! Predictors: secant, tangent (Euler) and fourth-order Runge–Kutta.
//!
//! The solution path `x(t)` of `H(x(t), t) = 0` obeys the Davidenko ODE
//!
//! ```text
//! ∂H/∂x · dx/dt = −∂H/∂t ,
//! ```
//!
//! so a predictor is an ODE step; the Newton corrector then pulls the
//! prediction back onto the path. Higher-order predictors buy larger steps
//! at more Jacobian solves per step — the `tracker` criterion bench
//! measures that trade-off on cyclic-n paths.

use crate::homotopy::Homotopy;
use pieri_linalg::{CMat, Lu, LuError};
use pieri_num::Complex64;

/// Predictor order used by [`crate::track_path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Predictor {
    /// Extrapolate through the two most recent points. One extra point of
    /// memory, zero extra solves; PHCpack's default cheap predictor.
    Secant,
    /// First-order tangent (Euler) step: one linear solve.
    Tangent,
    /// Classical fourth-order Runge–Kutta on the Davidenko ODE: four
    /// linear solves per step.
    #[default]
    RungeKutta4,
}

/// Solves the Davidenko system for the tangent `dx/dt` at `(x, t)`.
///
/// Returns `None` when the Jacobian is singular to working precision.
pub fn tangent<H: Homotopy + ?Sized>(h: &H, x: &[Complex64], t: f64) -> Option<Vec<Complex64>> {
    let n = h.dim();
    let mut jac = CMat::zeros(n, n);
    let mut ht = vec![Complex64::ZERO; n];
    h.jacobian_x(x, t, &mut jac);
    h.dt(x, t, &mut ht);
    let lu = match Lu::factor(&jac) {
        Ok(lu) => lu,
        Err(LuError::Singular { .. }) => return None,
        Err(LuError::NotSquare) => unreachable!("homotopy Jacobian is square"),
    };
    let rhs: Vec<Complex64> = ht.iter().map(|z| -*z).collect();
    Some(lu.solve(&rhs))
}

impl Predictor {
    /// Predicts `x(t + dt)` from `x(t)`; `prev` is the previous accepted
    /// point `(x_prev, t_prev)` when one exists (used by the secant rule).
    ///
    /// Returns `None` when a required Jacobian is singular; the driver
    /// treats that as a failed step and shrinks `dt`.
    pub fn predict<H: Homotopy + ?Sized>(
        self,
        h: &H,
        x: &[Complex64],
        t: f64,
        dt: f64,
        prev: Option<(&[Complex64], f64)>,
    ) -> Option<Vec<Complex64>> {
        match self {
            Predictor::Secant => match prev {
                Some((xp, tp)) if (t - tp).abs() > 1e-14 => {
                    let scale = dt / (t - tp);
                    Some(
                        x.iter()
                            .zip(xp.iter())
                            .map(|(xi, pi)| *xi + (*xi - *pi).scale(scale))
                            .collect(),
                    )
                }
                // No history yet: fall back to a tangent step.
                _ => Predictor::Tangent.predict(h, x, t, dt, None),
            },
            Predictor::Tangent => {
                let v = tangent(h, x, t)?;
                Some(
                    x.iter()
                        .zip(v.iter())
                        .map(|(xi, vi)| *xi + vi.scale(dt))
                        .collect(),
                )
            }
            Predictor::RungeKutta4 => {
                let n = h.dim();
                let k1 = tangent(h, x, t)?;
                let mid1: Vec<Complex64> = (0..n).map(|i| x[i] + k1[i].scale(dt / 2.0)).collect();
                let k2 = tangent(h, &mid1, t + dt / 2.0)?;
                let mid2: Vec<Complex64> = (0..n).map(|i| x[i] + k2[i].scale(dt / 2.0)).collect();
                let k3 = tangent(h, &mid2, t + dt / 2.0)?;
                let end: Vec<Complex64> = (0..n).map(|i| x[i] + k3[i].scale(dt)).collect();
                let k4 = tangent(h, &end, t + dt)?;
                Some(
                    (0..n)
                        .map(|i| {
                            x[i] + (k1[i] + k2[i].scale(2.0) + k3[i].scale(2.0) + k4[i])
                                .scale(dt / 6.0)
                        })
                        .collect(),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homotopy::LinearHomotopy;
    use pieri_poly::{Poly, PolySystem};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    /// Homotopy x² − (1 + 3t) = 0, whose positive path is x(t) = √(1+3t).
    fn sqrt_homotopy() -> LinearHomotopy {
        let x = Poly::var(1, 0);
        let g = PolySystem::new(vec![x.mul(&x).sub(&Poly::constant(1, c(1.0, 0.0)))]);
        let f = PolySystem::new(vec![x.mul(&x).sub(&Poly::constant(1, c(4.0, 0.0)))]);
        // γ = 1 keeps the path real: H = (1−t)(x²−1) + t(x²−4) = x² − (1+3t).
        LinearHomotopy::new(g, f, Complex64::ONE)
    }

    #[test]
    fn tangent_matches_analytic_derivative() {
        let h = sqrt_homotopy();
        let t = 0.3f64;
        let xt = (1.0 + 3.0 * t).sqrt();
        let v = tangent(&h, &[c(xt, 0.0)], t).unwrap();
        // dx/dt = 3 / (2√(1+3t)).
        let expect = 3.0 / (2.0 * xt);
        assert!(v[0].dist(c(expect, 0.0)) < 1e-10);
    }

    #[test]
    fn predictor_orders_rank_correctly() {
        let h = sqrt_homotopy();
        let t = 0.2;
        let dt = 0.2;
        let x0 = [c((1.0f64 + 3.0 * t).sqrt(), 0.0)];
        let exact = (1.0f64 + 3.0 * (t + dt)).sqrt();
        let euler = Predictor::Tangent.predict(&h, &x0, t, dt, None).unwrap();
        let rk4 = Predictor::RungeKutta4
            .predict(&h, &x0, t, dt, None)
            .unwrap();
        let e_euler = (euler[0].re - exact).abs();
        let e_rk4 = (rk4[0].re - exact).abs();
        assert!(
            e_rk4 < e_euler / 20.0,
            "RK4 ({e_rk4:.2e}) ≪ Euler ({e_euler:.2e})"
        );
        assert!(e_rk4 < 1e-3);
    }

    #[test]
    fn secant_uses_history() {
        let h = sqrt_homotopy();
        let t0 = 0.1;
        let t1 = 0.2;
        let x0 = [c((1.0f64 + 3.0 * t0).sqrt(), 0.0)];
        let x1 = [c((1.0f64 + 3.0 * t1).sqrt(), 0.0)];
        let dt = 0.1;
        let pred = Predictor::Secant
            .predict(&h, &x1, t1, dt, Some((&x0[..], t0)))
            .unwrap();
        let exact = (1.0f64 + 3.0 * (t1 + dt)).sqrt();
        assert!((pred[0].re - exact).abs() < 2e-2);
        // Without history it still produces something sensible (tangent).
        let pred0 = Predictor::Secant.predict(&h, &x1, t1, dt, None).unwrap();
        assert!((pred0[0].re - exact).abs() < 2e-2);
    }

    #[test]
    fn singular_jacobian_yields_none() {
        let h = sqrt_homotopy();
        // Jacobian 2x is singular at x = 0.
        assert!(tangent(&h, &[Complex64::ZERO], 0.5).is_none());
        assert!(Predictor::RungeKutta4
            .predict(&h, &[Complex64::ZERO], 0.5, 0.1, None)
            .is_none());
    }
}
