//! The homotopy abstraction and the convex linear homotopy.

use crate::workspace::HomotopyScratch;
use pieri_linalg::CMat;
use pieri_num::Complex64;
use pieri_poly::PolySystem;

/// A continuously deformed square polynomial system `H(x, t)`, `t ∈ [0,1]`,
/// with `H(·, 0)` the start system and `H(·, 1)` the target.
///
/// Implementors must be `Sync`: the parallel drivers of `pieri-parallel`
/// share one homotopy across worker threads.
pub trait Homotopy: Sync {
    /// Number of variables (= number of equations).
    fn dim(&self) -> usize;

    /// Evaluates `H(x, t)` into `out` (length [`Homotopy::dim`]).
    fn eval(&self, x: &[Complex64], t: f64, out: &mut [Complex64]);

    /// Evaluates the Jacobian `∂H/∂x` at `(x, t)` into `out`
    /// (`dim × dim`).
    fn jacobian_x(&self, x: &[Complex64], t: f64, out: &mut CMat);

    /// Evaluates `∂H/∂t` at `(x, t)` into `out`.
    fn dt(&self, x: &[Complex64], t: f64, out: &mut [Complex64]);

    /// Evaluates `H(x, t)` and `∂H/∂x` together — the fused kernel of the
    /// Newton corrector.
    ///
    /// The default implementation is the two separate calls; determinantal
    /// homotopies override it so each condition matrix is built **once**
    /// and a single LU factorisation yields both the residual entry (the
    /// determinant) and the Jacobian row (cofactor entries), with
    /// `scratch` carrying the reusable condition/cofactor storage.
    /// Implementations must agree with `eval` + `jacobian_x` up to
    /// numerical roundoff (the fused-vs-reference property tests pin
    /// this).
    fn eval_and_jacobian(
        &self,
        x: &[Complex64],
        t: f64,
        fx: &mut [Complex64],
        jac: &mut CMat,
        scratch: &mut HomotopyScratch,
    ) {
        let _ = scratch;
        self.eval(x, t, fx);
        self.jacobian_x(x, t, jac);
    }

    /// Evaluates `∂H/∂x` and `∂H/∂t` together — the fused kernel of the
    /// Davidenko tangent system driving every predictor step.
    ///
    /// Same contract as [`Homotopy::eval_and_jacobian`]: the default is
    /// the two separate calls, determinantal homotopies share one
    /// condition-matrix build and one cofactor evaluation between the
    /// Jacobian row and the `∂H/∂t` contraction.
    fn jacobian_and_dt(
        &self,
        x: &[Complex64],
        t: f64,
        jac: &mut CMat,
        ht: &mut [Complex64],
        scratch: &mut HomotopyScratch,
    ) {
        let _ = scratch;
        self.jacobian_x(x, t, jac);
        self.dt(x, t, ht);
    }

    /// Residual `‖H(x,t)‖∞`, used for reporting.
    fn residual(&self, x: &[Complex64], t: f64) -> f64 {
        let mut buf = vec![Complex64::ZERO; self.dim()];
        self.eval(x, t, &mut buf);
        buf.iter().map(|z| z.norm()).fold(0.0, f64::max)
    }
}

/// The classical convex homotopy with the gamma trick:
///
/// ```text
/// H(x, t) = γ·(1−t)·G(x) + t·F(x)
/// ```
///
/// For all but finitely many unit-modulus `γ` the solution paths are
/// regular and bounded on `t ∈ [0,1)` (probability one when `γ` is drawn
/// at random), which is eq. (1) of the paper.
pub struct LinearHomotopy {
    start: PolySystem,
    target: PolySystem,
    gamma: Complex64,
}

impl LinearHomotopy {
    /// Builds the homotopy; `gamma` should come from
    /// [`pieri_num::random_gamma`].
    ///
    /// # Panics
    /// Panics when the systems are not square of equal dimensions.
    pub fn new(start: PolySystem, target: PolySystem, gamma: Complex64) -> Self {
        assert!(
            start.is_square() && target.is_square(),
            "homotopy systems must be square"
        );
        assert_eq!(
            start.nvars(),
            target.nvars(),
            "start/target dimension mismatch"
        );
        LinearHomotopy {
            start,
            target,
            gamma,
        }
    }

    /// The start system `G`.
    pub fn start(&self) -> &PolySystem {
        &self.start
    }

    /// The target system `F`.
    pub fn target(&self) -> &PolySystem {
        &self.target
    }

    /// The gamma constant.
    pub fn gamma(&self) -> Complex64 {
        self.gamma
    }
}

impl Homotopy for LinearHomotopy {
    fn dim(&self) -> usize {
        self.start.nvars()
    }

    fn eval(&self, x: &[Complex64], t: f64, out: &mut [Complex64]) {
        let n = self.dim();
        debug_assert_eq!(out.len(), n);
        let g = self.start.eval(x);
        let f = self.target.eval(x);
        let gw = self.gamma.scale(1.0 - t);
        for i in 0..n {
            out[i] = gw * g[i] + f[i].scale(t);
        }
    }

    fn jacobian_x(&self, x: &[Complex64], t: f64, out: &mut CMat) {
        let n = self.dim();
        debug_assert_eq!((out.rows(), out.cols()), (n, n));
        let jg = self.start.jacobian(x);
        let jf = self.target.jacobian(x);
        let gw = self.gamma.scale(1.0 - t);
        for i in 0..n {
            for j in 0..n {
                out[(i, j)] = gw * jg[(i, j)] + jf[(i, j)].scale(t);
            }
        }
    }

    fn dt(&self, x: &[Complex64], _t: f64, out: &mut [Complex64]) {
        let n = self.dim();
        debug_assert_eq!(out.len(), n);
        let g = self.start.eval(x);
        let f = self.target.eval(x);
        for i in 0..n {
            out[i] = f[i] - self.gamma * g[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_poly::Poly;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn univar(coeffs: &[f64]) -> PolySystem {
        // Builds the univariate polynomial Σ coeffs[k]·x^k as a 1-d system.
        let x = Poly::var(1, 0);
        let mut p = Poly::zero(1);
        for (k, &ck) in coeffs.iter().enumerate() {
            p = p.add(&x.pow(k as u32).scale(c(ck, 0.0)));
        }
        PolySystem::new(vec![p])
    }

    #[test]
    fn endpoints_interpolate_start_and_target() {
        let g = univar(&[-1.0, 0.0, 1.0]); // x² − 1
        let f = univar(&[-4.0, 0.0, 1.0]); // x² − 4
        let h = LinearHomotopy::new(g, f, Complex64::ONE);
        let x = [c(3.0, 0.0)];
        let mut out = [Complex64::ZERO];
        h.eval(&x, 0.0, &mut out);
        assert!(out[0].dist(c(8.0, 0.0)) < 1e-13); // γ·G(3) = 8
        h.eval(&x, 1.0, &mut out);
        assert!(out[0].dist(c(5.0, 0.0)) < 1e-13); // F(3) = 5
    }

    #[test]
    fn dt_matches_finite_difference() {
        let g = univar(&[-1.0, 0.0, 1.0]);
        let f = univar(&[1.0, 2.0, 3.0]);
        let h = LinearHomotopy::new(g, f, c(0.6, 0.8));
        let x = [c(0.7, -0.2)];
        let mut dt = [Complex64::ZERO];
        h.dt(&x, 0.4, &mut dt);
        let mut a = [Complex64::ZERO];
        let mut b = [Complex64::ZERO];
        h.eval(&x, 0.4 + 1e-7, &mut a);
        h.eval(&x, 0.4 - 1e-7, &mut b);
        let fd = (a[0] - b[0]) / 2e-7;
        assert!(fd.dist(dt[0]) < 1e-6);
    }

    #[test]
    fn jacobian_matches_finite_difference() {
        let g = univar(&[-1.0, 0.0, 0.0, 1.0]);
        let f = univar(&[2.0, -1.0, 0.0, 1.0]);
        let h = LinearHomotopy::new(g, f, c(0.0, 1.0));
        let x = [c(0.3, 0.5)];
        let mut j = CMat::zeros(1, 1);
        h.jacobian_x(&x, 0.25, &mut j);
        let mut a = [Complex64::ZERO];
        let mut b = [Complex64::ZERO];
        h.eval(&[x[0] + c(1e-7, 0.0)], 0.25, &mut a);
        h.eval(&[x[0] - c(1e-7, 0.0)], 0.25, &mut b);
        let fd = (a[0] - b[0]) / 2e-7;
        assert!(fd.dist(j[(0, 0)]) < 1e-6);
    }

    #[test]
    fn residual_zero_at_start_roots() {
        let g = univar(&[-1.0, 0.0, 1.0]);
        let f = univar(&[-4.0, 0.0, 1.0]);
        let h = LinearHomotopy::new(g, f, c(0.3, -0.95));
        assert!(h.residual(&[c(1.0, 0.0)], 0.0) < 1e-14);
        assert!(h.residual(&[c(-1.0, 0.0)], 0.0) < 1e-14);
        assert!(h.residual(&[c(2.0, 0.0)], 1.0) < 1e-14);
    }
}
