//! The adaptive predictor–corrector driver.
//!
//! lint:hot-path — steady-state tracking must stay allocation-free
//! (PR 4's ≤ 8-allocs/path bound, pinned by `alloc_count.rs`); every
//! allocating call below carries its own justification.

use crate::homotopy::Homotopy;
use crate::newton::newton_correct_with;
use crate::settings::TrackSettings;
use crate::stats::TrackStats;
use crate::workspace::TrackWorkspace;
use pieri_linalg::inf_norm;
use pieri_num::Complex64;
use std::mem;
use std::time::{Duration, Instant};

/// Terminal state of one tracked path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathStatus {
    /// Reached `t = 1` and passed the final Newton refinement.
    Converged,
    /// The solution norm blew past the divergence threshold: the path leads
    /// to a solution at infinity. `at_t` records how far it got.
    Diverged {
        /// Continuation parameter at which divergence was declared.
        at_t: f64,
    },
    /// Step control collapsed (or the step budget ran out) without a large
    /// norm; numerically stuck, e.g. near a singular endpoint.
    Failed {
        /// Continuation parameter at which tracking gave up.
        at_t: f64,
    },
}

impl PathStatus {
    /// True for [`PathStatus::Converged`].
    pub fn is_converged(self) -> bool {
        matches!(self, PathStatus::Converged)
    }
}

/// Outcome of tracking one solution path.
#[derive(Debug, Clone)]
pub struct PathResult {
    /// Terminal state.
    pub status: PathStatus,
    /// Final approximation (the refined solution when converged).
    pub x: Vec<Complex64>,
    /// Final residual `‖H(x, t_end)‖∞`.
    pub residual: f64,
    /// Accepted predictor–corrector steps.
    pub steps: usize,
    /// Rejected (re-tried) steps.
    pub rejections: usize,
    /// Total Newton iterations spent.
    pub newton_iters: usize,
    /// Tracking attempts this result accounts for: 1 when the first
    /// attempt settled the path, more when the re-track policy
    /// ([`crate::RetrackPolicy`]) re-ran it with tightened settings.
    /// `steps`, `rejections`, `newton_iters` and `elapsed` accumulate
    /// over **all** attempts, so recording this result once accounts for
    /// the path's full cost.
    pub attempts: usize,
    /// Wall-clock time spent on this path.
    pub elapsed: Duration,
}

/// Mutable tracking state shared between the main loop and the endgame.
/// The vectors are borrowed from the caller's [`TrackWorkspace`] and
/// returned to it when the path ends, so repeated paths reuse them.
struct Progress {
    x: Vec<Complex64>,
    prev_x: Vec<Complex64>,
    has_prev: bool,
    prev_t: f64,
    t: f64,
    steps: usize,
    rejections: usize,
    newton_total: usize,
}

/// Tracks one path of `h` from the start solution `x0` (a solution of
/// `H(·, 0) = 0`) towards `t = 1`.
///
/// The loop predicts with the configured [`crate::Predictor`], corrects
/// with Newton at fixed `t`, and adapts the step: a correction that
/// converges within budget accepts the step (expanding after a streak),
/// anything else rejects it and halves the step.
///
/// Inside `1 − t < endgame_radius` the tracker switches to a *geometric
/// endgame*: steps always cover half the remaining distance, and the path
/// ends either when consecutive iterates become Cauchy (then one last
/// Newton polish at `t = 1` produces the solution) or when the solution
/// norm blows up (a path to infinity). Without this, a divergent path of a
/// deficient system would be "snapped" onto some finite root by the final
/// refinement and counted twice — the endgame is what lets the cyclic
/// 10-roots and RPS experiments of the paper report their divergent-path
/// counts honestly.
pub fn track_path<H: Homotopy + ?Sized>(
    h: &H,
    x0: &[Complex64],
    settings: &TrackSettings,
) -> PathResult {
    let mut ws = TrackWorkspace::new();
    track_path_with(h, x0, settings, &mut ws)
}

/// [`track_path`] against a caller-owned [`TrackWorkspace`].
///
/// This is the zero-allocation form: path state, predictor stages,
/// Newton buffers, LU storage and the homotopy's own scratch all live in
/// `ws` and are reused across steps *and* across paths — in steady state
/// the only per-path allocation is the returned [`PathResult::x`]. The
/// workers of `pieri-parallel` hold one workspace each; sequential
/// drivers thread a single workspace through every path of a solve.
///
/// When `settings.retrack` is enabled, a [`PathStatus::Failed`] attempt
/// is re-run from `x0` with tightened step control (bounded by the
/// policy); the returned result is the **final** attempt with the cost
/// of every attempt accumulated and [`PathResult::attempts`] counting
/// them — one result per logical path, however many attempts ran.
pub fn track_path_with<H: Homotopy + ?Sized>(
    h: &H,
    x0: &[Complex64],
    settings: &TrackSettings,
    ws: &mut TrackWorkspace,
) -> PathResult {
    let mut result = track_path_attempt(h, x0, settings, ws);
    let policy = settings.retrack;
    let mut attempt = 0usize;
    while attempt < policy.max_retries && matches!(result.status, PathStatus::Failed { .. }) {
        attempt += 1;
        let tightened = policy.tightened(settings, attempt);
        let _span = crate::trace::phase_span("retrack");
        let mut retry = track_path_attempt(h, x0, &tightened, ws);
        // Fold the earlier attempts' cost into the surviving result so
        // TrackStats::record sees this path exactly once.
        retry.steps += result.steps;
        retry.rejections += result.rejections;
        retry.newton_iters += result.newton_iters;
        retry.elapsed += result.elapsed;
        retry.attempts = result.attempts + 1;
        result = retry;
    }
    result
}

/// One tracking attempt (no re-tracking).
fn track_path_attempt<H: Homotopy + ?Sized>(
    h: &H,
    x0: &[Complex64],
    settings: &TrackSettings,
    ws: &mut TrackWorkspace,
) -> PathResult {
    let start_time = Instant::now();
    let _span = crate::trace::phase_span("track.path");
    ws.ensure(h.dim());
    // Borrow the state buffers out of the workspace for the duration of
    // this path (mem::take is free for Vec); they return at the end.
    let mut x = mem::take(&mut ws.state_x);
    x.clear();
    x.extend_from_slice(x0);
    let mut prev_x = mem::take(&mut ws.state_prev);
    prev_x.clear();
    let mut predicted = mem::take(&mut ws.state_pred);
    let mut x_before = mem::take(&mut ws.state_before);
    let mut norms = mem::take(&mut ws.endgame_norms);
    let mut p = Progress {
        x,
        prev_x,
        has_prev: false,
        prev_t: 0.0,
        t: 0.0,
        steps: 0,
        rejections: 0,
        newton_total: 0,
    };

    let (status, residual) = drive(
        h,
        settings,
        ws,
        &mut p,
        &mut predicted,
        &mut x_before,
        &mut norms,
    );

    let result = PathResult {
        status,
        // lint:allow(hot-path-alloc) — the one documented per-path
        // allocation: the returned solution must outlive the reused
        // workspace buffer it was computed in.
        x: p.x.clone(),
        residual,
        steps: p.steps,
        rejections: p.rejections,
        newton_iters: p.newton_total,
        attempts: 1,
        elapsed: start_time.elapsed(),
    };
    ws.state_x = p.x;
    ws.state_prev = p.prev_x;
    ws.state_pred = predicted;
    ws.state_before = x_before;
    ws.endgame_norms = norms;
    result
}

/// The tracking loop proper: main adaptive phase, geometric endgame and
/// final refinement. Split out of [`track_path_with`] so every early
/// return funnels through the single buffer-restoring exit above.
fn drive<H: Homotopy + ?Sized>(
    h: &H,
    settings: &TrackSettings,
    ws: &mut TrackWorkspace,
    p: &mut Progress,
    predicted: &mut Vec<Complex64>,
    x_before: &mut Vec<Complex64>,
    endgame_norms: &mut Vec<f64>,
) -> (PathStatus, f64) {
    let mut dt = settings.initial_step;
    let mut streak = 0usize;
    let endgame_start = 1.0 - settings.endgame_radius.clamp(0.0, 0.5);

    // Main adaptive phase: up to the endgame boundary.
    while p.t < endgame_start {
        if p.steps + p.rejections > settings.max_steps {
            return (PathStatus::Failed { at_t: p.t }, h.residual(&p.x, p.t));
        }
        let step = dt.min(endgame_start - p.t);
        match try_step(h, p, predicted, step, settings, ws) {
            StepOutcome::Accepted => {
                streak += 1;
                if streak >= settings.expand_after {
                    dt = (dt * settings.expand_factor).min(settings.max_step);
                    streak = 0;
                }
                if inf_norm(&p.x) > settings.divergence_threshold {
                    return (PathStatus::Diverged { at_t: p.t }, h.residual(&p.x, p.t));
                }
            }
            StepOutcome::Rejected => {
                streak = 0;
                dt *= settings.shrink_factor;
                if dt < settings.min_step {
                    let status = if inf_norm(&p.x) > settings.divergence_threshold.sqrt() {
                        PathStatus::Diverged { at_t: p.t }
                    } else {
                        PathStatus::Failed { at_t: p.t }
                    };
                    return (status, h.residual(&p.x, p.t));
                }
            }
        }
    }

    // Geometric endgame towards t = 1.
    let mut endgame_fail_shrink = 1.0f64;
    // Norm history over the endgame halvings: a path diverging like
    // (1−t)^{−1/k} towards a multiplicity-k solution at infinity never
    // crosses an absolute norm threshold within f64 range, but its norm
    // grows by the consistent factor 2^{1/k} per halving. The trailing
    // growth ratio is the cheap stand-in for PHCpack's winding-number
    // endgame test; bounded-but-stuck paths show ratio ≈ 1 instead.
    endgame_norms.clear();
    endgame_norms.push(inf_norm(&p.x));
    loop {
        if p.steps + p.rejections > settings.max_steps {
            return (PathStatus::Failed { at_t: p.t }, h.residual(&p.x, p.t));
        }
        let remaining = 1.0 - p.t;
        if remaining < 1e-13 {
            break;
        }
        let step = 0.5 * remaining * endgame_fail_shrink;
        if step < f64::EPSILON * 4.0 {
            break;
        }
        x_before.clear();
        x_before.extend_from_slice(&p.x);
        match try_step(h, p, predicted, step, settings, ws) {
            StepOutcome::Accepted => {
                endgame_fail_shrink = 1.0;
                let norm = inf_norm(&p.x);
                endgame_norms.push(norm);
                if norm > settings.divergence_threshold {
                    return (PathStatus::Diverged { at_t: p.t }, h.residual(&p.x, p.t));
                }
                // Cauchy test: iterates have stopped moving.
                let diff: f64 =
                    p.x.iter()
                        .zip(x_before.iter())
                        .map(|(a, b)| (*a - *b).norm())
                        .fold(0.0, f64::max);
                if diff <= settings.endgame_tol * (1.0 + norm) {
                    break;
                }
            }
            StepOutcome::Rejected => {
                endgame_fail_shrink *= settings.shrink_factor;
                if endgame_fail_shrink * remaining < settings.min_step {
                    break;
                }
            }
        }
    }

    // Final refinement at t = 1 from the endgame limit point; the
    // predictor buffer is free here and keeps the entry point.
    predicted.clear();
    predicted.extend_from_slice(&p.x);
    let entry_norm = inf_norm(predicted);
    let out = newton_correct_with(
        h,
        &mut p.x,
        1.0,
        settings.final_tol,
        settings.final_iters,
        ws,
    );
    p.newton_total += out.iters;
    // Reject a refinement that jumped far away from the tracked limit:
    // that is Newton snapping a divergent path onto an unrelated root.
    let jump: f64 =
        p.x.iter()
            .zip(predicted.iter())
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0, f64::max);
    let snapped = jump > 0.25 * (1.0 + entry_norm);
    // Growth-based divergence: over the trailing endgame window the norm
    // kept growing geometrically (total factor ≥ 3 over ≤ 24 halvings,
    // i.e. exponent ≥ ~1/15) and ended clearly above solution scale.
    let window = endgame_norms.len().min(24);
    let slow_divergence = window >= 8 && {
        let first = endgame_norms[endgame_norms.len() - window].max(f64::MIN_POSITIVE);
        entry_norm / first >= 3.0 && entry_norm > 10.0
    };
    let status = if out.converged && !snapped && inf_norm(&p.x) <= settings.divergence_threshold {
        PathStatus::Converged
    } else if entry_norm > settings.divergence_threshold.sqrt()
        || slow_divergence
        || snapped && entry_norm > 1e3
    {
        PathStatus::Diverged { at_t: p.t }
    } else {
        PathStatus::Failed { at_t: p.t }
    };
    (status, out.residual)
}

enum StepOutcome {
    Accepted,
    Rejected,
}

/// One predict–correct attempt of length `step`; on success advances `p`
/// by rotating the state buffers (no copies, no allocation).
fn try_step<H: Homotopy + ?Sized>(
    h: &H,
    p: &mut Progress,
    predicted: &mut Vec<Complex64>,
    step: f64,
    settings: &TrackSettings,
    ws: &mut TrackWorkspace,
) -> StepOutcome {
    let t_next = (p.t + step).min(1.0);
    predicted.clear();
    predicted.resize(h.dim(), Complex64::ZERO);
    let prev = p.has_prev.then_some((p.prev_x.as_slice(), p.prev_t));
    let ok = {
        let _span = crate::trace::step_span("predict");
        settings
            .predictor
            .predict_into(h, &p.x, p.t, t_next - p.t, prev, predicted, ws)
    };
    if ok && predicted.iter().all(|z| z.is_finite()) {
        let _span = crate::trace::step_span("correct");
        let out = newton_correct_with(
            h,
            predicted,
            t_next,
            settings.corrector_tol,
            settings.corrector_iters,
            ws,
        );
        p.newton_total += out.iters;
        if out.converged && predicted.iter().all(|z| z.is_finite()) {
            // prev ← x ← predicted, with the old prev buffer becoming
            // the next prediction scratch.
            mem::swap(&mut p.prev_x, &mut p.x);
            mem::swap(&mut p.x, predicted);
            p.prev_t = p.t;
            p.has_prev = true;
            p.t = t_next;
            p.steps += 1;
            StepOutcome::Accepted
        } else {
            p.rejections += 1;
            StepOutcome::Rejected
        }
    } else {
        p.rejections += 1;
        StepOutcome::Rejected
    }
}

/// Tracks every start solution sequentially, collecting per-path results
/// and aggregate [`TrackStats`]. This is the "1 CPU" baseline that the
/// schedulers in `pieri-parallel` and the cluster simulator accelerate.
pub fn track_all<H: Homotopy + ?Sized>(
    h: &H,
    starts: &[Vec<Complex64>],
    settings: &TrackSettings,
) -> (Vec<PathResult>, TrackStats) {
    let mut ws = TrackWorkspace::new();
    let results: Vec<PathResult> = starts
        .iter()
        .map(|s| track_path_with(h, s, settings, &mut ws))
        // lint:allow(hot-path-alloc) — driver-level: one results vector
        // per *batch* of paths, not per step.
        .collect();
    let stats = TrackStats::from_results(&results);
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homotopy::LinearHomotopy;
    use crate::predictor::Predictor;
    use pieri_num::{random_gamma, seeded_rng};
    use pieri_poly::{Poly, PolySystem};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn univar(coeffs: &[Complex64]) -> PolySystem {
        let x = Poly::var(1, 0);
        let mut p = Poly::zero(1);
        for (k, &ck) in coeffs.iter().enumerate() {
            p = p.add(&x.pow(k as u32).scale(ck));
        }
        PolySystem::new(vec![p])
    }

    /// x^d − 1 with its known roots of unity.
    fn unity_start(d: usize) -> (PolySystem, Vec<Vec<Complex64>>) {
        let mut coeffs = vec![Complex64::ZERO; d + 1];
        coeffs[0] = c(-1.0, 0.0);
        coeffs[d] = Complex64::ONE;
        let sys = univar(&coeffs);
        let roots = (0..d)
            .map(|k| {
                vec![Complex64::from_polar(
                    1.0,
                    std::f64::consts::TAU * k as f64 / d as f64,
                )]
            })
            .collect();
        (sys, roots)
    }

    #[test]
    fn tracks_simple_quadratic() {
        let (g, starts) = unity_start(2);
        let f = univar(&[c(-4.0, 0.0), Complex64::ZERO, Complex64::ONE]); // x² − 4
        let mut rng = seeded_rng(100);
        let h = LinearHomotopy::new(g, f, random_gamma(&mut rng));
        let settings = TrackSettings::default();
        let (results, stats) = track_all(&h, &starts, &settings);
        assert_eq!(stats.converged, 2);
        let mut endpoints: Vec<f64> = results.iter().map(|r| r.x[0].re).collect();
        endpoints.sort_by(f64::total_cmp);
        assert!((endpoints[0] + 2.0).abs() < 1e-8);
        assert!((endpoints[1] - 2.0).abs() < 1e-8);
        for r in &results {
            assert!(r.residual < 1e-9);
            assert!(r.x[0].im.abs() < 1e-8);
        }
    }

    #[test]
    fn recovers_all_roots_of_degree_five_target() {
        // Target: monic degree-5 with known random-ish roots.
        let roots = [
            c(1.0, 0.5),
            c(-0.5, 1.5),
            c(0.25, -0.75),
            c(-1.5, -0.25),
            c(2.0, 0.0),
        ];
        let target_uni = pieri_poly::UniPoly::from_roots(&roots);
        let f = univar(target_uni.coeffs());
        let (g, starts) = unity_start(5);
        let mut rng = seeded_rng(101);
        let h = LinearHomotopy::new(g, f, random_gamma(&mut rng));
        let (results, stats) = track_all(&h, &starts, &TrackSettings::default());
        assert_eq!(stats.converged, 5, "{stats:?}");
        // Endpoints must be the target roots as a multiset.
        let mut found: Vec<Complex64> = results.iter().map(|r| r.x[0]).collect();
        for &r in &roots {
            let (i, d) = found
                .iter()
                .enumerate()
                .map(|(i, f)| (i, f.dist(r)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert!(d < 1e-7, "root {r:?} missing (best {d:.2e})");
            found.swap_remove(i);
        }
    }

    #[test]
    fn divergent_path_detected_for_deficient_target() {
        // Target x − 1 treated as the degree-2 target 0·x² + x − 1 by
        // pairing it with the quadratic start x² − 1: one path converges to
        // 1, the other goes to infinity.
        let (g, starts) = unity_start(2);
        let f = univar(&[c(-1.0, 0.0), Complex64::ONE]);
        let mut rng = seeded_rng(102);
        let h = LinearHomotopy::new(g, f, random_gamma(&mut rng));
        let (results, stats) = track_all(&h, &starts, &TrackSettings::default());
        assert_eq!(stats.converged, 1, "{stats:?}");
        assert_eq!(stats.diverged, 1, "{stats:?}");
        let conv = results.iter().find(|r| r.status.is_converged()).unwrap();
        assert!(conv.x[0].dist(Complex64::ONE) < 1e-8);
        let div = results.iter().find(|r| !r.status.is_converged()).unwrap();
        match div.status {
            PathStatus::Diverged { at_t } => assert!(at_t > 0.5, "diverges near t=1, got {at_t}"),
            ref s => panic!("expected divergence, got {s:?}"),
        }
    }

    #[test]
    fn all_predictors_reach_the_same_endpoints() {
        let (g, starts) = unity_start(3);
        let f = univar(&[c(0.5, 0.25), c(-1.0, 0.5), c(0.0, -0.5), Complex64::ONE]);
        let mut rng = seeded_rng(103);
        let gamma = random_gamma(&mut rng);
        let mut endpoints: Vec<Vec<Complex64>> = Vec::new();
        for predictor in [
            Predictor::Secant,
            Predictor::Tangent,
            Predictor::RungeKutta4,
        ] {
            let h = LinearHomotopy::new(g.clone(), f.clone(), gamma);
            let settings = TrackSettings {
                predictor,
                ..TrackSettings::default()
            };
            let (results, stats) = track_all(&h, &starts, &settings);
            assert_eq!(stats.converged, 3, "{predictor:?}: {stats:?}");
            let mut xs: Vec<Complex64> = results.iter().map(|r| r.x[0]).collect();
            xs.sort_by(|a, b| a.re.total_cmp(&b.re).then(a.im.total_cmp(&b.im)));
            endpoints.push(xs);
        }
        for k in 1..endpoints.len() {
            for (a, b) in endpoints[0].iter().zip(endpoints[k].iter()) {
                assert!(a.dist(*b) < 1e-7);
            }
        }
    }

    #[test]
    fn max_steps_guard_fails_gracefully() {
        let (g, starts) = unity_start(2);
        let f = univar(&[c(-4.0, 0.0), Complex64::ZERO, Complex64::ONE]);
        let mut rng = seeded_rng(104);
        let h = LinearHomotopy::new(g, f, random_gamma(&mut rng));
        let settings = TrackSettings {
            max_steps: 3,
            ..TrackSettings::default()
        };
        let r = track_path(&h, &starts[0], &settings);
        // With a 3-step budget the tracker cannot reach t=1 (max_step 0.1).
        assert!(
            matches!(r.status, PathStatus::Failed { .. }),
            "{:?}",
            r.status
        );
    }

    #[test]
    fn retrack_policy_rescues_a_budget_starved_path() {
        use crate::settings::RetrackPolicy;
        let (g, starts) = unity_start(2);
        let f = univar(&[c(-4.0, 0.0), Complex64::ZERO, Complex64::ONE]);
        let mut rng = seeded_rng(106);
        let h = LinearHomotopy::new(g, f, random_gamma(&mut rng));
        // A 3-step budget fails (see max_steps_guard_fails_gracefully);
        // the policy re-runs with an 8× larger budget per retry until the
        // path converges.
        let settings = TrackSettings {
            max_steps: 3,
            retrack: RetrackPolicy {
                max_retries: 3,
                step_scale: 1.0,
                budget_scale: 8.0,
            },
            ..TrackSettings::default()
        };
        let r = track_path(&h, &starts[0], &settings);
        assert!(r.status.is_converged(), "{:?}", r.status);
        assert!(r.attempts > 1, "the first attempt must have failed");
        assert!(r.attempts <= 4, "bounded retries");
        assert!((r.x[0].norm() - 2.0).abs() < 1e-8);

        // Stats see ONE logical path that was retracked.
        let (results, stats) = track_all(&h, &starts[..1], &settings);
        assert_eq!(stats.total(), 1);
        assert_eq!(stats.converged, 1);
        assert_eq!(stats.retracked, 1);
        assert_eq!(stats.retrack_attempts, results[0].attempts - 1);
        assert_eq!(stats.total_steps, results[0].steps);
    }

    #[test]
    fn retrack_exhaustion_stays_failed_and_bounded() {
        use crate::settings::RetrackPolicy;
        let (g, starts) = unity_start(2);
        let f = univar(&[c(-4.0, 0.0), Complex64::ZERO, Complex64::ONE]);
        let mut rng = seeded_rng(107);
        let h = LinearHomotopy::new(g, f, random_gamma(&mut rng));
        // Budget so small that even the tightened retries cannot finish.
        let settings = TrackSettings {
            max_steps: 1,
            retrack: RetrackPolicy {
                max_retries: 2,
                step_scale: 0.5,
                budget_scale: 1.0,
            },
            ..TrackSettings::default()
        };
        let r = track_path(&h, &starts[0], &settings);
        assert!(
            matches!(r.status, PathStatus::Failed { .. }),
            "{:?}",
            r.status
        );
        assert_eq!(r.attempts, 3, "initial attempt + exactly max_retries");
    }

    #[test]
    fn disabled_retrack_is_bitwise_identical_to_single_attempt() {
        let (g, starts) = unity_start(3);
        let f = univar(&[c(0.5, 0.25), c(-1.0, 0.5), c(0.0, -0.5), Complex64::ONE]);
        let mut rng = seeded_rng(108);
        let h = LinearHomotopy::new(g, f, random_gamma(&mut rng));
        let settings = TrackSettings::default();
        let mut ws = TrackWorkspace::new();
        for s in &starts {
            let a = track_path_with(&h, s, &settings, &mut ws);
            let b = track_path_attempt(&h, s, &settings, &mut ws);
            assert_eq!(a.x, b.x, "retry wrapper must not perturb results");
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.attempts, 1);
        }
    }

    #[test]
    fn track_counts_work() {
        let (g, starts) = unity_start(4);
        let f = univar(&[
            c(1.0, 2.0),
            c(0.5, 0.0),
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ONE,
        ]);
        let mut rng = seeded_rng(105);
        let h = LinearHomotopy::new(g, f, random_gamma(&mut rng));
        let (results, stats) = track_all(&h, &starts, &TrackSettings::default());
        assert_eq!(results.len(), 4);
        assert_eq!(stats.total(), 4);
        for r in &results {
            assert!(r.steps > 0);
            assert!(r.newton_iters >= r.steps);
        }
    }
}
