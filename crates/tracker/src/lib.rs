//! Predictor–corrector path tracking for polynomial homotopies.
//!
//! This crate is the Rust counterpart of PHCpack's `Continuation`
//! packages, the sequential engine that Section II of the ICPP 2004 paper
//! parallelises. The pieces:
//!
//! * [`Homotopy`] — the trait a family `H(x, t)` must implement
//!   (evaluation, Jacobian in `x`, derivative in `t`);
//! * [`LinearHomotopy`] — the convex combination
//!   `H(x,t) = γ·(1−t)·G(x) + t·F(x)` with the gamma trick (eq. (1) of the
//!   paper);
//! * [`newton_correct`] — Newton's method as the corrector;
//! * [`Predictor`] — secant, tangent (Euler) and fourth-order Runge–Kutta
//!   predictors;
//! * [`track_path`] — the adaptive step-size driver producing a
//!   [`PathResult`] (converged / diverged-to-infinity / failed), plus
//!   [`track_all`] and [`TrackStats`] for whole-system runs.
//!
//! * [`cancel`] — cooperative cancellation tokens with deadlines,
//!   consulted by continuation drivers at path boundaries.
//!
//! Paths that diverge to infinity are first-class citizens: the cyclic
//! 10-roots and RPS experiments of the paper owe their load-balancing
//! behaviour to them, so the tracker reports them (with the `t` reached
//! and time spent) rather than erroring out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
mod homotopy;
mod newton;
mod path;
mod predictor;
mod settings;
mod stats;
mod trace;
mod workspace;

pub use cancel::CancelToken;
pub use homotopy::{Homotopy, LinearHomotopy};
pub use newton::{
    newton_correct, newton_correct_with, newton_step_with, NewtonOutcome, NewtonStep,
};
pub use path::{track_all, track_path, track_path_with, PathResult, PathStatus};
pub use predictor::{tangent, tangent_into, Predictor};
pub use settings::{RetrackPolicy, TrackSettings};
pub use stats::TrackStats;
pub use workspace::{HomotopyScratch, TrackWorkspace};
