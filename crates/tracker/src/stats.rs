//! Aggregate statistics over a batch of tracked paths.

use crate::path::{PathResult, PathStatus};
use std::time::Duration;

/// Summary of a multi-path tracking run.
///
/// These are exactly the numbers the load-balancing analysis of the paper
/// needs: how many paths diverge, and how skewed the per-path cost
/// distribution is (the variance drives the static-vs-dynamic gap of
/// Tables I and II).
#[derive(Debug, Clone, Default)]
pub struct TrackStats {
    /// Paths that reached `t = 1` and refined successfully.
    pub converged: usize,
    /// Paths that diverged to infinity.
    pub diverged: usize,
    /// Paths that got numerically stuck.
    pub failed: usize,
    /// Paths that needed at least one re-track attempt (see
    /// [`crate::RetrackPolicy`]); a subset of `total()`, whatever the
    /// final status was.
    pub retracked: usize,
    /// Tracking attempts beyond the first, summed over all paths.
    pub retrack_attempts: usize,
    /// Total accepted steps over all paths.
    pub total_steps: usize,
    /// Total Newton iterations over all paths.
    pub total_newton_iters: usize,
    /// Sum of per-path wall-clock times (the sequential-equivalent
    /// cost; when the batch was tracked concurrently, each path's time
    /// also carries its share of cross-core contention).
    pub total_time: Duration,
    /// Longest single path.
    pub max_path_time: Duration,
    /// Per-path wall-clock times in seconds, in input order — the workload
    /// vector handed to the schedulers and the cluster simulator.
    pub path_times: Vec<f64>,
}

impl TrackStats {
    /// Builds the summary from per-path results.
    pub fn from_results(results: &[PathResult]) -> Self {
        let mut s = TrackStats::default();
        for r in results {
            s.record(r);
        }
        s
    }

    /// Records one *logical path* incrementally — for callers
    /// (schedulers, the batch service) that stream results and do not
    /// keep the full [`PathResult`]s alive.
    ///
    /// A [`PathResult`] already accumulates the cost of every re-track
    /// attempt into one record ([`PathResult::attempts`]); recording it
    /// once therefore accounts for the whole path, and merging worker
    /// stats never double-counts a failed-then-retracked path (each
    /// attempt is **not** recorded separately — that was the
    /// double-counting bug this contract fixes).
    pub fn record(&mut self, result: &PathResult) {
        match result.status {
            PathStatus::Converged => self.converged += 1,
            PathStatus::Diverged { .. } => self.diverged += 1,
            PathStatus::Failed { .. } => self.failed += 1,
        }
        if result.attempts > 1 {
            self.retracked += 1;
            self.retrack_attempts += result.attempts - 1;
        }
        self.total_steps += result.steps;
        self.total_newton_iters += result.newton_iters;
        self.total_time += result.elapsed;
        self.max_path_time = self.max_path_time.max(result.elapsed);
        self.path_times.push(result.elapsed.as_secs_f64());
    }

    /// Merges another batch into this one (e.g. per-job stats rolled up
    /// into service totals). Each side must contain each logical path at
    /// most once (the [`TrackStats::record`] contract), which makes the
    /// merge itself idempotent per path.
    pub fn merge(&mut self, other: &TrackStats) {
        self.converged += other.converged;
        self.diverged += other.diverged;
        self.failed += other.failed;
        self.retracked += other.retracked;
        self.retrack_attempts += other.retrack_attempts;
        self.total_steps += other.total_steps;
        self.total_newton_iters += other.total_newton_iters;
        self.total_time += other.total_time;
        self.max_path_time = self.max_path_time.max(other.max_path_time);
        self.path_times.extend_from_slice(&other.path_times);
    }

    /// Number of paths accounted for.
    pub fn total(&self) -> usize {
        self.converged + self.diverged + self.failed
    }

    /// Mean per-path time in seconds (0 when empty).
    pub fn mean_time(&self) -> f64 {
        if self.path_times.is_empty() {
            0.0
        } else {
            self.path_times.iter().sum::<f64>() / self.path_times.len() as f64
        }
    }

    /// Coefficient of variation of per-path times — the paper's
    /// explanation for when dynamic load balancing beats static hinges on
    /// this number being large.
    pub fn time_cv(&self) -> f64 {
        let mean = self.mean_time();
        if mean == 0.0 || self.path_times.len() < 2 {
            return 0.0;
        }
        let var = self
            .path_times
            .iter()
            .map(|t| (t - mean) * (t - mean))
            .sum::<f64>()
            / (self.path_times.len() - 1) as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieri_num::Complex64;

    fn result(status: PathStatus, millis: u64, steps: usize) -> PathResult {
        PathResult {
            status,
            x: vec![Complex64::ZERO],
            residual: 0.0,
            steps,
            rejections: 0,
            newton_iters: 2 * steps,
            attempts: 1,
            elapsed: Duration::from_millis(millis),
        }
    }

    #[test]
    fn aggregates_counts_and_times() {
        let rs = vec![
            result(PathStatus::Converged, 10, 5),
            result(PathStatus::Diverged { at_t: 0.9 }, 30, 20),
            result(PathStatus::Failed { at_t: 0.5 }, 20, 7),
        ];
        let s = TrackStats::from_results(&rs);
        assert_eq!((s.converged, s.diverged, s.failed), (1, 1, 1));
        assert_eq!(s.total(), 3);
        assert_eq!(s.total_steps, 32);
        assert_eq!(s.total_newton_iters, 64);
        assert_eq!(s.total_time, Duration::from_millis(60));
        assert_eq!(s.max_path_time, Duration::from_millis(30));
        assert!((s.mean_time() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn cv_zero_for_uniform_times() {
        let rs = vec![
            result(PathStatus::Converged, 10, 1),
            result(PathStatus::Converged, 10, 1),
        ];
        let s = TrackStats::from_results(&rs);
        assert!(s.time_cv() < 1e-9);
    }

    #[test]
    fn cv_large_for_skewed_times() {
        let rs = vec![
            result(PathStatus::Converged, 1, 1),
            result(PathStatus::Converged, 1, 1),
            result(PathStatus::Converged, 1, 1),
            result(PathStatus::Converged, 1000, 1),
        ];
        let s = TrackStats::from_results(&rs);
        assert!(s.time_cv() > 1.0);
    }

    #[test]
    fn record_and_merge_match_from_results() {
        let rs = vec![
            result(PathStatus::Converged, 10, 5),
            result(PathStatus::Diverged { at_t: 0.9 }, 30, 20),
            result(PathStatus::Failed { at_t: 0.5 }, 20, 7),
        ];
        let whole = TrackStats::from_results(&rs);
        let mut merged = TrackStats::from_results(&rs[..1]);
        let mut rest = TrackStats::default();
        for r in &rs[1..] {
            rest.record(r);
        }
        merged.merge(&rest);
        assert_eq!(merged.total(), whole.total());
        assert_eq!(merged.total_steps, whole.total_steps);
        assert_eq!(merged.total_newton_iters, whole.total_newton_iters);
        assert_eq!(merged.total_time, whole.total_time);
        assert_eq!(merged.max_path_time, whole.max_path_time);
        assert_eq!(merged.path_times, whole.path_times);
    }

    #[test]
    fn retracked_path_counts_once_across_record_and_merge() {
        // Regression (satellite fix): a failed-then-retracked path is one
        // PathResult with attempts = 3 and accumulated cost. Recording it
        // on one worker and merging into the driver totals must yield ONE
        // path — not one per attempt — and count its steps exactly once.
        let mut retracked = result(PathStatus::Converged, 40, 30);
        retracked.attempts = 3;
        let plain = result(PathStatus::Converged, 10, 5);

        let mut worker_a = TrackStats::default();
        worker_a.record(&retracked);
        let mut worker_b = TrackStats::default();
        worker_b.record(&plain);
        let mut driver = TrackStats::default();
        driver.merge(&worker_a);
        driver.merge(&worker_b);

        assert_eq!(driver.total(), 2, "two logical paths, five attempts");
        assert_eq!(driver.converged, 2);
        assert_eq!(driver.retracked, 1);
        assert_eq!(driver.retrack_attempts, 2);
        assert_eq!(driver.total_steps, 35, "steps counted once per path");
        assert_eq!(driver.path_times.len(), 2);

        // And the merge result is identical to recording directly.
        let direct = TrackStats::from_results(&[retracked, plain]);
        assert_eq!(driver.total_steps, direct.total_steps);
        assert_eq!(driver.retracked, direct.retracked);
        assert_eq!(driver.total_time, direct.total_time);
    }

    #[test]
    fn empty_stats() {
        let s = TrackStats::from_results(&[]);
        assert_eq!(s.total(), 0);
        assert_eq!(s.mean_time(), 0.0);
        assert_eq!(s.time_cv(), 0.0);
    }
}
