//! Newton's method as the corrector of the predictor–corrector scheme.
//!
//! lint:hot-path — runs every corrector iteration of every step; all
//! scratch lives in the caller's [`TrackWorkspace`].

use crate::homotopy::Homotopy;
use crate::workspace::TrackWorkspace;
use pieri_linalg::{inf_norm, Lu};
use pieri_num::Complex64;

/// Result of a Newton correction at fixed `t`.
#[derive(Debug, Clone, Copy)]
pub struct NewtonOutcome {
    /// True when the last update step was below the requested tolerance.
    pub converged: bool,
    /// `‖H(x,t)‖∞` after the final iteration.
    pub residual: f64,
    /// Size of the last Newton update `‖Δx‖∞`.
    pub last_step: f64,
    /// Iterations actually performed.
    pub iters: usize,
    /// True when a Jacobian was singular to working precision (the
    /// iteration then stops early and reports non-convergence).
    pub singular: bool,
}

/// Runs Newton's method on `x ↦ H(x, t)` at fixed `t`, correcting `x` in
/// place.
///
/// Convergence is declared when the update norm `‖Δx‖∞` falls below `tol`
/// (an error-estimate criterion, which is what PHCpack uses; residual
/// tolerance alone is scale-dependent). The iteration also stops early
/// when the update norm *grows* by more than 4× — that is a diverging
/// Newton iteration and more steps only waste time.
pub fn newton_correct<H: Homotopy + ?Sized>(
    h: &H,
    x: &mut [Complex64],
    t: f64,
    tol: f64,
    max_iters: usize,
) -> NewtonOutcome {
    let mut ws = TrackWorkspace::new();
    newton_correct_with(h, x, t, tol, max_iters, &mut ws)
}

/// [`newton_correct`] against a caller-owned [`TrackWorkspace`] — the
/// zero-allocation form used by the path tracker.
///
/// Each iteration makes one fused [`Homotopy::eval_and_jacobian`] call
/// (one condition-matrix build instead of two for determinantal
/// homotopies), negates the residual directly into the solve buffer and
/// solves in place on the reused LU storage. Convergence is detected at
/// the top of the following iteration, whose fused evaluation doubles as
/// the final-residual computation — no separate `eval` call after
/// convergence. `iters` reports the number of Newton iterations
/// performed; every one of them applied an update to `x` except a final
/// iteration that found the Jacobian singular (which still did the
/// evaluation work it is billed for).
pub fn newton_correct_with<H: Homotopy + ?Sized>(
    h: &H,
    x: &mut [Complex64],
    t: f64,
    tol: f64,
    max_iters: usize,
    ws: &mut TrackWorkspace,
) -> NewtonOutcome {
    let n = h.dim();
    debug_assert_eq!(x.len(), n);
    ws.ensure(n);
    let TrackWorkspace {
        fx,
        rhs,
        jac,
        lu,
        scratch,
        ..
    } = ws;
    let mut last_step = f64::INFINITY;
    let mut updates = 0usize;

    for _ in 0..max_iters {
        h.eval_and_jacobian(x, t, fx, jac, scratch);
        if last_step <= tol * (1.0 + inf_norm(x)) {
            return NewtonOutcome {
                converged: true,
                residual: inf_norm(fx),
                last_step,
                iters: updates,
                singular: false,
            };
        }
        if Lu::factor_into(jac, lu).is_err() {
            return NewtonOutcome {
                converged: false,
                residual: inf_norm(fx),
                last_step,
                iters: updates + 1,
                singular: true,
            };
        }
        for (r, f) in rhs.iter_mut().zip(fx.iter()) {
            *r = -*f;
        }
        lu.solve_in_place(rhs);
        for (xi, di) in x.iter_mut().zip(rhs.iter()) {
            *xi += *di;
        }
        updates += 1;
        let prev_step = last_step;
        last_step = inf_norm(rhs);
        if last_step > 4.0 * prev_step {
            // Diverging iteration: bail out, the predictor overshot.
            break;
        }
    }
    // Budget exhausted or diverging: one more fused evaluation for the
    // final residual (the update that just landed may still have
    // converged). The fused call keeps this exit allocation-free — a
    // rejected correction runs it on every predictor retry.
    h.eval_and_jacobian(x, t, fx, jac, scratch);
    NewtonOutcome {
        converged: last_step <= tol * (1.0 + inf_norm(x)),
        residual: inf_norm(fx),
        last_step,
        iters: updates,
        singular: false,
    }
}

/// Outcome of one explicit Newton step (see [`newton_step_with`]).
#[derive(Debug, Clone, Copy)]
pub struct NewtonStep {
    /// `‖H(x, t)‖∞` at the **input** point (before the update).
    pub residual: f64,
    /// `‖Δx‖∞` of the applied update (`0` when singular).
    pub step: f64,
    /// True when the Jacobian at the input was singular to working
    /// precision (no update was applied).
    pub singular: bool,
}

/// One explicit Newton step on `x ↦ H(x, t)` at fixed `t`, updating `x`
/// in place: a single fused `eval_and_jacobian` + one LU solve, nothing
/// else — no convergence check, no trailing residual evaluation.
///
/// This is the primitive the a-posteriori certifier builds its two-step
/// α-estimates from: it needs the residual at the input point and the
/// update norm, and paying [`newton_correct_with`]'s extra exit
/// evaluation twice per certificate would roughly double the cost.
pub fn newton_step_with<H: Homotopy + ?Sized>(
    h: &H,
    x: &mut [Complex64],
    t: f64,
    ws: &mut TrackWorkspace,
) -> NewtonStep {
    let n = h.dim();
    debug_assert_eq!(x.len(), n);
    ws.ensure(n);
    let TrackWorkspace {
        fx,
        rhs,
        jac,
        lu,
        scratch,
        ..
    } = ws;
    h.eval_and_jacobian(x, t, fx, jac, scratch);
    let residual = inf_norm(fx);
    if Lu::factor_into(jac, lu).is_err() {
        return NewtonStep {
            residual,
            step: 0.0,
            singular: true,
        };
    }
    for (r, f) in rhs.iter_mut().zip(fx.iter()) {
        *r = -*f;
    }
    lu.solve_in_place(rhs);
    for (xi, di) in x.iter_mut().zip(rhs.iter()) {
        *xi += *di;
    }
    NewtonStep {
        residual,
        step: inf_norm(rhs),
        singular: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homotopy::LinearHomotopy;
    use pieri_num::Complex64;
    use pieri_poly::{Poly, PolySystem};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn squares_minus(a: f64, b: f64) -> PolySystem {
        // {x² − a, y² − b}
        let x = Poly::var(2, 0);
        let y = Poly::var(2, 1);
        PolySystem::new(vec![
            x.mul(&x).sub(&Poly::constant(2, c(a, 0.0))),
            y.mul(&y).sub(&Poly::constant(2, c(b, 0.0))),
        ])
    }

    fn fixed_t_homotopy() -> LinearHomotopy {
        // At t = 1 this is exactly the target system; Newton at t = 1 is
        // plain root polishing.
        LinearHomotopy::new(
            squares_minus(1.0, 1.0),
            squares_minus(4.0, 9.0),
            Complex64::ONE,
        )
    }

    #[test]
    fn quadratic_convergence_from_close_guess() {
        let h = fixed_t_homotopy();
        let mut x = [c(2.1, 0.05), c(-2.9, -0.1)];
        let out = newton_correct(&h, &mut x, 1.0, 1e-12, 10);
        assert!(out.converged, "{out:?}");
        assert!(
            out.iters <= 6,
            "quadratic convergence expected, got {}",
            out.iters
        );
        assert!(x[0].dist(c(2.0, 0.0)) < 1e-10);
        assert!(x[1].dist(c(-3.0, 0.0)) < 1e-10);
        assert!(out.residual < 1e-10);
    }

    #[test]
    fn reports_failure_from_far_guess_with_few_iters() {
        let h = fixed_t_homotopy();
        let mut x = [c(50.0, 30.0), c(-80.0, 10.0)];
        let out = newton_correct(&h, &mut x, 1.0, 1e-12, 2);
        assert!(!out.converged);
    }

    #[test]
    fn singular_jacobian_detected() {
        let h = fixed_t_homotopy();
        // Jacobian of {x²−4, y²−9} is diag(2x, 2y): singular at x = 0.
        let mut x = [c(0.0, 0.0), c(0.0, 0.0)];
        let out = newton_correct(&h, &mut x, 1.0, 1e-12, 5);
        assert!(out.singular);
        assert!(!out.converged);
    }

    #[test]
    fn converges_at_intermediate_t() {
        let h = fixed_t_homotopy();
        // Solve H(x, 0.5) = 0 starting near the t=0 root (1,1).
        let mut x = [c(1.0, 0.0), c(1.0, 0.0)];
        let out = newton_correct(&h, &mut x, 0.5, 1e-12, 20);
        assert!(out.converged, "{out:?}");
        assert!(h.residual(&x, 0.5) < 1e-10);
    }
}
