//! Reusable per-worker scratch for the predictor–corrector loop.
//!
//! Tracking one path evaluates the homotopy and factors its Jacobian
//! thousands of times; allocating the buffers for every call dominated
//! profiles before the fused kernels landed. A [`TrackWorkspace`] owns
//! every buffer the tracker needs — residual and update vectors, the
//! Jacobian and its LU storage, the predictor's Runge–Kutta stages, the
//! path state vectors — plus an opaque [`HomotopyScratch`] slot that a
//! homotopy implementation fills with whatever *it* needs (condition
//! matrices, cofactor storage, weight tables). Thread one workspace per
//! worker through [`crate::track_path_with`] and steady-state tracking
//! performs no heap allocation.

use pieri_linalg::{CMat, Lu};
use pieri_num::Complex64;
use std::any::Any;

/// Opaque homotopy-owned scratch living inside a [`TrackWorkspace`].
///
/// The tracker cannot know what buffers a particular [`crate::Homotopy`]
/// implementation wants to reuse across fused evaluations, so it lends
/// this slot to every fused call; the homotopy lazily installs its own
/// scratch type on first use (one allocation per worker, ever) and
/// downcasts it back on later calls. A workspace that migrates between
/// homotopy *types* simply reinstalls — correctness never depends on the
/// slot's contents, only speed does.
#[derive(Debug, Default)]
pub struct HomotopyScratch {
    slot: Option<Box<dyn Any + Send>>,
}

impl HomotopyScratch {
    /// An empty slot.
    pub fn new() -> Self {
        HomotopyScratch::default()
    }

    /// Returns the installed scratch of type `T`, installing `make()`
    /// when the slot is empty or holds a different type.
    pub fn get_or_insert_with<T: Any + Send>(&mut self, make: impl FnOnce() -> T) -> &mut T {
        let stale = match &self.slot {
            Some(b) => !b.is::<T>(),
            None => true,
        };
        if stale {
            self.slot = Some(Box::new(make()));
        }
        self.slot
            .as_mut()
            .expect("slot just filled")
            .downcast_mut::<T>()
            .expect("type checked above")
    }
}

/// Reusable buffers for tracking paths of one (or many) homotopies.
///
/// Create one per worker thread with [`TrackWorkspace::new`] and pass it
/// to [`crate::track_path_with`] / [`crate::newton_correct_with`]; the
/// buffers grow to the largest dimension seen and are reused across
/// paths, patterns and homotopies. All fields are crate-private — the
/// workspace is a capability, not a data structure.
#[derive(Debug)]
pub struct TrackWorkspace {
    dim: usize,
    /// Residual `H(x, t)`.
    pub(crate) fx: Vec<Complex64>,
    /// Right-hand side / solution of the Newton and Davidenko solves.
    pub(crate) rhs: Vec<Complex64>,
    /// `∂H/∂t` for the tangent system.
    pub(crate) ht: Vec<Complex64>,
    /// Jacobian `∂H/∂x`.
    pub(crate) jac: CMat,
    /// Reusable LU storage for the Newton/tangent solves.
    pub(crate) lu: Lu,
    /// Runge–Kutta stages and midpoint of the predictor.
    pub(crate) k1: Vec<Complex64>,
    pub(crate) k2: Vec<Complex64>,
    pub(crate) k3: Vec<Complex64>,
    pub(crate) k4: Vec<Complex64>,
    pub(crate) xmid: Vec<Complex64>,
    /// Path state: current point, previous accepted point, predicted
    /// point, and the endgame's previous iterate.
    pub(crate) state_x: Vec<Complex64>,
    pub(crate) state_prev: Vec<Complex64>,
    pub(crate) state_pred: Vec<Complex64>,
    pub(crate) state_before: Vec<Complex64>,
    /// Endgame norm history (capacity retained across paths).
    pub(crate) endgame_norms: Vec<f64>,
    /// Homotopy-owned scratch for the fused kernels.
    pub(crate) scratch: HomotopyScratch,
}

impl Default for TrackWorkspace {
    fn default() -> Self {
        TrackWorkspace::new()
    }
}

impl TrackWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        TrackWorkspace {
            dim: usize::MAX,
            fx: Vec::new(),
            rhs: Vec::new(),
            ht: Vec::new(),
            jac: CMat::zeros(0, 0),
            lu: Lu::default(),
            k1: Vec::new(),
            k2: Vec::new(),
            k3: Vec::new(),
            k4: Vec::new(),
            xmid: Vec::new(),
            state_x: Vec::new(),
            state_prev: Vec::new(),
            state_pred: Vec::new(),
            state_before: Vec::new(),
            endgame_norms: Vec::new(),
            scratch: HomotopyScratch::new(),
        }
    }

    /// Grows every buffer to dimension `n` (no-op when already there).
    pub fn ensure(&mut self, n: usize) {
        if self.dim == n {
            return;
        }
        self.dim = n;
        for buf in [
            &mut self.fx,
            &mut self.rhs,
            &mut self.ht,
            &mut self.k1,
            &mut self.k2,
            &mut self.k3,
            &mut self.k4,
            &mut self.xmid,
        ] {
            buf.clear();
            buf.resize(n, Complex64::ZERO);
        }
        if (self.jac.rows(), self.jac.cols()) != (n, n) {
            self.jac = CMat::zeros(n, n);
        }
    }

    /// The fused-evaluation buffers `(fx, jac, scratch)` — the triple a
    /// [`crate::Homotopy::eval_and_jacobian`] call needs. Exposed for
    /// benches and tests that drive the fused kernels directly.
    pub fn eval_buffers(&mut self) -> (&mut [Complex64], &mut CMat, &mut HomotopyScratch) {
        (&mut self.fx, &mut self.jac, &mut self.scratch)
    }
}
