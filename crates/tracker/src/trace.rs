//! Zero-cost-when-off span shims for the tracker phases.
//!
//! With the `trace` feature on, these record `retrack` and `track.path`
//! spans (category `tracker`) on the process-global [`pieri_trace`]
//! layer, plus per-step `predict`/`correct` spans when the installed
//! config asks for *deep* tracing; the spans inherit the worker
//! thread's current trace id, set by the service's job scope. Without
//! the feature every helper is an `#[inline(always)]` no-op — the
//! predictor–corrector loop carries no span branches, preserving the
//! crate's zero-allocation hot path exactly.

#[cfg(not(feature = "trace"))]
pub(crate) use disabled::*;
#[cfg(feature = "trace")]
pub(crate) use enabled::*;

#[cfg(feature = "trace")]
mod enabled {
    /// An RAII span over one tracker phase on this thread, tagged with
    /// the thread's current trace id.
    pub(crate) fn phase_span(name: &'static str) -> pieri_trace::SpanGuard {
        pieri_trace::span(name, "tracker")
    }

    /// A *per-step* span (`predict`/`correct`): recorded only under
    /// `TraceConfig { deep: true, .. }`. These sites fire thousands of
    /// times per solve, so in the default config the cost here is one
    /// relaxed atomic load and an inert guard — that is what keeps the
    /// warm-path trace overhead under 2%.
    pub(crate) fn step_span(name: &'static str) -> pieri_trace::SpanGuard {
        pieri_trace::deep_span(name, "tracker")
    }
}

#[cfg(not(feature = "trace"))]
mod disabled {
    /// Stand-in span guard; dropping it does nothing.
    pub(crate) struct SpanGuard {}

    #[inline(always)]
    pub(crate) fn phase_span(_name: &'static str) -> SpanGuard {
        SpanGuard {}
    }

    #[inline(always)]
    pub(crate) fn step_span(_name: &'static str) -> SpanGuard {
        SpanGuard {}
    }
}
