//! Cooperative cancellation for long continuation runs.
//!
//! The service front end hands every job a deadline; once it lapses (or
//! the client connection goes away) the work is abandoned upstream, and
//! finishing it would only burn cores. [`CancelToken`] carries that
//! signal: an atomic flag plus an optional deadline, shared between the
//! submitter and the worker.
//!
//! Tracking a single path is short (milliseconds), so the checks sit at
//! *path boundaries*: drivers that loop over start solutions install
//! their token with [`scope`] and consult [`active_cancelled`] between
//! paths. A cancelled run therefore never ships a half-tracked path —
//! it stops cleanly with the paths finished so far, and callers decide
//! whether a partial result is an error (the service treats it as one).
//!
//! The token is deliberately *not* a [`crate::TrackSettings`] field:
//! settings are `Copy` and flow through many layers by value, while a
//! token is shared mutable state. A thread-local scope keeps the plumbing
//! out of every signature without losing determinism — the flag only
//! ever flips one way (false → true).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared cancellation signal: cancelled when [`CancelToken::cancel`]
/// has been called *or* the attached deadline has passed.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never cancels on its own (flag-only).
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that auto-cancels once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Raises the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Cancelled — explicitly, or because the deadline passed.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// The deadline this token auto-cancels at, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

thread_local! {
    static ACTIVE: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with `token` installed as this thread's active cancellation
/// token; drivers inside `f` observe it via [`active_cancelled`].
/// Scopes nest (innermost wins) and always unwind on exit, including
/// through panics.
pub fn scope<T>(token: &CancelToken, f: impl FnOnce() -> T) -> T {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            ACTIVE.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    ACTIVE.with(|s| s.borrow_mut().push(token.clone()));
    let _pop = Pop;
    f()
}

/// The innermost [`scope`] token on this thread is cancelled. `false`
/// when no scope is installed — cancellation is strictly opt-in, so
/// library callers outside the service never see spurious stops.
pub fn active_cancelled() -> bool {
    ACTIVE.with(|s| {
        s.borrow()
            .last()
            .map(CancelToken::is_cancelled)
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn flag_cancellation_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_cancels_without_a_flag() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let live = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!live.is_cancelled());
    }

    #[test]
    fn scopes_nest_and_unwind() {
        assert!(!active_cancelled(), "no scope installed");
        let outer = CancelToken::new();
        outer.cancel();
        let inner = CancelToken::new();
        scope(&outer, || {
            assert!(active_cancelled());
            scope(&inner, || assert!(!active_cancelled(), "innermost wins"));
            assert!(active_cancelled(), "outer restored");
        });
        assert!(!active_cancelled(), "scope removed on exit");
    }

    #[test]
    fn scope_unwinds_through_panics() {
        let t = CancelToken::new();
        t.cancel();
        let r = std::panic::catch_unwind(|| scope(&t, || panic!("boom")));
        assert!(r.is_err());
        assert!(!active_cancelled(), "panic still pops the scope");
    }
}
